"""Ablation benchmark: Byzantine vs fail-silent fault severity (Sections 3.2 / 4.3).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/ablation_faulttype`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_ablation_faulttype = bench_case_test("solver", "ablation_faulttype")
