"""Ablation benchmark: Byzantine vs fail-silent fault severity (Sections 3.2 / 4.3)."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import ablation_faulttype


def test_bench_ablation_faulttype(benchmark, bench_config):
    result = run_once(benchmark, ablation_faulttype.run, bench_config, num_faults=3)
    print()
    print(result.render())
    stats = result.statistics
    benchmark.extra_info["intra_max_fault_free"] = round(stats["fault_free"].intra_max, 2)
    benchmark.extra_info["intra_max_fail_silent"] = round(stats["fail_silent"].intra_max, 2)
    benchmark.extra_info["intra_max_byzantine"] = round(stats["byzantine"].intra_max, 2)

    # Shape (paper's claim): fail-silent results are qualitatively similar to
    # the Byzantine ones but with smaller (or equal) skews, and both regimes
    # stay within a few d+ of the fault-free baseline.
    d_max = bench_config.timing.d_max
    assert stats["fail_silent"].intra_max >= stats["fault_free"].intra_max - 1e-9
    assert stats["byzantine"].intra_max >= stats["fail_silent"].intra_max - 0.5
    assert stats["byzantine"].intra_max <= stats["fault_free"].intra_max + 4 * d_max
    assert stats["fail_silent"].intra_avg <= stats["byzantine"].intra_avg + 0.2
