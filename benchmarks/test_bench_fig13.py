"""Benchmark: regenerate Fig. 13 (one Byzantine node at (1, 19), scenario (i)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig13`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig13 = bench_case_test("solver", "fig13")
