"""Benchmark: regenerate Fig. 13 (one Byzantine node at (1, 19), scenario (i))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig13


def test_bench_fig13(benchmark, bench_config):
    result = run_once(benchmark, fig13.run, bench_config)
    print()
    print(result.render())
    summary = result.summary()
    for key, value in summary.items():
        benchmark.extra_info[key] = round(value, 3)

    # Shape: the skew increase emanating from the faulty node fades with the
    # distance from the fault location (fault locality), and even next to the
    # fault the skew stays within a few d+.
    timing = bench_config.timing
    assert summary["max_skew_at_distance_1"] >= summary["max_skew_at_distance_ge_3"] - 1e-9
    assert summary["max_skew_at_distance_ge_3"] <= timing.d_max + timing.epsilon
    assert summary["max_intra_skew"] <= 4 * timing.d_max
