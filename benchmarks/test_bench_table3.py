"""Benchmark: regenerate Table 3 (stable skews and Condition 2 timeouts).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/table3`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_table3 = bench_case_test("solver", "table3")
