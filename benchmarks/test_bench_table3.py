"""Benchmark: regenerate Table 3 (stable skews and Condition 2 timeouts)."""

from __future__ import annotations

import pytest
from _bench_utils import run_once

from repro.clocksource.scenarios import SCENARIOS
from repro.experiments import table3


def test_bench_table3(benchmark, bench_config):
    result = run_once(benchmark, table3.run, bench_config, runs=max(3, bench_config.runs // 2))
    print()
    print(result.render())

    # Feeding the paper's sigma column through Condition 2 reproduces every
    # timeout column of Table 3 (up to the footnote-10 signal-duration slack).
    for scenario in SCENARIOS:
        derived = result.from_paper_sigma[scenario].as_row()
        paper = table3.PAPER_TABLE3[scenario]
        for key in ("T_link_min", "T_link_max", "T_sleep_min", "T_sleep_max", "S"):
            assert derived[key] == pytest.approx(paper[key], abs=0.2), (scenario, key)
        benchmark.extra_info[f"{scenario.value}_S_derived"] = round(derived["S"], 2)
        benchmark.extra_info[f"{scenario.value}_S_paper"] = paper["S"]
        # The measured-sigma derivation lands in the same regime as the paper's.
        measured_sigma = result.measured_sigma[scenario]
        assert 0.3 * paper["sigma"] < measured_sigma < 2.5 * paper["sigma"]
