"""Benchmark: precomputed neighbour tables and per-topology solver runs.

Thin wrappers: the workloads, checks and the ``BENCH_topology.json``
artifact live in the ``topology`` suite of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_neighbor_table_cache = bench_case_test("topology", "neighbor_lookup")
test_bench_solver_per_topology = bench_case_test("topology", "solver_per_topology")
