"""Benchmark: precomputed neighbour tables and per-topology solver runs.

The DES broadcast loop and the solver's Dijkstra sweep query
``in_neighbors`` / ``out_neighbors`` / ``direction_between`` once per message;
before the topology layer these rebuilt the wrap arithmetic (and a fresh dict)
on every call.  :meth:`HexGrid._build_neighbor_tables` now precomputes the
tables once at construction.  This module measures

* the neighbour-lookup sweep, cached tables vs the historical on-the-fly
  reconstruction (re-enacted here via the raw neighbour rule), and
* one seeded solver run per registered topology family on the paper's
  50x20 grid,

and writes the numbers to ``BENCH_topology.json`` at the repo root so the
perf trajectory of the topology layer is tracked across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict

from _bench_utils import run_once

from repro.core.topology import HexGrid, _IN_DIRECTION_ORDER, _OUT_DIRECTION_ORDER
from repro.engines import RunSpec, get_engine
from repro.topologies import build_topology

#: Where the perf record lands (repo root, next to the figures' BENCH files).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_topology.json"

#: Lookup-sweep repetitions (the whole grid's tables per repetition).
LOOKUP_SWEEPS = 30

#: Topologies benchmarked through the solver engine.
SOLVER_TOPOLOGIES = ("cylinder", "torus", "patch", "degraded:nodes=5,links=5,seed=1")

_RESULTS: Dict[str, object] = {}


def _uncached_lookup_sweep(grid: HexGrid) -> int:
    """The historical per-call behaviour: rebuild both dicts from the rule."""
    total = 0
    for node in grid.nodes():
        layer, column = node
        ins = {}
        for direction in _IN_DIRECTION_ORDER:
            neighbor = grid._raw_neighbor(layer, column, direction)
            if neighbor is not None:
                ins[direction] = neighbor
        outs = {}
        for direction in _OUT_DIRECTION_ORDER:
            neighbor = grid._raw_neighbor(layer, column, direction)
            if neighbor is not None:
                outs[direction] = neighbor
        total += len(ins) + len(outs)
    return total


def _cached_lookup_sweep(grid: HexGrid) -> int:
    """The table-backed path every hot loop now takes."""
    total = 0
    for node in grid.nodes():
        total += len(grid.in_neighbors(node)) + len(grid.out_neighbors(node))
    return total


def _time(function, *args, repeat: int = LOOKUP_SWEEPS) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        function(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_neighbor_table_cache(benchmark):
    """Cached tables must beat the on-the-fly reconstruction clearly."""
    grid = HexGrid(layers=50, width=20)
    expected = _uncached_lookup_sweep(grid)
    assert _cached_lookup_sweep(grid) == expected  # same answers, just cached

    uncached_s = _time(_uncached_lookup_sweep, grid)
    cached_s = _time(_cached_lookup_sweep, grid)
    run_once(benchmark, _cached_lookup_sweep, grid)

    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    benchmark.extra_info["uncached_sweep_s"] = uncached_s
    benchmark.extra_info["cached_sweep_s"] = cached_s
    benchmark.extra_info["speedup"] = speedup
    _RESULTS["neighbor_lookup"] = {
        "grid": "50x20",
        "uncached_sweep_s": uncached_s,
        "cached_sweep_s": cached_s,
        "speedup": speedup,
    }
    # The margin is wide in practice (~4-10x); assert a conservative floor so
    # a regression back to per-call reconstruction fails loudly.
    assert speedup > 1.5, f"neighbour-table cache buys only {speedup:.2f}x"


def test_bench_solver_per_topology(benchmark):
    """One seeded solver run per topology family on the paper's 50x20 grid."""
    per_topology: Dict[str, Dict[str, float]] = {}

    def run_all():
        for topology in SOLVER_TOPOLOGIES:
            spec = RunSpec(
                kind="single_pulse",
                layers=50,
                width=20,
                scenario="iii",
                topology=topology,
                entropy=2013,
            )
            start = time.perf_counter()
            result = get_engine("solver").run(spec)
            elapsed = time.perf_counter() - start
            grid = build_topology(topology, 50, 20)
            per_topology[topology] = {
                "solver_run_s": elapsed,
                "num_nodes": float(getattr(grid, "num_present_nodes", grid.num_nodes)),
                "num_links": float(grid.num_links()),
                "all_correct_triggered": float(result.all_correct_triggered()),
            }
        return per_topology

    run_once(benchmark, run_all)
    benchmark.extra_info.update(
        {f"{name}_solver_run_s": data["solver_run_s"] for name, data in per_topology.items()}
    )
    _RESULTS["solver_runs"] = per_topology

    # Writing here keeps the file complete whichever -k subset ran first.
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
    assert BENCH_JSON.exists()
