"""Benchmark: campaign orchestration overhead and parallel sweep throughput.

Runs one multi-point single-pulse campaign twice -- serially and on a small
worker pool -- and records both wall times, so regressions in the
orchestration layer (task expansion, record assembly, pool dispatch) show up
next to the simulation-bound experiment benchmarks.  Also asserts the
subsystem's core guarantee inside the benchmarked configuration: canonical
records are identical for both execution modes.
"""

from __future__ import annotations

import time

from _bench_utils import run_once

from repro.campaign import CampaignRunner, CampaignSpec, SweepSpec


def _spec() -> CampaignSpec:
    cell = SweepSpec(
        layers=(20, 30),
        width=10,
        scenario=("i", "iii"),
        num_faults=(0, 2),
        runs=5,
        seed_salt=900,
    )
    return CampaignSpec(name="bench-campaign", seed=2013, cells=(cell,))


def test_bench_campaign_sweep(benchmark):
    spec = _spec()

    serial = run_once(benchmark, lambda: CampaignRunner(spec, workers=1).run())

    start = time.perf_counter()
    parallel = CampaignRunner(spec, workers=4).run()
    parallel_wall = time.perf_counter() - start

    assert len(serial.records) == spec.num_tasks
    assert [r.canonical_json() for r in serial.records] == [
        r.canonical_json() for r in parallel.records
    ]

    benchmark.extra_info["tasks"] = spec.num_tasks
    benchmark.extra_info["serial_wall_s"] = round(serial.wall_time_s, 3)
    benchmark.extra_info["parallel4_wall_s"] = round(parallel_wall, 3)
