"""Benchmark: campaign orchestration overhead and parallel sweep throughput.

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``campaign/sweep`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_campaign = bench_case_test("campaign", "sweep")
