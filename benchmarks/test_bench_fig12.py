"""Benchmark: regenerate Fig. 12 (per-layer inter-layer skews, scenarios (iii)/(iv)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig12`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig12 = bench_case_test("solver", "fig12")
