"""Benchmark: regenerate Fig. 12 (per-layer inter-layer skews, scenarios (iii)/(iv))."""

from __future__ import annotations

import numpy as np
from _bench_utils import run_once

from repro.clocksource.scenarios import Scenario
from repro.experiments import fig12


def test_bench_fig12(benchmark, bench_config):
    result = run_once(benchmark, fig12.run, bench_config)
    print()
    print(result.render())

    ramp = result.series[Scenario.RAMP]
    flat = result.series[Scenario.UNIFORM_DMAX]
    smoothing_layer = result.smoothing_layer(Scenario.RAMP, tolerance=1.0)
    benchmark.extra_info["ramp_smoothing_layer"] = smoothing_layer
    benchmark.extra_info["lemma3_horizon"] = bench_config.width - 2
    benchmark.extra_info["ramp_max_skew_layer1"] = round(float(ramp["max"][0]), 2)
    benchmark.extra_info["ramp_max_skew_layer30"] = round(float(ramp["max"][-1]), 2)

    # Shape: scenario (iv)'s large low-layer inter-layer skews shrink and
    # settle after roughly W - 2 layers (Lemma 3), whereas scenario (iii)'s
    # per-layer maxima are flat (within ~2 d+) from the very first layer.
    assert ramp["max"][0] > ramp["max"][-1]
    assert smoothing_layer <= 2 * bench_config.width
    assert float(np.nanmax(flat["max"])) <= 2 * bench_config.timing.d_max
    # The structural d- bias of the inter-layer skew is visible everywhere.
    assert float(np.nanmin(flat["min"])) >= bench_config.timing.d_min - 1e-6
