"""Benchmark: regenerate Fig. 17 (single-fault worst case under scenario (iv))."""

from __future__ import annotations

import pytest
from _bench_utils import run_once

from repro.experiments import fig17


def test_bench_fig17(benchmark):
    result = run_once(benchmark, fig17.run)
    print()
    print(result.render())
    summary = result.summary()
    benchmark.extra_info["max_intra_skew_in_dmax"] = round(summary["max_intra_skew_in_dmax"], 2)
    benchmark.extra_info["paper_value_in_dmax"] = 5.0
    benchmark.extra_info["inter_smaller_by_dmax"] = round(summary["intra_minus_inter_in_dmax"], 2)

    # Shape: the paper's construction generates ~5 d+ of intra-layer skew from
    # a single Byzantine node, with the inter-layer skew smaller by d+.  Our
    # construction reaches >= 3 d+ (vs ~1 d+ without the fault) and reproduces
    # the "smaller by d+" relation exactly.
    assert summary["max_intra_skew_in_dmax"] >= 3.0
    assert summary["intra_minus_inter_in_dmax"] == pytest.approx(1.0, abs=0.3)
    assert summary["fault_free_max_intra_skew"] <= result.construction.timing.d_max + 1e-6
