"""Benchmark: regenerate Fig. 17 (single-fault worst case under scenario (iv)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig17`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig17 = bench_case_test("solver", "fig17")
