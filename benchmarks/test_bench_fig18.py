"""Benchmark: regenerate Fig. 18 (stabilization times, scenario (iii)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``des/fig18`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig18 = bench_case_test("des", "fig18")
