"""Benchmark: regenerate Fig. 18 (stabilization times, scenario (iii))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig18
from repro.faults.models import FaultType


def test_bench_fig18(benchmark, bench_stab_config):
    result = run_once(
        benchmark,
        fig18.run,
        bench_stab_config,
        fault_counts=(0, 2, 5),
        choices=(0, 3),
        fault_types=(FaultType.BYZANTINE, FaultType.FAIL_SILENT),
    )
    print()
    print(result.render())

    conservative = result.point(0, 0, FaultType.BYZANTINE)
    aggressive = result.point(5, 3, FaultType.BYZANTINE)
    benchmark.extra_info["avg_stab_time_f0_C0"] = round(conservative.average, 2)
    benchmark.extra_info["stabilized_f0_C0"] = conservative.num_stabilized
    benchmark.extra_info["avg_stab_time_f5_C3"] = round(aggressive.average, 2)
    benchmark.extra_info["stabilized_f5_C3"] = aggressive.num_stabilized
    benchmark.extra_info["theorem2_worst_case"] = bench_stab_config.layers + 1

    # Shape (paper's findings for Fig. 18):
    # 1. with conservative skew bounds HEX stabilizes within the first couple
    #    of pulses in every run;
    assert conservative.num_stabilized == conservative.num_runs
    assert conservative.average <= 3.0
    # 2. aggressive bounds (C = 3) can only slow stabilization down and may
    #    leave a minority of runs unstabilized within the observed pulses;
    assert aggressive.num_stabilized <= conservative.num_stabilized
    if aggressive.num_stabilized:
        assert aggressive.average >= conservative.average - 1e-9
    # 3. everything stays far below the Theorem 2 worst case of L + 1 pulses.
    assert conservative.average < (bench_stab_config.layers + 1) / 2
    # 4. fail-silent faults behave no worse than Byzantine ones.
    fail_silent = result.point(5, 0, FaultType.FAIL_SILENT)
    assert fail_silent.num_stabilized >= result.point(5, 0, FaultType.BYZANTINE).num_stabilized - 1
