"""Benchmark: Theorem 1 worst-case bounds vs observed maxima (Section 4.2)."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import theorem1


def test_bench_theorem1(benchmark, bench_config):
    result = run_once(benchmark, theorem1.run, bench_config)
    print()
    print(result.render())
    summary = result.summary()
    for key in (
        "theorem1_bound_formula",
        "theorem1_bound_quoted_in_paper",
        "observed_intra_max_scenario_i",
        "observed_intra_max_scenario_ii",
    ):
        benchmark.extra_info[key] = round(summary[key], 3)

    # Shape: the paper's Section 4.2 comparison -- the worst-case bound
    # (quoted as 21.63 ns) is far above the observed maxima (~3-7 ns), i.e.
    # typical skews are much better than worst case; and the bounds hold.
    assert result.holds()
    assert summary["paper_quoted_sigma_max"] == 21.63
    assert summary["observed_intra_max_scenario_i"] < 0.5 * summary["theorem1_bound_quoted_in_paper"]
    assert summary["observed_intra_max_scenario_ii"] < summary["theorem1_bound_quoted_in_paper"]
