"""Benchmark: Theorem 1 worst-case bounds vs observed maxima (Section 4.2).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/theorem1`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_theorem1 = bench_case_test("solver", "theorem1")
