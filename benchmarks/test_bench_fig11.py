"""Benchmark: regenerate Fig. 11 (cumulative skew histograms, scenario (iv)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig11`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig11 = bench_case_test("solver", "fig11")
