"""Benchmark: regenerate Fig. 11 (cumulative skew histograms, scenario (iv))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.histograms import tail_fraction
from repro.experiments import fig10, fig11


def test_bench_fig11(benchmark, bench_config):
    result = run_once(benchmark, fig11.run, bench_config)
    reference = fig10.run(bench_config)
    print()
    print(result.render())
    timing = bench_config.timing
    benchmark.extra_info["frac_above_dmin_scenario_iv"] = round(
        tail_fraction(result.intra_values, timing.d_min), 4
    )
    benchmark.extra_info["frac_above_dmin_scenario_i"] = round(
        tail_fraction(reference.intra_values, timing.d_min), 4
    )

    # Shape: unlike scenario (i), scenario (iv) shows a visible cluster near
    # the end of the tail (intra-layer skews close to d+, inter-layer skews
    # close to 2 d+), caused by the large initial skews of the lower layers.
    assert tail_fraction(result.intra_values, timing.d_min) > 0.05
    assert tail_fraction(reference.intra_values, timing.d_min) < 0.02
    assert tail_fraction(result.inter_values, 1.5 * timing.d_max) > tail_fraction(
        reference.inter_values, 1.5 * timing.d_max
    )
