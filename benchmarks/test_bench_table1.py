"""Benchmark: regenerate Table 1 (fault-free skew statistics, scenarios (i)-(iv))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.clocksource.scenarios import SCENARIOS, Scenario
from repro.experiments import table1


def test_bench_table1(benchmark, bench_config):
    result = run_once(benchmark, table1.run, bench_config)
    print()
    print(result.render())

    for scenario in SCENARIOS:
        measured = result.statistics[scenario].as_row()
        paper = table1.PAPER_TABLE1[scenario]
        for key in ("intra_avg", "inter_avg"):
            benchmark.extra_info[f"{scenario.value}_{key}_measured"] = round(measured[key], 3)
            benchmark.extra_info[f"{scenario.value}_{key}_paper"] = paper[key]

    # Shape checks: averages land close to the paper even with few runs, the
    # scenario ordering matches, and maxima stay within the same regime.
    for scenario in SCENARIOS:
        measured = result.statistics[scenario]
        paper = table1.PAPER_TABLE1[scenario]
        assert abs(measured.intra_avg - paper["intra_avg"]) < 0.3
        assert abs(measured.inter_avg - paper["inter_avg"]) < 0.5
        assert measured.intra_max <= paper["intra_max"] * 1.5 + 1.0
    assert (
        result.statistics[Scenario.RAMP].intra_avg
        > result.statistics[Scenario.ZERO].intra_avg
    )
