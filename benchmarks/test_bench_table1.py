"""Benchmark: regenerate Table 1 (fault-free skew statistics, scenarios (i)-(iv)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/table1`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_table1 = bench_case_test("solver", "table1")
