"""Shared configuration of the benchmark harness.

Every table and figure of the paper's evaluation has one benchmark module that
regenerates it (at a reduced run count by default) and records the key numbers
in ``benchmark.extra_info`` next to the paper's values, so that
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction report.

Environment knobs:

``HEX_BENCH_RUNS``
    Number of runs per data point (default 10; the paper uses 250).
``HEX_BENCH_PAPER``
    Set to ``1`` to run the full paper-scale configuration (50x20 grid,
    250 runs) -- slow, but closest to the published numbers.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import ExperimentConfig  # noqa: E402


def _bench_runs(default: int = 10) -> int:
    return int(os.environ.get("HEX_BENCH_RUNS", default))


@pytest.fixture(scope="session")
def bench_runs() -> int:
    """Number of runs per data point used by the benchmarks."""
    return _bench_runs()


@pytest.fixture(scope="session")
def bench_config(bench_runs) -> ExperimentConfig:
    """The paper's 50x20 grid with a reduced run count (unless HEX_BENCH_PAPER=1)."""
    if os.environ.get("HEX_BENCH_PAPER") == "1":
        return ExperimentConfig.paper()
    return ExperimentConfig(runs=bench_runs)


@pytest.fixture(scope="session")
def bench_stab_config(bench_runs) -> ExperimentConfig:
    """A smaller grid for the (discrete-event) stabilization benchmarks."""
    if os.environ.get("HEX_BENCH_PAPER") == "1":
        return ExperimentConfig.paper()
    return ExperimentConfig(layers=20, width=10, runs=max(3, bench_runs // 2), num_pulses=8)
