"""Pytest configuration of the benchmark suite.

Every test collected from this directory is marked ``bench`` automatically;
the repository-wide ``addopts = -m "not bench"`` keeps the tier-1 run fast,
and ``pytest benchmarks/ -m bench`` opts back in.

Environment knobs (read once per session into :class:`BenchSettings`):

``HEX_BENCH_RUNS``
    Number of runs per data point (default 10; the paper uses 250).
``HEX_BENCH_PAPER``
    Set to ``1`` to run the full paper-scale configuration (50x20 grid,
    250 runs) -- slow, but closest to the published numbers.
``HEX_BENCH_QUICK``
    Set to ``1`` for the CI-sized quick mode (fewer Monte Carlo runs).
``BENCH_OUT``
    Directory for the ``BENCH_*.json`` artifacts (default: repo root).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import BenchSettings  # noqa: E402

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    for item in items:
        if Path(str(item.fspath)).resolve().parent == _BENCH_DIR:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_settings() -> BenchSettings:
    """The session's benchmark settings, from the environment knobs."""
    return BenchSettings.from_env(quick=os.environ.get("HEX_BENCH_QUICK") == "1")
