"""Benchmark: sustained soak throughput and streaming-accumulator overhead.

Thin wrapper: the workloads, repeat counts, quick-mode shrink and the GK
rank-error recheck live in the ``soak`` suite of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_soak_sustained_pulses = bench_case_test("soak", "sustained_pulses")
test_bench_soak_accumulator_overhead = bench_case_test("soak", "accumulator_overhead")
