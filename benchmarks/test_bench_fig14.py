"""Benchmark: regenerate Fig. 14 (five Byzantine nodes, scenario (iv))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig14, table1


def test_bench_fig14(benchmark, bench_config):
    result = run_once(benchmark, fig14.run, bench_config)
    print()
    print(result.render())
    summary = result.summary()
    benchmark.extra_info["fault_positions"] = str(result.fault_positions)
    benchmark.extra_info["max_intra_skew"] = round(summary["max_intra_skew"], 3)

    # Shape: despite five Byzantine nodes the pulse still reaches every correct
    # node, and the worst skews stay in the same regime as the paper's Table 2
    # (they do not accumulate with the number of faults).
    assert summary["num_faults"] == 5.0
    assert summary["all_correct_triggered"] == 1.0
    paper_iv_max_with_one_fault = 34.59  # Table 2, scenario (iv)
    assert summary["max_intra_skew"] <= 1.5 * paper_iv_max_with_one_fault
