"""Benchmark: regenerate Fig. 14 (five Byzantine nodes, scenario (iv)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig14`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig14 = bench_case_test("solver", "fig14")
