"""Benchmark: regenerate Fig. 8 (pulse wave, zero layer-0 skew).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig08`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig08 = bench_case_test("solver", "fig08")
