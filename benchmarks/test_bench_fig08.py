"""Benchmark: regenerate Fig. 8 (pulse wave, zero layer-0 skew)."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig08


def test_bench_fig08(benchmark, bench_config):
    result = run_once(benchmark, fig08.run, bench_config)
    print()
    print(result.render())
    summary = result.summary()
    for key in ("max_intra_layer_skew", "top_layer_spread", "per_layer_time"):
        benchmark.extra_info[key] = round(summary[key], 3)

    # Shape: the wave propagates evenly -- one layer per link delay, with the
    # per-layer spread bounded by roughly d+ and no skew build-up with height.
    timing = bench_config.timing
    assert timing.d_min <= summary["per_layer_time"] <= timing.d_max
    assert summary["max_intra_layer_skew"] <= timing.d_max
    assert summary["top_layer_spread"] <= 2 * timing.d_max
