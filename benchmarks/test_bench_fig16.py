"""Benchmark: regenerate Fig. 16 (skew vs number of Byzantine faults, scenario (iv)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig16`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig16 = bench_case_test("solver", "fig16")
