"""Benchmark: regenerate Fig. 16 (skew vs number of Byzantine faults, scenario (iv))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig16


def test_bench_fig16(benchmark, bench_config):
    result = run_once(benchmark, fig16.run, bench_config)
    print()
    print(result.render())
    max_f = max(f for f, _ in result.statistics)
    benchmark.extra_info["intra_max_f1"] = round(result.stats(1, 0).intra_max, 2)
    benchmark.extra_info[f"intra_max_f{max_f}"] = round(result.stats(max_f, 0).intra_max, 2)
    benchmark.extra_info["inter_max_f1"] = round(result.stats(1, 0).inter_max, 2)

    # Shape (paper's findings for Fig. 16):
    # 1. a single fault already causes close to the worst observed skew --
    #    the effects of multiple faults do not accumulate;
    single = result.stats(1, 0).intra_max
    worst = max(result.stats(f, 0).intra_max for f, h in result.statistics if h == 0)
    assert single >= 0.4 * worst
    # 2. under the ramped scenario the maximal intra-layer skews typically
    #    exceed the inter-layer skews (the wave propagates diagonally);
    assert result.stats(max_f, 0).intra_max >= result.stats(max_f, 0).inter_max - 2.0
    # 3. locality: the h = 1 exclusion brings the maxima back down.
    assert result.stats(max_f, 1).intra_max <= result.stats(max_f, 0).intra_max + 1e-9
