"""Benchmark: Engine.run_batch vs per-spec execution on a same-grid 100-cell sweep.

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``batch/run_batch`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_batch = bench_case_test("batch", "run_batch")
