"""Benchmark: regenerate Fig. 5 (deterministic worst-case pulse wave)."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig05, table1


def test_bench_fig05(benchmark):
    result = run_once(benchmark, fig05.run)
    print()
    print(result.render())
    summary = result.summary()
    benchmark.extra_info["focus_skew_ns"] = round(summary["focus_skew"], 2)
    benchmark.extra_info["lemma4_bound_ns"] = round(summary["lemma4_bound"], 2)

    # Shape: the crafted wave tears the focus columns an order of magnitude
    # further apart than anything seen under random delays (Table 1, max
    # 8.19 ns over 250 runs), while respecting the Lemma 4 bound.
    paper_random_max = max(
        row["intra_max"] for row in table1.PAPER_TABLE1.values()
    )
    assert summary["focus_skew"] > 2 * paper_random_max
    assert summary["focus_skew"] <= summary["lemma4_bound"]
    assert summary["focus_skew"] > summary["average_skew"]
