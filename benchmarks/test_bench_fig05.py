"""Benchmark: regenerate Fig. 5 (deterministic worst-case pulse wave).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig05`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig05 = bench_case_test("solver", "fig05")
