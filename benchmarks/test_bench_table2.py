"""Benchmark: regenerate Table 2 (skew statistics with one Byzantine node).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/table2`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_table2 = bench_case_test("solver", "table2")
