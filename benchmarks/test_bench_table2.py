"""Benchmark: regenerate Table 2 (skew statistics with one Byzantine node)."""

from __future__ import annotations

from _bench_utils import run_once

from repro.clocksource.scenarios import SCENARIOS, Scenario
from repro.experiments import table1, table2


def test_bench_table2(benchmark, bench_config):
    result = run_once(benchmark, table2.run, bench_config)
    print()
    print(result.render())

    for scenario in SCENARIOS:
        measured = result.statistics[scenario].as_row()
        paper = table2.PAPER_TABLE2[scenario]
        benchmark.extra_info[f"{scenario.value}_intra_max_measured"] = round(
            measured["intra_max"], 3
        )
        benchmark.extra_info[f"{scenario.value}_intra_max_paper"] = paper["intra_max"]

    # Shape: a single Byzantine node increases the maxima over Table 1's
    # fault-free values but leaves the averages almost unchanged (fault
    # locality), exactly as in the paper.
    for scenario in SCENARIOS:
        measured = result.statistics[scenario]
        paper_clean = table1.PAPER_TABLE1[scenario]
        assert measured.intra_avg < paper_clean["intra_avg"] + 1.0
        assert measured.inter_min <= paper_clean["inter_min"] + 0.5
