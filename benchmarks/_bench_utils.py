"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under the pytest-benchmark timer.

    The experiments are full simulation campaigns, not micro-benchmarks, so a
    single round/iteration is both sufficient and necessary (repeating them
    would multiply the suite's runtime without adding information).
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
