"""Shared shim: run registered bench cases as (opt-in) pytest tests.

The benchmark logic itself -- workloads, repeat counts, quick-mode shrink,
shape checks, headline numbers -- lives in the :mod:`repro.bench.suites`
case definitions; each ``test_bench_*.py`` module here is a one-line wrapper
created by :func:`bench_case_test`.  Every wrapper merges its timing record
into ``BENCH_<suite>.json`` (honouring ``BENCH_OUT``, defaulting to the repo
root exactly as the historical modules did), so ``pytest benchmarks/ -m
bench`` regenerates the same artifacts as ``hex-repro bench``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench import BenchSettings, get_case, load_builtin_suites, merge_case_result, run_case

#: Default artifact directory of the pytest wrappers (the repo root, where
#: the historical modules wrote their ``BENCH_*.json`` files).
REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_case_test(suite: str, name: str):
    """Build the pytest test function of one registered bench case.

    The test times the case through the harness, runs its shape checks
    (assertion failures fail the test) and merges the result into the
    suite's ``BENCH_<suite>.json``.
    """
    load_builtin_suites()
    get_case(suite, name)  # fail at collection time for unknown cases

    # The bench marker comes from the conftest collection hook, which marks
    # every test under benchmarks/ -- one mechanism, no duplicate marking.
    def test(bench_settings: BenchSettings) -> None:
        case = get_case(suite, name)
        result = run_case(case, bench_settings)
        out_dir = Path(os.environ.get("BENCH_OUT") or REPO_ROOT)
        merge_case_result(out_dir, suite, bench_settings, result)
        print(
            f"\n[{suite}/{name}] median {result.stats['median_s']:.3f}s "
            f"over {len(result.times_s)} repeat(s); info: {result.info}"
        )

    test.__name__ = f"test_bench_{suite}_{name}"
    test.__doc__ = f"Bench case {suite}/{name} through the repro.bench harness."
    return test
