"""Benchmark: HEX vs clock-tree scaling (the title claim, extension experiment).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``clocktree/scaling`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_clocktree = bench_case_test("clocktree", "scaling")
