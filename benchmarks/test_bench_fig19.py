"""Benchmark: regenerate Fig. 19 (stabilization times, scenario (iv))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig19
from repro.faults.models import FaultType


def test_bench_fig19(benchmark, bench_stab_config):
    result = run_once(
        benchmark,
        fig19.run,
        bench_stab_config,
        fault_counts=(0, 3),
        choices=(0, 2),
        fault_types=(FaultType.BYZANTINE,),
    )
    print()
    print(result.render())

    conservative = result.point(0, 0, FaultType.BYZANTINE)
    with_faults = result.point(3, 0, FaultType.BYZANTINE)
    benchmark.extra_info["avg_stab_time_f0_C0"] = round(conservative.average, 2)
    benchmark.extra_info["avg_stab_time_f3_C0"] = round(with_faults.average, 2)

    # Shape: the qualitative picture of Fig. 18 carries over to the ramped
    # scenario -- stabilization within the first pulses for conservative
    # bounds, even with faults present, far below the Theorem 2 worst case.
    assert conservative.num_stabilized == conservative.num_runs
    assert conservative.average <= 3.0
    assert with_faults.num_stabilized >= with_faults.num_runs - 1
    if with_faults.num_stabilized:
        assert with_faults.average <= (bench_stab_config.layers + 1) / 2
