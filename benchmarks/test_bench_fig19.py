"""Benchmark: regenerate Fig. 19 (stabilization times, scenario (iv)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``des/fig19`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig19 = bench_case_test("des", "fig19")
