"""Benchmark: regenerate Fig. 10 (cumulative skew histograms, scenario (i))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.histograms import tail_fraction
from repro.experiments import fig10


def test_bench_fig10(benchmark, bench_config):
    result = run_once(benchmark, fig10.run, bench_config)
    print()
    print(result.render())
    summary = result.summary()
    for key in ("intra_median", "intra_frac_above_eps", "inter_median"):
        benchmark.extra_info[key] = round(summary[key], 4)

    # Shape: sharp concentration with an exponential-looking tail -- the median
    # intra-layer skew is a fraction of eps, virtually nothing exceeds d+, and
    # the inter-layer histogram sits just above d- (its structural bias).
    timing = bench_config.timing
    assert summary["intra_median"] < timing.epsilon
    assert summary["intra_frac_above_dmax"] < 0.01
    assert timing.d_min <= summary["inter_median"] <= timing.d_max + timing.epsilon
    assert tail_fraction(result.intra_values, 2 * timing.epsilon) < tail_fraction(
        result.intra_values, timing.epsilon
    ) or tail_fraction(result.intra_values, timing.epsilon) == 0.0
