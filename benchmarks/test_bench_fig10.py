"""Benchmark: regenerate Fig. 10 (cumulative skew histograms, scenario (i)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig10`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig10 = bench_case_test("solver", "fig10")
