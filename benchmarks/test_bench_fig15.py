"""Benchmark: regenerate Fig. 15 (skew vs number of Byzantine faults, scenario (iii)).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig15`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig15 = bench_case_test("solver", "fig15")
