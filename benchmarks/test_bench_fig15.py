"""Benchmark: regenerate Fig. 15 (skew vs number of Byzantine faults, scenario (iii))."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig15


def test_bench_fig15(benchmark, bench_config):
    result = run_once(benchmark, fig15.run, bench_config)
    print()
    print(result.render())
    timing = bench_config.timing
    max_f = max(f for f, _ in result.statistics)
    benchmark.extra_info["intra_max_f0"] = round(result.stats(0, 0).intra_max, 2)
    benchmark.extra_info[f"intra_max_f{max_f}_h0"] = round(result.stats(max_f, 0).intra_max, 2)
    benchmark.extra_info[f"intra_max_f{max_f}_h1"] = round(result.stats(max_f, 1).intra_max, 2)

    # Shape (paper's findings for Fig. 15):
    # 1. skews increase moderately with f -- far slower than the worst-case
    #    allowance of roughly 5 f d+;
    growth = result.max_skew_growth(hops=0)
    assert growth >= -1e-9
    assert growth < 5 * max_f * timing.d_max / 2
    # 2. discarding the faults' 1-hop out-neighbourhood removes most of the
    #    effect (strong fault locality);
    assert result.max_skew_growth(hops=1) <= result.max_skew_growth(hops=0) + 1e-9
    assert result.stats(max_f, 1).intra_max <= result.stats(max_f, 0).intra_max + 1e-9
    # 3. the averages barely move at all.
    assert result.stats(max_f, 0).intra_avg < result.stats(0, 0).intra_avg + 0.5
