"""Benchmark: regenerate Fig. 9 (pulse wave, ramped layer-0 skew).

Thin wrapper: the workload, repeat counts, quick-mode shrink and shape
checks live in the ``solver/fig09`` case of :mod:`repro.bench.suites`.
"""

from __future__ import annotations

from _bench_utils import bench_case_test

test_bench_fig09 = bench_case_test("solver", "fig09")
