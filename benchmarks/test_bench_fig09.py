"""Benchmark: regenerate Fig. 9 (pulse wave, ramped layer-0 skew)."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import fig09


def test_bench_fig09(benchmark, bench_config):
    result = run_once(benchmark, fig09.run, bench_config)
    print()
    print(result.render())
    smoothing = result.smoothing_summary()
    benchmark.extra_info["initial_layer0_skew_ns"] = round(smoothing["initial_layer0_skew"], 2)
    benchmark.extra_info["max_skew_above_W-2"] = round(smoothing["max_skew_above_horizon"], 3)
    benchmark.extra_info["max_skew_below_W-2"] = round(smoothing["max_skew_below_horizon"], 3)

    # Shape (Lemma 3 / Fig. 9): the huge initial ramp ((W/2) d+ ~ 82 ns on the
    # paper's grid) is smoothed out above layer W - 2, where the intra-layer
    # skew falls back to the ~d+ regime of the zero-skew scenario.
    timing = bench_config.timing
    assert smoothing["initial_layer0_skew"] >= (bench_config.width // 2) * timing.d_max - 1e-9
    assert smoothing["max_skew_above_horizon"] < smoothing["max_skew_below_horizon"]
    assert smoothing["max_skew_above_horizon"] <= timing.d_max + timing.epsilon
