#!/usr/bin/env python3
"""HEX vs clock trees: the scaling argument of the paper's title, measured.

This example puts the introduction's claims side by side for growing system
sizes:

* **wire length** -- HEX links stay at one sink pitch while the H-tree's
  top-level arms grow like ``sqrt(n)``;
* **neighbour skew** -- the H-tree's skew between physically adjacent sinks
  grows with the delay variation accumulated along the disjoint parts of their
  root paths; HEX's worst-case neighbour skew bound grows only via the
  ``ceil(W eps / d+) eps`` term (and measured skews are far smaller);
* **robustness** -- one broken tree buffer disconnects a quarter of the die
  (or all of it); HEX tolerates isolated Byzantine nodes outright and keeps
  their skew impact local.

It also shows the Section 5 extension: deriving a fast clock from HEX pulses
via frequency multiplication, and what that costs in additional skew.

Run with::

    python examples/hex_vs_clock_tree.py [--quick]

(``--quick`` uses a tiny grid -- the configuration CI smoke-runs.)
"""

from __future__ import annotations

import numpy as np

from repro.clocksource import scenario_layer0_times
from repro.clocktree.comparison import compare_scaling
from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid
from repro.experiments.report import format_kv, format_table
from repro.multiplication.fastclock import (
    FrequencyMultiplier,
    MultiplierConfig,
    fast_clock_skew_bound,
    measure_fast_clock_skew,
)
from repro.engines import get_engine
from repro.simulation.links import UniformRandomDelays


def main(quick: bool = False) -> None:
    timing = TimingConfig.paper_defaults()

    # --- scaling comparison -------------------------------------------------
    tree_levels = (2, 3) if quick else (2, 3, 4, 5)
    comparison = compare_scaling(tree_levels=tree_levels, timing=timing, seed=3)
    rows = [
        [
            row.num_endpoints,
            row.hex_max_wire_length,
            row.tree_max_wire_length,
            row.hex_neighbor_skew_bound,
            row.tree_max_neighbor_skew,
            row.hex_expected_faults_tolerated,
            row.tree_worst_internal_fault_loss,
        ]
        for row in comparison
    ]
    print(
        format_table(
            ["endpoints", "hex wire", "tree wire", "hex skew bound",
             "tree nbr skew", "hex faults ok", "tree fault loss"],
            rows,
            title="Scaling honeycombs vs scaling clock trees",
        )
    )
    print()

    # --- frequency multiplication (Section 5) ------------------------------
    grid = HexGrid(layers=6, width=8) if quick else HexGrid(layers=20, width=12)
    rng = np.random.default_rng(11)
    layer0 = scenario_layer0_times("i", grid.width, timing, rng=rng)
    result = get_engine("solver").single_pulse(
        grid, timing, layer0, rng=rng, delays=UniformRandomDelays(timing, rng)
    )

    multiplier_config = MultiplierConfig(multiplication_factor=8, nominal_period=2.0, theta=1.05)
    multiplier = FrequencyMultiplier(grid, multiplier_config, seed=5)
    measured_max, measured_avg = measure_fast_clock_skew(
        grid, result.trigger_times, multiplier
    )
    hex_skew = float(np.nanmax(np.abs(np.diff(result.trigger_times, axis=1))))
    print(
        format_kv(
            {
                "hex_pulse_neighbor_skew": hex_skew,
                "fast_clock_skew_measured_max": measured_max,
                "fast_clock_skew_measured_avg": measured_avg,
                "fast_clock_skew_bound": fast_clock_skew_bound(hex_skew, multiplier_config),
                "fast_ticks_per_pulse": multiplier_config.multiplication_factor,
                "tick_window": multiplier_config.effective_window,
            },
            title="Frequency multiplication on top of HEX pulses",
        )
    )
    print()
    print(
        "The clock tree's wire length, neighbour skew and blast radius all grow\n"
        "with the system size, while HEX's stay flat (wire), bounded (skew) and\n"
        "local (faults); frequency multiplication recovers a fast clock at the\n"
        "cost of a small drift-proportional skew increase."
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="HEX vs clock-tree example")
    parser.add_argument(
        "--quick", action="store_true", help="tiny-grid smoke configuration (used by CI)"
    )
    main(quick=parser.parse_args().quick)
