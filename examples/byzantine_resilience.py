#!/usr/bin/env python3
"""Byzantine resilience: how faults affect skew, and how locally.

This example reproduces the core robustness story of the paper on a mid-size
grid:

1. place an increasing number of Byzantine nodes (uniformly at random, under
   the fault-separation Condition 1), each behaving adversarially per outgoing
   link (stuck-at-0 or stuck-at-1);
2. measure the intra-/inter-layer skews over a set of runs, once over all
   correct nodes (``h = 0``) and once excluding the faults' direct
   out-neighbours (``h = 1``);
3. print how the skew grows with the number of faults -- and how the growth
   essentially disappears with ``h = 1`` (fault locality), while the
   self-stabilizing multi-pulse simulation still recovers within a couple of
   pulses even when every node starts in a random state.

Run with::

    python examples/byzantine_resilience.py [--quick]

(``--quick`` uses a tiny grid -- the configuration CI smoke-runs.)
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.single_pulse import run_scenario_set
from repro.experiments.stability import run_stabilization_point
from repro.faults.models import FaultType
from repro.faults.placement import condition1_probability_lower_bound


def main(quick: bool = False) -> None:
    if quick:
        config = ExperimentConfig(layers=12, width=8, runs=2, num_pulses=4, seed=7)
        fault_counts = (0, 1, 2)
        stabilization_runs = 2
    else:
        config = ExperimentConfig(layers=30, width=14, runs=10, num_pulses=6, seed=7)
        fault_counts = (0, 1, 2, 4)
        stabilization_runs = 5

    # --- single-pulse skew vs number of Byzantine nodes --------------------
    rows = []
    for num_faults in fault_counts:
        run_set = run_scenario_set(
            config,
            "iii",
            num_faults=num_faults,
            fault_type=FaultType.BYZANTINE,
            seed_salt=10 + num_faults,
        )
        all_nodes = run_set.statistics(hops=0)
        excluding_neighbors = run_set.statistics(hops=1)
        rows.append(
            [
                num_faults,
                all_nodes.intra_avg,
                all_nodes.intra_max,
                excluding_neighbors.intra_max,
                all_nodes.inter_max,
                excluding_neighbors.inter_max,
            ]
        )
    print(
        format_table(
            ["f", "intra avg", "intra max (h=0)", "intra max (h=1)",
             "inter max (h=0)", "inter max (h=1)"],
            rows,
            title=f"Skews vs Byzantine faults ({config.runs} runs, scenario (iii))",
        )
    )
    print()
    probability = condition1_probability_lower_bound(
        (config.layers + 1) * config.width, 4
    )
    print(
        f"Condition 1 (fault separation) holds for 4 random faults with probability "
        f">= {probability:.3f} on this grid."
    )
    print()

    # --- self-stabilization from arbitrary states ---------------------------
    point = run_stabilization_point(
        config,
        "iii",
        num_faults=2,
        fault_type=FaultType.BYZANTINE,
        skew_choice=0,
        runs=stabilization_runs,
    )
    print(
        format_table(
            ["f", "C", "avg stabilization pulse", "runs stabilized", "runs"],
            [[2, 0, point.average, point.num_stabilized, point.num_runs]],
            title="Self-stabilization from random initial states (2 Byzantine nodes)",
        )
    )
    print()
    print(
        "Skews grow only moderately with the number of faults, the effect is\n"
        "confined to the faults' immediate neighbourhood (h = 1 column), and the\n"
        "grid re-synchronizes within a couple of pulses from arbitrary states."
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="HEX Byzantine resilience example")
    parser.add_argument(
        "--quick", action="store_true", help="tiny-grid smoke configuration (used by CI)"
    )
    main(quick=parser.parse_args().quick)
