#!/usr/bin/env python3
"""Sweeping grid topologies: boundary conditions and damage as a campaign axis.

The repo's runs were historically pinned to the paper's cylindrical hex grid;
the ``repro.topologies`` registry makes the grid *shape* sweepable.  This
example shows the three levels of the API:

* **direct** -- build a topology from a spec string and run one
  :class:`~repro.engines.base.RunSpec` on it, comparing the analytic solver
  and the discrete-event testbed on a torus;
* **campaign** -- sweep ``topology in {cylinder, torus, patch, degraded}``
  inside one declarative cell and pool the per-topology skew statistics
  (bit-identical for any worker count, resumable like every campaign);
* **experiment** -- the packaged ``topology-scaling`` experiment
  (``hex-repro run topology-scaling``), which additionally pairs every grid
  size with the H-tree clock-tree baseline.

Run with::

    python examples/topology_scaling.py [--quick]

(``--quick`` uses tiny grids -- the configuration CI smoke-runs.)
"""

from __future__ import annotations

import numpy as np

from repro.campaign.records import pooled_statistics
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.engines import RunSpec, get_engine
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.topology_scaling import run as run_topology_scaling
from repro.topologies import condition1_fault_capacity


def direct_run(layers: int, width: int) -> None:
    """One seeded single-pulse run on a torus, solver vs DES."""
    spec = RunSpec(
        kind="single_pulse",
        layers=layers,
        width=width,
        scenario="iii",
        topology="torus",
        entropy=2013,
    )
    solver = get_engine("solver").run(spec)
    des = get_engine("des").run(spec)
    torus = spec.make_grid()
    print(
        f"torus {layers}x{width}: {torus.num_nodes} nodes, "
        f"{torus.num_links()} links, Condition-1 capacity >= "
        f"{condition1_fault_capacity(torus)}"
    )
    print(
        f"  solver fired all: {solver.all_correct_triggered()}, "
        f"DES fired all: {des.all_correct_triggered()}, "
        f"max |solver - DES| trigger-time envelope: "
        f"{float(np.nanmax(np.abs(solver.trigger_times - des.trigger_times))):.3f} ns"
    )
    print()


def campaign_sweep(layers: int, width: int, runs: int) -> None:
    """One cell sweeping the topology axis; pooled skew per topology."""
    damaged = "degraded:nodes=2,links=2,seed=7"
    cell = SweepSpec(
        layers=layers,
        width=width,
        scenario="iii",
        engine="solver",
        topology=("cylinder", "torus", "patch", damaged),
        runs=runs,
        seed_salt=0,
    )
    campaign = CampaignSpec(name="topology-example", seed=2013, cells=(cell,))
    result = CampaignRunner(campaign, progress=False).run()
    rows = []
    for (_cell, _point), records in result.grouped().items():
        stats = pooled_statistics(records).as_row()
        grid = records[0].make_grid()
        rows.append(
            [
                records[0].params.get("topology", "cylinder"),
                getattr(grid, "num_present_nodes", grid.num_nodes),
                grid.num_links(),
                stats["intra_avg"],
                stats["intra_max"],
                stats["inter_max"],
            ]
        )
    print(
        format_table(
            ["topology", "nodes", "links", "intra_avg", "intra_max", "inter_max"],
            rows,
            title=f"Pooled neighbour skew by topology ({layers}x{width}, {runs} runs)",
        )
    )
    print()


def main(quick: bool = False) -> None:
    if quick:
        layers, width, runs = 6, 6, 3
        config = ExperimentConfig.quick()
    else:
        layers, width, runs = 20, 12, 10
        config = ExperimentConfig(runs=10)

    direct_run(layers, width)
    campaign_sweep(layers, width, runs)

    experiment = run_topology_scaling(config=config)
    print(experiment.render())
    print()
    print(
        "The wrap-around cylinder and torus keep neighbour skews flat; the\n"
        "patch pays for its open rim, structural damage costs roughly its\n"
        "local detour, and the H-tree's adjacent-sink skew grows with the die."
    )
    # Sanity for the smoke job: the open rim must actually cost skew.
    patch_row = next(row for row in experiment.rows if row.topology == "patch")
    cylinder_row = next(row for row in experiment.rows if row.topology == "cylinder")
    assert patch_row.intra_max >= cylinder_row.intra_max, "rim should not beat the cylinder"


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="Topology-sweep example")
    parser.add_argument(
        "--quick", action="store_true", help="tiny-grid smoke configuration (used by CI)"
    )
    main(quick=parser.parse_args().quick)
