#!/usr/bin/env python3
"""Quickstart: propagate one clock pulse through a HEX grid and inspect skews.

This example builds a small HEX grid with the paper's delay parameters, drives
layer 0 with the average-case scenario (iii) (uniform initial skews in
``[0, d+]``), propagates a single pulse with both execution engines (the
analytic solver and the discrete-event simulator), and prints the resulting
intra-/inter-layer skew statistics next to the worst-case bound of Theorem 1.

Run with::

    python examples/quickstart.py [--quick]

(``--quick`` uses a tiny grid -- the configuration CI smoke-runs.)
"""

from __future__ import annotations

import numpy as np

from repro import HexGrid, TimingConfig
from repro.analysis.skew import SkewStatistics
from repro.clocksource import scenario_layer0_times
from repro.core.bounds import theorem1_uniform_bound
from repro.engines import get_engine
from repro.experiments.report import format_kv
from repro.simulation.links import UniformRandomDelays


def main(quick: bool = False) -> None:
    # A 20-layer, 12-column HEX grid with the paper's end-to-end delay bounds
    # ([7.161, 8.197] ns, i.e. epsilon ~ 1 ns of per-link uncertainty).
    grid = HexGrid(layers=6, width=8) if quick else HexGrid(layers=20, width=12)
    timing = TimingConfig.paper_defaults()

    # Layer 0: synchronized clock sources with initial skews uniform in [0, d+]
    # (the paper's scenario (iii): the average-case input of a clock-generation
    # layer whose guaranteed neighbour skew is d+).
    rng = np.random.default_rng(42)
    layer0 = scenario_layer0_times("iii", grid.width, timing, rng=rng)

    # Use one shared per-link delay model so both engines see identical
    # delays.  Engines are resolved through the registry (the one entry
    # point); both hex engines accept explicit arrays via single_pulse.
    delays = UniformRandomDelays(timing, rng)

    solver_result = get_engine("solver").single_pulse(
        grid, timing, layer0, rng=rng, delays=delays
    )
    des_result = get_engine("des").single_pulse(
        grid, timing, layer0, rng=np.random.default_rng(7), delays=delays
    )

    agreement = float(
        np.nanmax(np.abs(solver_result.trigger_times - des_result.trigger_times))
    )
    stats = SkewStatistics.from_times(solver_result.trigger_times)

    print(format_kv(stats.as_row(), title="Single-pulse skew statistics (ns)"))
    print()
    print(
        format_kv(
            {
                "engine_agreement_max_diff": agreement,
                "theorem1_worst_case_bound": theorem1_uniform_bound(timing, grid.width),
                "observed_max_intra_skew": stats.intra_max,
            },
            title="Engines and bounds",
        )
    )
    print()
    print(
        "Every node fired exactly once, both engines agree to machine precision,\n"
        "and the observed neighbour skew stays far below the worst-case bound."
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="HEX quickstart example")
    parser.add_argument(
        "--quick", action="store_true", help="tiny-grid smoke configuration (used by CI)"
    )
    main(quick=parser.parse_args().quick)
