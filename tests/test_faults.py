"""Tests for fault models and Condition 1 placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.topology import HexGrid
from repro.faults.models import FaultModel, FaultType, LinkBehavior, NodeFault
from repro.faults.placement import (
    check_condition1,
    condition1_probability_lower_bound,
    condition1_violations,
    forbidden_region,
    place_faults,
)


class TestNodeFault:
    def test_fail_silent_covers_all_outgoing_links(self, small_grid):
        fault = NodeFault.fail_silent(small_grid, (3, 2))
        assert fault.fault_type is FaultType.FAIL_SILENT
        assert set(fault.link_behaviors) == set(small_grid.out_neighbors((3, 2)).values())
        assert all(b is LinkBehavior.CONSTANT_ZERO for b in fault.link_behaviors.values())

    def test_byzantine_random_behaviour_uses_both_values_eventually(self, small_grid, rng):
        seen = set()
        for _ in range(20):
            fault = NodeFault.byzantine(small_grid, (3, 2), rng=rng)
            seen.update(fault.link_behaviors.values())
        assert seen == {LinkBehavior.CONSTANT_ZERO, LinkBehavior.CONSTANT_ONE}

    def test_byzantine_requires_rng_or_behaviours(self, small_grid):
        with pytest.raises(ValueError):
            NodeFault.byzantine(small_grid, (3, 2))

    def test_byzantine_rejects_unknown_destination(self, small_grid):
        with pytest.raises(ValueError):
            NodeFault.byzantine(
                small_grid, (3, 2), behaviors={(6, 0): LinkBehavior.CONSTANT_ONE}
            )

    def test_byzantine_fills_unspecified_links_with_silence(self, small_grid):
        destination = list(small_grid.out_neighbors((3, 2)).values())[0]
        fault = NodeFault.byzantine(
            small_grid, (3, 2), behaviors={destination: LinkBehavior.CONSTANT_ONE}
        )
        others = [d for d in small_grid.out_neighbors((3, 2)).values() if d != destination]
        assert fault.behavior_towards(destination) is LinkBehavior.CONSTANT_ONE
        assert all(fault.behavior_towards(d) is LinkBehavior.CONSTANT_ZERO for d in others)

    def test_crash_validation(self, small_grid):
        fault = NodeFault.crash(small_grid, (2, 1), crash_time=100.0)
        assert fault.crash_time == 100.0
        with pytest.raises(ValueError):
            NodeFault.crash(small_grid, (2, 1), crash_time=-1.0)


class TestFaultModel:
    def test_fault_free(self, small_grid):
        model = FaultModel.fault_free(small_grid)
        assert model.num_faulty_nodes == 0
        assert model.is_correct((3, 3))
        assert np.all(model.correctness_mask())

    def test_queries(self, small_grid, rng):
        model = FaultModel(small_grid, [NodeFault.byzantine(small_grid, (2, 1), rng=rng)])
        assert model.is_faulty((2, 1))
        assert not model.is_faulty((2, 2))
        assert model.faulty_nodes() == [(2, 1)]
        assert model.node_fault((2, 1)).fault_type is FaultType.BYZANTINE
        assert model.node_fault((2, 2)) is None
        assert (2, 1) not in model.correct_nodes()

    def test_correctness_mask(self, small_grid):
        model = FaultModel(small_grid, [NodeFault.fail_silent(small_grid, (4, 0))])
        mask = model.correctness_mask()
        assert not mask[4, 0]
        assert mask.sum() == small_grid.num_nodes - 1

    def test_faulty_layers(self, small_grid):
        model = FaultModel(
            small_grid,
            [NodeFault.fail_silent(small_grid, (4, 0)), NodeFault.fail_silent(small_grid, (2, 3))],
        )
        assert model.faulty_layers() == [2, 4]
        assert model.num_faulty_layers_up_to(3) == 1
        assert model.num_faulty_layers_up_to(6) == 2

    def test_link_behavior_for_crash_depends_on_time(self, small_grid):
        model = FaultModel(small_grid, [NodeFault.crash(small_grid, (2, 1), crash_time=50.0)])
        destination = list(small_grid.out_neighbors((2, 1)).values())[0]
        assert model.link_behavior(((2, 1), destination), time=10.0) is LinkBehavior.CORRECT
        assert model.link_behavior(((2, 1), destination), time=60.0) is LinkBehavior.CONSTANT_ZERO
        # Default (eventual) behaviour is post-crash.
        assert model.link_behavior(((2, 1), destination)) is LinkBehavior.CONSTANT_ZERO

    def test_individual_link_faults(self, small_grid):
        model = FaultModel.fault_free(small_grid)
        destination = list(small_grid.out_neighbors((3, 2)).values())[0]
        model.add_link_fault(((3, 2), destination), LinkBehavior.CONSTANT_ZERO)
        assert model.link_behavior(((3, 2), destination)) is LinkBehavior.CONSTANT_ZERO
        assert model.is_correct((3, 2))  # the node itself stays correct
        assert ((3, 2), destination) in model.faulty_links()
        # Setting it back to CORRECT removes the entry.
        model.add_link_fault(((3, 2), destination), LinkBehavior.CORRECT)
        assert model.faulty_links() == []

    def test_add_link_fault_rejects_non_links(self, small_grid):
        model = FaultModel.fault_free(small_grid)
        with pytest.raises(ValueError):
            model.add_link_fault(((1, 1), (5, 4)), LinkBehavior.CONSTANT_ZERO)

    def test_describe_lists_all_faults(self, small_grid, rng):
        model = FaultModel(
            small_grid,
            [
                NodeFault.byzantine(small_grid, (2, 1), rng=rng),
                NodeFault.crash(small_grid, (5, 4), crash_time=33.0),
            ],
        )
        text = "\n".join(model.describe())
        assert "byzantine" in text and "crash" in text


class TestCondition1:
    def test_far_apart_faults_satisfy_condition(self, medium_grid):
        assert check_condition1(medium_grid, [(3, 1), (10, 6)])

    def test_adjacent_lower_neighbours_violate_condition(self, medium_grid):
        # (4,3) and (4,4) are both in-neighbours of (5,3).
        violations = condition1_violations(medium_grid, [(4, 3), (4, 4)])
        assert not check_condition1(medium_grid, [(4, 3), (4, 4)])
        assert any(node == (5, 3) for node, _ in violations)

    def test_same_layer_distance_two_violates(self, medium_grid):
        # (4,2) and (4,4) are both in-neighbours of (4,3) (left and right).
        assert not check_condition1(medium_grid, [(4, 2), (4, 4)])

    def test_single_fault_always_satisfies(self, medium_grid):
        for node in [(1, 0), (7, 5), (15, 9)]:
            assert check_condition1(medium_grid, [node])

    def test_forbidden_region_size(self, medium_grid):
        region = forbidden_region(medium_grid, (7, 4))
        assert (7, 4) not in region
        assert 0 < len(region) <= 12
        # Every member of the region indeed shares an out-neighbour's in-set.
        for other in region:
            assert not check_condition1(medium_grid, [(7, 4), other])

    def test_forbidden_region_members_are_exactly_the_violators(self, medium_grid):
        fault = (7, 4)
        region = forbidden_region(medium_grid, fault)
        for node in medium_grid.nodes():
            if node == fault:
                continue
            violates = not check_condition1(medium_grid, [fault, node])
            assert violates == (node in region)


class TestPlacement:
    def test_placement_respects_condition1(self, medium_grid, rng):
        for num_faults in (1, 3, 5):
            placed = place_faults(medium_grid, num_faults, rng)
            assert len(placed) == num_faults
            assert check_condition1(medium_grid, placed)

    def test_placement_excludes_layer0_by_default(self, medium_grid, rng):
        placed = place_faults(medium_grid, 6, rng)
        assert all(layer > 0 for layer, _ in placed)

    def test_placement_can_include_layer0(self, medium_grid, rng):
        seen_layer0 = False
        for _ in range(20):
            placed = place_faults(medium_grid, 4, rng, include_layer0=True)
            if any(layer == 0 for layer, _ in placed):
                seen_layer0 = True
                break
        assert seen_layer0

    def test_placement_respects_exclusions(self, medium_grid, rng):
        exclude = [(5, 3), (6, 6)]
        for _ in range(10):
            placed = place_faults(medium_grid, 3, rng, exclude=exclude)
            assert not set(placed) & set(exclude)

    def test_zero_faults(self, medium_grid, rng):
        assert place_faults(medium_grid, 0, rng) == []

    def test_too_many_faults_raises(self, rng):
        grid = HexGrid(layers=2, width=3)
        with pytest.raises((ValueError, RuntimeError)):
            place_faults(grid, 7, rng)

    def test_reproducible_with_same_seed(self, medium_grid):
        a = place_faults(medium_grid, 4, np.random.default_rng(9))
        b = place_faults(medium_grid, 4, np.random.default_rng(9))
        assert a == b


class TestProbabilityBound:
    def test_trivial_cases(self):
        assert condition1_probability_lower_bound(100, 0) == 1.0
        assert condition1_probability_lower_bound(100, 1) == 1.0

    def test_formula(self):
        # (1 - 13 (f-1)/n)^f
        value = condition1_probability_lower_bound(1020, 5)
        assert value == pytest.approx((1 - 13 * 4 / 1020) ** 5)

    def test_clipping_and_monotonicity(self):
        assert condition1_probability_lower_bound(50, 20) == 0.0
        assert condition1_probability_lower_bound(1000, 2) > condition1_probability_lower_bound(
            1000, 6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            condition1_probability_lower_bound(0, 1)
        with pytest.raises(ValueError):
            condition1_probability_lower_bound(10, -1)
