"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import lemma4_intra_layer_bound, skew_potential, theorem1_uniform_bound
from repro.core.parameters import TimingConfig, condition2_timeouts, lambda0
from repro.core.pulse_solver import solve_single_pulse
from repro.core.topology import HexGrid
from repro.faults.models import FaultModel, NodeFault
from repro.faults.placement import check_condition1, place_faults
from repro.simulation.links import UniformRandomDelays

# Keep the grids small so each hypothesis example stays fast.
grid_strategy = st.builds(
    HexGrid,
    layers=st.integers(min_value=1, max_value=8),
    width=st.integers(min_value=3, max_value=8),
)

timing_strategy = st.builds(
    lambda d_min, spread: TimingConfig(d_min=d_min, d_max=d_min + spread),
    d_min=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    spread=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)


class TestTopologyProperties:
    @given(grid=grid_strategy, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_in_out_neighbour_duality(self, grid, data):
        """v is an out-neighbour of u iff u is an in-neighbour of v."""
        layer = data.draw(st.integers(min_value=1, max_value=grid.layers))
        column = data.draw(st.integers(min_value=0, max_value=grid.width - 1))
        node = (layer, column)
        for neighbor in grid.out_neighbors(node).values():
            assert node in grid.in_neighbors(neighbor).values()
        for neighbor in grid.in_neighbors(node).values():
            assert node in grid.out_neighbors(neighbor).values()

    @given(grid=grid_strategy, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_cyclic_distance_is_a_metric_on_columns(self, grid, data):
        i = data.draw(st.integers(min_value=0, max_value=grid.width - 1))
        j = data.draw(st.integers(min_value=0, max_value=grid.width - 1))
        k = data.draw(st.integers(min_value=0, max_value=grid.width - 1))
        d = grid.cyclic_column_distance
        assert d(i, j) == d(j, i)
        assert d(i, i) == 0
        assert d(i, k) <= d(i, j) + d(j, k)
        assert d(i, j) <= grid.width // 2


class TestParameterProperties:
    @given(timing=timing_strategy, layer=st.integers(min_value=0, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_lambda0_identity(self, timing, layer):
        """l - lambda0(l) == ceil(l eps / d+) (Eq. (4)), for any legal timing.

        The identity holds exactly over the reals; with floating-point inputs
        the floor/ceil on either side can disagree when ``l d- / d+`` lands
        within rounding distance of an integer, so such boundary draws are
        skipped.
        """
        from hypothesis import assume

        ratio = layer * timing.d_min / timing.d_max
        assume(abs(ratio - round(ratio)) > 1e-6)
        value = lambda0(layer, timing.d_min, timing.d_max)
        assert 0 <= value <= layer
        assert layer - value == math.ceil(layer * timing.epsilon / timing.d_max - 1e-12)

    @given(
        timing=timing_strategy,
        sigma=st.floats(min_value=0.5, max_value=100.0),
        faults=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_condition2_orderings(self, timing, sigma, faults):
        """The Condition 2 timeouts are ordered and scale with their inputs."""
        timeouts = condition2_timeouts(timing, sigma, layers=20, num_faults=faults)
        assert timeouts.t_link_min <= timeouts.t_link_max
        assert timeouts.t_sleep_min <= timeouts.t_sleep_max
        assert timeouts.t_sleep_min > 2 * timeouts.t_link_max
        assert timeouts.pulse_separation > timeouts.t_sleep_max


class TestSkewPotentialProperties:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=3, max_size=12
        ),
        d_min=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_nonnegative_and_shift_invariant(self, times, d_min):
        value = skew_potential(times, d_min)
        assert value >= 0.0
        shifted = skew_potential(np.asarray(times) + 17.3, d_min)
        assert shifted == pytest.approx(value, abs=1e-6)

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=3, max_size=12
        ),
        d_min=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_spread(self, times, d_min):
        """Delta <= max spread of the layer times (distance term only helps)."""
        value = skew_potential(times, d_min)
        spread = max(times) - min(times)
        assert value <= spread + 1e-9


class TestSolverProperties:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        width=st.integers(min_value=4, max_value=8),
        layers=st.integers(min_value=3, max_value=8),
    )
    def test_fault_free_wave_is_causal_and_complete(self, seed, width, layers):
        """Every node fires within [l d-, l d+] of the latest source, and the
        intra-layer skew respects the Theorem 1 bound."""
        grid = HexGrid(layers=layers, width=width)
        timing = TimingConfig.paper_defaults()
        rng = np.random.default_rng(seed)
        layer0 = rng.uniform(0.0, timing.d_max, size=width)
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(grid, layer0, delays)
        assert solution.all_triggered()
        t_min, t_max = layer0.min(), layer0.max()
        for layer in range(1, layers + 1):
            row = solution.trigger_times[layer, :]
            assert np.all(row >= t_min + layer * timing.d_min - 1e-9)
            assert np.all(row <= t_max + layer * timing.d_max + 1e-9)
        # Lemma 4 with the actual layer-0 skew potential bounds every
        # intra-layer neighbour skew.
        delta0 = skew_potential(layer0, timing.d_min)
        for layer in range(1, layers + 1):
            row = solution.trigger_times[layer, :]
            skews = np.abs(row - np.roll(row, -1))
            assert np.all(
                skews <= lemma4_intra_layer_bound(timing, layer, base_skew_potential=delta0) + 1e-9
            )

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_single_byzantine_node_cannot_break_fault_free_layers_below_it(self, seed):
        """Nodes strictly below the fault's layer are unaffected by it."""
        grid = HexGrid(layers=6, width=6)
        timing = TimingConfig.paper_defaults()
        rng = np.random.default_rng(seed)
        delays = UniformRandomDelays(timing, rng)
        delays.materialize(grid)
        fault_node = (4, 2)
        model = FaultModel(
            grid, [NodeFault.byzantine(grid, fault_node, rng=np.random.default_rng(seed + 1))]
        )
        layer0 = np.zeros(grid.width)
        clean = solve_single_pulse(grid, layer0, delays)
        faulty = solve_single_pulse(grid, layer0, delays, model)
        below = slice(0, fault_node[0])
        assert np.allclose(clean.trigger_times[below, :], faulty.trigger_times[below, :])


class TestPlacementProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_faults=st.integers(min_value=1, max_value=5),
    )
    def test_place_faults_always_satisfies_condition1(self, seed, num_faults):
        grid = HexGrid(layers=10, width=8)
        rng = np.random.default_rng(seed)
        placed = place_faults(grid, num_faults, rng)
        assert len(placed) == num_faults
        assert len(set(placed)) == num_faults
        assert check_condition1(grid, placed)
        assert all(layer > 0 for layer, _ in placed)


class TestBoundMonotonicity:
    @given(
        width=st.integers(min_value=3, max_value=40),
        spread=st.floats(min_value=0.01, max_value=1.17),
    )
    @settings(max_examples=100, deadline=None)
    def test_theorem1_bound_grows_with_width_and_epsilon(self, width, spread):
        timing = TimingConfig(d_min=8.197 - spread, d_max=8.197)
        bound = theorem1_uniform_bound(timing, width)
        assert bound >= timing.d_max
        wider = theorem1_uniform_bound(timing, width + 5)
        assert wider >= bound - 1e-12
