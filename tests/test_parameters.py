"""Tests for timing parameters and the Condition 2 timeout computation."""

from __future__ import annotations

import math

import pytest

from repro.core.parameters import (
    PAPER_SIGNAL_DURATION_NS,
    TimeoutConfig,
    TimingConfig,
    condition2_timeouts,
    lambda0,
)


class TestTimingConfig:
    def test_paper_defaults(self):
        timing = TimingConfig.paper_defaults()
        assert timing.d_min == pytest.approx(7.161)
        assert timing.d_max == pytest.approx(8.197)
        assert timing.epsilon == pytest.approx(1.036)
        assert timing.theta == pytest.approx(1.05)

    def test_paper_defaults_satisfy_theorem1_constraint(self):
        # epsilon = 1.036 <= d+/7 = 1.171
        assert TimingConfig.paper_defaults().satisfies_theorem1_constraint

    def test_triangle_constraint(self):
        assert TimingConfig(d_min=6, d_max=8).satisfies_triangle_constraint
        assert not TimingConfig(d_min=3, d_max=8).satisfies_triangle_constraint

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingConfig(d_min=0.0, d_max=1.0)
        with pytest.raises(ValueError):
            TimingConfig(d_min=2.0, d_max=1.0)
        with pytest.raises(ValueError):
            TimingConfig(d_min=1.0, d_max=2.0, theta=0.9)

    def test_from_wire_and_switching(self):
        timing = TimingConfig.from_wire_and_switching(7.0, 8.0)
        assert timing.d_min == pytest.approx(7.161)
        assert timing.d_max == pytest.approx(8.197)

    def test_with_uncertainty(self):
        timing = TimingConfig.paper_defaults().with_uncertainty(0.5)
        assert timing.epsilon == pytest.approx(0.5)
        assert timing.d_max == pytest.approx(8.197)
        with pytest.raises(ValueError):
            TimingConfig.paper_defaults().with_uncertainty(100.0)

    def test_scaled(self):
        timing = TimingConfig(d_min=2.0, d_max=3.0).scaled(2.0)
        assert timing.d_min == pytest.approx(4.0)
        assert timing.d_max == pytest.approx(6.0)
        with pytest.raises(ValueError):
            TimingConfig(d_min=2.0, d_max=3.0).scaled(0.0)

    def test_delay_midpoint(self):
        assert TimingConfig(d_min=2.0, d_max=4.0).delay_midpoint == pytest.approx(3.0)


class TestLambda0:
    def test_definition(self):
        # lambda0 = floor(l * d- / d+)
        assert lambda0(10, 8.0, 10.0) == 8
        assert lambda0(7, 7.161, 8.197) == math.floor(7 * 7.161 / 8.197)
        assert lambda0(0, 1.0, 2.0) == 0

    def test_equation_4_identity(self, timing):
        # l - lambda0 = ceil(l * eps / d+)  (Eq. (4) of the paper)
        for layer in range(1, 60):
            lhs = layer - lambda0(layer, timing.d_min, timing.d_max)
            rhs = math.ceil(layer * timing.epsilon / timing.d_max)
            assert lhs == rhs

    def test_rejects_negative_layer(self):
        with pytest.raises(ValueError):
            lambda0(-1, 1.0, 2.0)

    def test_method_on_config(self, timing):
        assert timing.lambda0(20) == lambda0(20, timing.d_min, timing.d_max)


class TestCondition2:
    def test_formula_chain(self, simple_timing):
        timeouts = condition2_timeouts(simple_timing, stable_skew=20.0, layers=10, num_faults=2)
        assert timeouts.t_link_min == pytest.approx(20.0 + simple_timing.epsilon)
        assert timeouts.t_link_max == pytest.approx(1.1 * timeouts.t_link_min)
        assert timeouts.t_sleep_min == pytest.approx(2 * timeouts.t_link_max + 2 * 10.0)
        assert timeouts.t_sleep_max == pytest.approx(1.1 * timeouts.t_sleep_min)
        assert timeouts.pulse_separation == pytest.approx(
            timeouts.t_sleep_min + timeouts.t_sleep_max + simple_timing.epsilon * 10 + 2 * 10.0
        )

    @pytest.mark.parametrize(
        "sigma, expected",
        [
            (28.48, {"T_link_min": 31.98, "T_link_max": 33.58, "T_sleep_min": 83.56,
                     "T_sleep_max": 87.74, "S": 264.08}),
            (31.16, {"T_link_min": 34.66, "T_link_max": 36.39, "T_sleep_min": 89.18,
                     "T_sleep_max": 93.64, "S": 275.60}),
            (31.75, {"T_link_min": 35.25, "T_link_max": 37.01, "T_sleep_min": 90.42,
                     "T_sleep_max": 94.94, "S": 278.14}),
            (40.64, {"T_link_min": 44.14, "T_link_max": 46.34, "T_sleep_min": 109.08,
                     "T_sleep_max": 114.53, "S": 316.40}),
        ],
    )
    def test_reproduces_table3_rows(self, timing, sigma, expected):
        """Condition 2 + the footnote-10 signal-duration slack reproduces Table 3."""
        timeouts = condition2_timeouts(
            timing,
            stable_skew=sigma,
            layers=50,
            num_faults=5,
            signal_duration=PAPER_SIGNAL_DURATION_NS,
        )
        row = timeouts.as_row()
        for key, value in expected.items():
            assert row[key] == pytest.approx(value, abs=0.15), key

    def test_monotonic_in_faults_and_skew(self, timing):
        base = condition2_timeouts(timing, 20.0, layers=50, num_faults=0)
        more_faults = condition2_timeouts(timing, 20.0, layers=50, num_faults=3)
        more_skew = condition2_timeouts(timing, 30.0, layers=50, num_faults=0)
        assert more_faults.pulse_separation > base.pulse_separation
        assert more_skew.t_link_min > base.t_link_min
        assert more_skew.pulse_separation > base.pulse_separation

    def test_validation(self, timing):
        with pytest.raises(ValueError):
            condition2_timeouts(timing, stable_skew=0.0, layers=10)
        with pytest.raises(ValueError):
            condition2_timeouts(timing, stable_skew=10.0, layers=0)
        with pytest.raises(ValueError):
            condition2_timeouts(timing, stable_skew=10.0, layers=10, num_faults=-1)
        with pytest.raises(ValueError):
            condition2_timeouts(timing, stable_skew=10.0, layers=10, signal_duration=-1.0)
        with pytest.raises(ValueError):
            condition2_timeouts(timing, stable_skew=10.0, layers=10, theta=0.5)


class TestTimeoutConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeoutConfig(t_link_min=0, t_link_max=1, t_sleep_min=1, t_sleep_max=2, pulse_separation=1)
        with pytest.raises(ValueError):
            TimeoutConfig(t_link_min=2, t_link_max=1, t_sleep_min=1, t_sleep_max=2, pulse_separation=1)
        with pytest.raises(ValueError):
            TimeoutConfig(t_link_min=1, t_link_max=2, t_sleep_min=3, t_sleep_max=2, pulse_separation=1)
        with pytest.raises(ValueError):
            TimeoutConfig(t_link_min=1, t_link_max=2, t_sleep_min=2, t_sleep_max=3, pulse_separation=0)

    def test_as_row_keys(self):
        timeouts = TimeoutConfig(
            t_link_min=1, t_link_max=2, t_sleep_min=3, t_sleep_max=4, pulse_separation=5,
            stable_skew=0.5,
        )
        row = timeouts.as_row()
        assert set(row) == {"sigma", "T_link_min", "T_link_max", "T_sleep_min", "T_sleep_max", "S"}
        assert row["S"] == 5
