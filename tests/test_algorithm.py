"""Tests for the HEX node state machine (Algorithm 1 / Fig. 7)."""

from __future__ import annotations

import pytest

from repro.core.algorithm import INCOMING_DIRECTIONS, GuardKind, HexNodeAutomaton, NodePhase
from repro.core.topology import Direction


@pytest.fixture
def automaton() -> HexNodeAutomaton:
    return HexNodeAutomaton(node=(3, 2))


class TestGuards:
    def test_guard_causal_directions(self):
        assert GuardKind.LEFT_TRIGGERED.causal_directions == (
            Direction.LEFT,
            Direction.LOWER_LEFT,
        )
        assert GuardKind.CENTRALLY_TRIGGERED.causal_directions == (
            Direction.LOWER_LEFT,
            Direction.LOWER_RIGHT,
        )
        assert GuardKind.RIGHT_TRIGGERED.causal_directions == (
            Direction.LOWER_RIGHT,
            Direction.RIGHT,
        )

    def test_guard_labels(self):
        assert GuardKind.LEFT_TRIGGERED.label == "left"
        assert GuardKind.CENTRALLY_TRIGGERED.label == "central"
        assert GuardKind.RIGHT_TRIGGERED.label == "right"

    def test_no_guard_with_single_message(self, automaton):
        automaton.receive_trigger(Direction.LOWER_LEFT, now=0.0, link_timeout=10.0)
        assert automaton.satisfied_guard() is None

    def test_nonadjacent_pair_does_not_fire(self, automaton):
        # Left + right is NOT one of Algorithm 1's guards.
        automaton.receive_trigger(Direction.LEFT, now=0.0, link_timeout=10.0)
        automaton.receive_trigger(Direction.RIGHT, now=1.0, link_timeout=10.0)
        assert automaton.satisfied_guard() is None
        assert automaton.try_fire(now=1.0, sleep_duration=5.0) is None

    @pytest.mark.parametrize(
        "pair, expected",
        [
            ((Direction.LEFT, Direction.LOWER_LEFT), GuardKind.LEFT_TRIGGERED),
            ((Direction.LOWER_LEFT, Direction.LOWER_RIGHT), GuardKind.CENTRALLY_TRIGGERED),
            ((Direction.LOWER_RIGHT, Direction.RIGHT), GuardKind.RIGHT_TRIGGERED),
        ],
    )
    def test_each_guard_fires(self, automaton, pair, expected):
        for direction in pair:
            automaton.receive_trigger(direction, now=0.0, link_timeout=10.0)
        assert automaton.satisfied_guard() is expected


class TestFiring:
    def test_fire_records_time_guard_and_sleeps(self, automaton):
        automaton.receive_trigger(Direction.LOWER_LEFT, now=1.0, link_timeout=10.0)
        automaton.receive_trigger(Direction.LOWER_RIGHT, now=2.5, link_timeout=10.0)
        record = automaton.try_fire(now=2.5, sleep_duration=7.0)
        assert record is not None
        assert record.time == pytest.approx(2.5)
        assert record.guard is GuardKind.CENTRALLY_TRIGGERED
        assert automaton.phase is NodePhase.SLEEPING
        assert automaton.wake_time == pytest.approx(9.5)
        assert automaton.num_firings == 1

    def test_does_not_fire_while_sleeping(self, automaton):
        automaton.receive_trigger(Direction.LOWER_LEFT, now=0.0, link_timeout=10.0)
        automaton.receive_trigger(Direction.LOWER_RIGHT, now=0.0, link_timeout=10.0)
        automaton.try_fire(now=0.0, sleep_duration=5.0)
        # New messages arrive while sleeping; flags are set but no firing happens.
        automaton.receive_trigger(Direction.LEFT, now=1.0, link_timeout=10.0)
        assert automaton.try_fire(now=1.0, sleep_duration=5.0) is None
        assert automaton.num_firings == 1

    def test_wakeup_clears_flags(self, automaton):
        automaton.receive_trigger(Direction.LOWER_LEFT, now=0.0, link_timeout=100.0)
        automaton.receive_trigger(Direction.LOWER_RIGHT, now=0.0, link_timeout=100.0)
        automaton.try_fire(now=0.0, sleep_duration=5.0)
        automaton.receive_trigger(Direction.LEFT, now=2.0, link_timeout=100.0)
        assert automaton.wake_up(now=5.0)
        assert automaton.phase is NodePhase.READY
        assert automaton.memorized_directions() == ()
        # After waking with cleared flags, nothing fires.
        assert automaton.try_fire(now=5.0, sleep_duration=5.0) is None

    def test_stale_wakeup_is_ignored(self, automaton):
        automaton.receive_trigger(Direction.LOWER_LEFT, now=0.0, link_timeout=10.0)
        automaton.receive_trigger(Direction.LOWER_RIGHT, now=0.0, link_timeout=10.0)
        automaton.try_fire(now=0.0, sleep_duration=5.0)
        assert not automaton.wake_up(now=3.0)  # wrong time
        assert automaton.phase is NodePhase.SLEEPING
        assert not automaton.wake_up(now=6.0)  # also wrong
        assert automaton.wake_up(now=5.0)

    def test_fire_requires_positive_sleep(self, automaton):
        automaton.receive_trigger(Direction.LOWER_LEFT, now=0.0, link_timeout=10.0)
        automaton.receive_trigger(Direction.LOWER_RIGHT, now=0.0, link_timeout=10.0)
        with pytest.raises(ValueError):
            automaton.try_fire(now=0.0, sleep_duration=0.0)


class TestMemoryFlags:
    def test_receive_returns_expiry(self, automaton):
        expiry = automaton.receive_trigger(Direction.LEFT, now=3.0, link_timeout=10.0)
        assert expiry == pytest.approx(13.0)
        assert automaton.is_memorized(Direction.LEFT)

    def test_duplicate_message_is_absorbed(self, automaton):
        first = automaton.receive_trigger(Direction.LEFT, now=3.0, link_timeout=10.0)
        second = automaton.receive_trigger(Direction.LEFT, now=4.0, link_timeout=10.0)
        assert first is not None and second is None
        # The original expiry still stands.
        assert automaton.flags[Direction.LEFT] == pytest.approx(13.0)

    def test_expire_flag_clears_only_matching_expiry(self, automaton):
        expiry = automaton.receive_trigger(Direction.LEFT, now=0.0, link_timeout=10.0)
        assert not automaton.expire_flag(Direction.LEFT, expiry + 1.0)
        assert automaton.is_memorized(Direction.LEFT)
        assert automaton.expire_flag(Direction.LEFT, expiry)
        assert not automaton.is_memorized(Direction.LEFT)

    def test_expired_flag_prevents_firing(self, automaton):
        expiry = automaton.receive_trigger(Direction.LOWER_LEFT, now=0.0, link_timeout=2.0)
        automaton.expire_flag(Direction.LOWER_LEFT, expiry)
        automaton.receive_trigger(Direction.LOWER_RIGHT, now=5.0, link_timeout=2.0)
        assert automaton.satisfied_guard() is None

    def test_rejects_outgoing_direction(self, automaton):
        with pytest.raises(ValueError):
            automaton.receive_trigger(Direction.UPPER_LEFT, now=0.0, link_timeout=1.0)

    def test_rejects_nonpositive_timeout(self, automaton):
        with pytest.raises(ValueError):
            automaton.receive_trigger(Direction.LEFT, now=0.0, link_timeout=0.0)

    def test_memorized_directions_order(self, automaton):
        automaton.receive_trigger(Direction.RIGHT, now=0.0, link_timeout=10.0)
        automaton.receive_trigger(Direction.LEFT, now=0.0, link_timeout=10.0)
        assert automaton.memorized_directions() == (Direction.LEFT, Direction.RIGHT)


class TestInitialStateControl:
    def test_force_sleeping_state(self, automaton):
        automaton.force_state(NodePhase.SLEEPING, flags={Direction.LEFT: 4.0}, wake_time=9.0)
        assert automaton.phase is NodePhase.SLEEPING
        assert automaton.wake_time == pytest.approx(9.0)
        assert automaton.is_memorized(Direction.LEFT)

    def test_force_ready_state_with_satisfied_guard_fires(self, automaton):
        automaton.force_state(
            NodePhase.READY,
            flags={Direction.LOWER_LEFT: 5.0, Direction.LOWER_RIGHT: 5.0},
        )
        record = automaton.try_fire(now=0.0, sleep_duration=3.0)
        assert record is not None and record.guard is GuardKind.CENTRALLY_TRIGGERED

    def test_force_state_rejects_outgoing_flag(self, automaton):
        with pytest.raises(ValueError):
            automaton.force_state(NodePhase.READY, flags={Direction.UPPER_LEFT: 1.0})

    def test_reset(self, automaton):
        automaton.receive_trigger(Direction.LOWER_LEFT, now=0.0, link_timeout=10.0)
        automaton.receive_trigger(Direction.LOWER_RIGHT, now=0.0, link_timeout=10.0)
        automaton.try_fire(now=0.0, sleep_duration=5.0)
        automaton.reset()
        assert automaton.phase is NodePhase.READY
        assert automaton.num_firings == 0
        assert automaton.memorized_directions() == ()

    def test_incoming_directions_constant(self):
        assert INCOMING_DIRECTIONS == (
            Direction.LEFT,
            Direction.LOWER_LEFT,
            Direction.LOWER_RIGHT,
            Direction.RIGHT,
        )
