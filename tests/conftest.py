"""Shared fixtures for the HEX reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid
from repro.experiments.config import ExperimentConfig


@pytest.fixture
def timing() -> TimingConfig:
    """The paper's delay bounds ([7.161, 8.197] ns, theta = 1.05)."""
    return TimingConfig.paper_defaults()


@pytest.fixture
def simple_timing() -> TimingConfig:
    """Round-number delay bounds convenient for hand-computed expectations."""
    return TimingConfig(d_min=8.0, d_max=10.0, theta=1.1)


@pytest.fixture
def small_grid() -> HexGrid:
    """A small grid (L=6, W=5) for exhaustive structural checks."""
    return HexGrid(layers=6, width=5)


@pytest.fixture
def medium_grid() -> HexGrid:
    """A mid-size grid (L=15, W=10) for behavioural checks."""
    return HexGrid(layers=15, width=10)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def quick_config() -> ExperimentConfig:
    """The quick experiment configuration (20x10 grid, 5 runs)."""
    return ExperimentConfig.quick()
