"""Tests for ``repro.stream``: moments, quantile sketches and summaries.

The hypothesis properties here are the documented contracts of the package:

* :class:`~repro.stream.quantiles.GKSketch` returns stream elements whose
  rank error is within ``ceil(epsilon * n)`` of the target rank -- on
  uniform, bimodal and adversarially sorted (ascending/descending) streams;
* :class:`~repro.stream.moments.StreamingMoments` matches NumPy's mean and
  variance to 1e-9 and ``float(sum(...))`` bit for bit;
* the hybrid :class:`~repro.stream.quantiles.StreamingQuantiles` is
  bit-identical to ``numpy.quantile``/``numpy.median`` below ``exact_cap``;
* serialization round trips reproduce the uninterrupted accumulator state
  exactly (the soak checkpoint-resume contract).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.stream import (
    GKSketch,
    StreamSummary,
    StreamingMoments,
    StreamingQuantiles,
    interpolated_quantile,
)

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)

value_lists = st.lists(finite_floats, min_size=1, max_size=2000)

quantile_points = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def _rank_error(sketch: GKSketch, ordered: np.ndarray, q: float) -> int:
    """Rank distance between ``sketch.query(q)`` and the target rank.

    The estimate must be an element of the stream; with duplicates it
    occupies the whole rank range ``[lo, hi]`` and the error is the distance
    from that range to the target rank ``ceil(q * n)``.
    """
    n = ordered.size
    estimate = sketch.query(q)
    target = max(1, min(n, math.ceil(q * n)))
    lo = int(np.searchsorted(ordered, estimate, side="left")) + 1
    hi = int(np.searchsorted(ordered, estimate, side="right"))
    assert lo <= hi, f"query({q}) = {estimate} is not an element of the stream"
    if lo <= target <= hi:
        return 0
    return min(abs(lo - target), abs(hi - target))


def _assert_within_bound(values, epsilon: float) -> None:
    sketch = GKSketch(epsilon=epsilon)
    sketch.extend(values)
    ordered = np.sort(np.asarray(values, dtype=float))
    bound = math.ceil(epsilon * ordered.size)
    for q in quantile_points:
        assert _rank_error(sketch, ordered, q) <= bound


class TestGKSketch:
    @given(values=value_lists, epsilon=st.sampled_from([0.005, 0.01, 0.05, 0.1]))
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_rank_error_bound_arbitrary_order(self, values, epsilon):
        _assert_within_bound(values, epsilon)

    @given(values=value_lists, epsilon=st.sampled_from([0.01, 0.05]))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_rank_error_bound_adversarially_sorted(self, values, epsilon):
        """The bound is worst-case over orderings: sorted input must not break it."""
        _assert_within_bound(sorted(values), epsilon)
        _assert_within_bound(sorted(values, reverse=True), epsilon)

    @pytest.mark.parametrize("epsilon", [0.005, 0.02])
    def test_rank_error_bound_bimodal_stream(self, epsilon):
        rng = np.random.default_rng(42)
        values = np.concatenate(
            [rng.normal(-100.0, 1.0, 5000), rng.normal(100.0, 1.0, 5000)]
        )
        _assert_within_bound(values.tolist(), epsilon)

    @pytest.mark.parametrize("epsilon", [0.005, 0.02])
    def test_rank_error_bound_large_uniform_stream(self, epsilon):
        rng = np.random.default_rng(7)
        _assert_within_bound(rng.uniform(-1e3, 1e3, 20000).tolist(), epsilon)

    @given(values=value_lists)
    @settings(max_examples=50, deadline=None)
    def test_extremes_are_exact(self, values):
        """q=0 and q=1 return the exact stream min/max, never merged away."""
        sketch = GKSketch(epsilon=0.1)
        sketch.extend(values)
        assert sketch.query(0.0) == min(values)
        assert sketch.query(1.0) == max(values)

    def test_memory_stays_sublinear(self):
        rng = np.random.default_rng(3)
        sketch = GKSketch(epsilon=0.01)
        sketch.extend(rng.uniform(size=200_000).tolist())
        sketch.flush()
        # O((1/eps) * log(eps * n)) tuples; a generous multiple of 1/eps
        # still demonstrates the summary is nowhere near the stream length.
        assert sketch.num_entries < 20 * int(1.0 / sketch.epsilon)

    def test_empty_sketch_queries_nan(self):
        assert math.isnan(GKSketch().query(0.5))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GKSketch(epsilon=0.0)
        with pytest.raises(ValueError):
            GKSketch(epsilon=0.7)
        with pytest.raises(ValueError):
            GKSketch().query(1.5)

    @given(values=value_lists)
    @settings(max_examples=30, deadline=None)
    def test_serialization_round_trip_resumes_exactly(self, values):
        """Round-tripping mid-stream reproduces the uninterrupted state."""
        split = len(values) // 2
        straight = GKSketch(epsilon=0.02)
        straight.extend(values[:split])
        straight.flush()
        straight.extend(values[split:])
        resumed = GKSketch(epsilon=0.02)
        resumed.extend(values[:split])
        resumed = GKSketch.from_json_dict(
            json.loads(json.dumps(resumed.to_json_dict()))
        )
        resumed.extend(values[split:])
        assert resumed.to_json_dict() == straight.to_json_dict()


class TestStreamingMoments:
    @given(values=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_to_1e9(self, values):
        moments = StreamingMoments()
        moments.extend(values)
        array = np.asarray(values, dtype=float)
        assert moments.count == array.size
        assert math.isclose(moments.mean, float(np.mean(array)), rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(
            moments.variance(), float(np.var(array)), rel_tol=1e-9, abs_tol=1e-9
        )
        if array.size > 1:
            assert math.isclose(
                moments.variance(ddof=1), float(np.var(array, ddof=1)),
                rel_tol=1e-9, abs_tol=1e-9,
            )
        assert moments.min == float(np.min(array))
        assert moments.max == float(np.max(array))

    @given(values=value_lists)
    @settings(max_examples=50, deadline=None)
    def test_total_is_bit_identical_to_sequential_sum(self, values):
        """The campaign wall-time contract: total == float(sum(...)) exactly."""
        moments = StreamingMoments()
        moments.extend(values)
        assert moments.total == float(sum(values))

    @given(values=value_lists)
    @settings(max_examples=50, deadline=None)
    def test_serialization_round_trip_resumes_exactly(self, values):
        split = len(values) // 2
        straight = StreamingMoments()
        straight.extend(values)
        resumed = StreamingMoments()
        resumed.extend(values[:split])
        resumed = StreamingMoments.from_json_dict(
            json.loads(json.dumps(resumed.to_json_dict()))
        )
        resumed.extend(values[split:])
        assert resumed.to_json_dict() == straight.to_json_dict()

    def test_empty_moments(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert math.isnan(moments.variance())
        assert math.isnan(moments.std())
        assert moments.to_json_dict()["min"] is None


class TestStreamingQuantiles:
    @given(values=st.lists(finite_floats, min_size=1, max_size=256))
    @settings(max_examples=50, deadline=None)
    def test_exact_below_cap_bit_identical_to_numpy(self, values):
        quantiles = StreamingQuantiles(exact_cap=256)
        quantiles.extend(values)
        assert quantiles.is_exact
        array = np.asarray(values, dtype=float)
        for q in (0.1, 0.5, 0.95):
            assert quantiles.quantile(q) == float(np.quantile(array, q))
        assert quantiles.median() == float(np.median(array))

    def test_none_cap_never_spills(self):
        quantiles = StreamingQuantiles(exact_cap=None)
        quantiles.extend(range(10_000))
        assert quantiles.is_exact
        assert quantiles.count == 10_000
        assert quantiles.median() == float(np.median(np.arange(10_000)))

    def test_spill_preserves_count_and_bound(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(-1e3, 1e3, 5000)
        quantiles = StreamingQuantiles(epsilon=0.01, exact_cap=100)
        quantiles.extend(values.tolist())
        assert not quantiles.is_exact
        assert quantiles.count == values.size
        ordered = np.sort(values)
        bound = math.ceil(0.01 * values.size)
        assert quantiles._sketch is not None
        for q in quantile_points:
            assert _rank_error(quantiles._sketch, ordered, q) <= bound

    @given(values=value_lists, cap=st.sampled_from([16, 64, 4096]))
    @settings(max_examples=30, deadline=None)
    def test_serialization_round_trip_resumes_exactly(self, values, cap):
        split = len(values) // 2
        straight = StreamingQuantiles(epsilon=0.02, exact_cap=cap)
        straight.extend(values[:split])
        if straight._sketch is not None:
            straight._sketch.flush()
        straight.extend(values[split:])
        resumed = StreamingQuantiles(epsilon=0.02, exact_cap=cap)
        resumed.extend(values[:split])
        resumed = StreamingQuantiles.from_json_dict(
            json.loads(json.dumps(resumed.to_json_dict()))
        )
        resumed.extend(values[split:])
        assert resumed.to_json_dict() == straight.to_json_dict()

    def test_empty_quantiles_nan(self):
        quantiles = StreamingQuantiles()
        assert math.isnan(quantiles.quantile(0.5))
        assert math.isnan(quantiles.median())

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            StreamingQuantiles(exact_cap=0)


class TestStreamSummary:
    @given(values=value_lists)
    @settings(max_examples=30, deadline=None)
    def test_stats_shape_and_exact_agreement_below_cap(self, values):
        summary = StreamSummary(exact_cap=4096)
        summary.extend(values)
        stats = summary.stats()
        array = np.asarray(values, dtype=float)
        assert stats["count"] == float(array.size)
        assert stats["min"] == float(np.min(array))
        assert stats["max"] == float(np.max(array))
        assert stats["p50"] == float(np.median(array))
        assert stats["p95"] == float(np.quantile(array, 0.95))

    @given(values=value_lists)
    @settings(max_examples=30, deadline=None)
    def test_checkpoint_round_trip_resumes_exactly(self, values):
        """The soak checkpoint contract: flush + serialize + resume is a no-op."""
        split = len(values) // 2
        straight = StreamSummary(epsilon=0.02, exact_cap=32)
        straight.extend(values[:split])
        straight.flush()
        straight.extend(values[split:])
        straight.flush()
        resumed = StreamSummary(epsilon=0.02, exact_cap=32)
        resumed.extend(values[:split])
        resumed.flush()
        resumed = StreamSummary.from_json_dict(
            json.loads(json.dumps(resumed.to_json_dict()))
        )
        resumed.extend(values[split:])
        resumed.flush()
        assert resumed.to_json_dict() == straight.to_json_dict()

    def test_empty_summary_stats_are_nan(self):
        stats = StreamSummary().stats()
        assert stats["count"] == 0.0
        for key in ("mean", "min", "max", "p50", "p95"):
            assert math.isnan(stats[key])


class TestInterpolatedQuantile:
    @given(values=st.lists(finite_floats, min_size=1, max_size=500), q=st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_linear_interpolation(self, values, q):
        ordered = sorted(values)
        expected = float(np.quantile(np.asarray(ordered), q))
        assert math.isclose(
            interpolated_quantile(ordered, q), expected, rel_tol=1e-12, abs_tol=1e-12
        )

    def test_empty_is_nan(self):
        assert math.isnan(interpolated_quantile([], 0.5))
