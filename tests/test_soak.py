"""Tests for the soak subsystem: runner, observer, checkpoints and CLI.

The load-bearing contracts:

* epoch accounting (pulses, faults injected/healed) matches the spec;
* a mid-run checkpoint exists, reloads, and a resumed run reaches a state
  bit-identical (``state_key``) to one that never stopped;
* the streamed skew agrees *exactly* with the post-hoc
  :func:`repro.analysis.streaming.pulse_skew_series` computation on a
  fault-free run (same windowing rule, same firings);
* ``collect_firings=False`` keeps nothing per pulse;
* the ``hex-repro soak`` verb round-trips through checkpoint, resume and
  ``trace summarize``.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.analysis.streaming import pulse_skew_series
from repro.clocksource.generator import PulseScheduleConfig, generate_pulse_schedule
from repro.clocksource.scenarios import Scenario
from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid
from repro.engines.des import DesEngine, scenario_stabilization_timeouts
from repro.experiments.soak import (
    SoakObserver,
    SoakSpec,
    checkpoint_path,
    load_checkpoint,
    run_soak,
)
from repro.stream import StreamSummary

TINY = SoakSpec(
    layers=3,
    width=3,
    num_pulses=60,
    pulses_per_epoch=20,
    faults=1,
    seed=99,
    exact_cap=16,
)


class TestSoakSpec:
    def test_epoch_arithmetic(self):
        spec = SoakSpec(num_pulses=1050, pulses_per_epoch=500)
        assert spec.num_epochs == 3
        assert spec.epoch_pulses(0) == 500
        assert spec.epoch_pulses(2) == 50

    def test_json_round_trip_omits_defaults(self):
        spec = SoakSpec()
        payload = spec.to_json_dict()
        assert "fault_type" not in payload
        assert "initial_states" not in payload
        assert SoakSpec.from_json_dict(payload) == spec
        variant = SoakSpec(fault_type="fail_silent", initial_states="clean")
        assert SoakSpec.from_json_dict(variant.to_json_dict()) == variant

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_pulses": 0},
            {"pulses_per_epoch": 0},
            {"faults": -1},
            {"fault_type": "gremlins"},
            {"heal_fraction": 0.25},
            {"heal_fraction": 0.95},
            {"epsilon": 0.0},
            {"exact_cap": -1},
            {"initial_states": "haunted"},
            {"width": 2},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            SoakSpec(**kwargs)


class TestRunSoak:
    def test_counts_and_summary(self):
        result = run_soak(TINY)
        assert result.pulses == TINY.num_pulses
        assert result.epochs == TINY.num_epochs
        assert result.faults_injected == TINY.faults * TINY.num_epochs
        assert result.faults_healed == result.faults_injected
        # Every pulse window on this tiny fault-tolerant grid is eligible.
        assert 0 < result.skew.count <= TINY.num_pulses
        assert result.skew.stats()["max"] < math.inf
        assert result.checkpoint_path is None
        assert result.checkpoints_written == 0

    def test_deterministic_state_across_runs(self):
        first = run_soak(TINY)
        second = run_soak(TINY)
        assert (
            first.final_checkpoint().state_key()
            == second.final_checkpoint().state_key()
        )

    def test_mid_run_checkpoint_reloads_and_resume_is_bit_identical(self, tmp_path):
        straight = run_soak(TINY)

        class _StopEpoch(RuntimeError):
            pass

        def _interrupt(stats):
            # The progress callback fires before the epoch's checkpoint is
            # written, so dying at epoch 3 leaves the epoch-2 snapshot behind.
            if stats["epoch"] == 3:
                raise _StopEpoch()

        with pytest.raises(_StopEpoch):
            run_soak(TINY, store=tmp_path, checkpoint_every=1, progress=_interrupt)
        path = checkpoint_path(tmp_path, TINY)
        assert path.exists(), "mid-run checkpoint was not written"
        partial = load_checkpoint(path)
        assert partial.epochs_completed == 2
        assert partial.pulses_completed == 2 * TINY.pulses_per_epoch

        resumed = run_soak(TINY, store=tmp_path, resume=True, checkpoint_every=1)
        assert resumed.resumed_epochs == 2
        assert resumed.pulses == TINY.num_pulses
        assert (
            resumed.final_checkpoint().state_key()
            == straight.final_checkpoint().state_key()
        )

    def test_resume_of_finished_run_is_a_noop(self, tmp_path):
        done = run_soak(TINY, store=tmp_path)
        again = run_soak(TINY, store=tmp_path, resume=True)
        assert again.resumed_epochs == TINY.num_epochs
        assert again.checkpoints_written == 0
        assert (
            again.final_checkpoint().state_key()
            == done.final_checkpoint().state_key()
        )

    def test_resume_rejects_spec_mismatch(self, tmp_path):
        run_soak(TINY, store=tmp_path)
        other = SoakSpec(**{**TINY.__dict__, "seed": TINY.seed + 1})
        # Different spec -> different checkpoint file; forge a collision by
        # renaming the existing artifact onto the other spec's path.
        checkpoint_path(tmp_path, TINY).rename(checkpoint_path(tmp_path, other))
        with pytest.raises(ValueError, match="different spec"):
            run_soak(other, store=tmp_path, resume=True)

    def test_fault_free_soak_has_no_churn(self):
        spec = SoakSpec(
            layers=3, width=3, num_pulses=20, pulses_per_epoch=10, faults=0, seed=5
        )
        result = run_soak(spec)
        assert result.faults_injected == 0
        assert result.faults_healed == 0
        assert result.recoveries == 0
        assert result.skew.count == spec.num_pulses

    def test_obs_gauges_and_counters(self):
        from repro import obs

        obs.enable(metrics=True)
        try:
            run_soak(TINY)
            registry = obs.registry()
            assert registry is not None
            snapshot = registry.snapshot()
            assert snapshot["counters"]["soak.pulses"] == float(TINY.num_pulses)
            assert snapshot["gauges"]["soak.epochs"] == float(TINY.num_epochs)
            assert "soak.skew_p95_s" in snapshot["gauges"]
        finally:
            obs.disable()


class TestStreamingMatchesPostHoc:
    def test_fault_free_streamed_skew_equals_pulse_skew_series(self):
        """Streamed skew == the exact post-hoc series, observation for observation."""
        layers, width, num_pulses = 4, 4, 30
        grid = HexGrid(layers=layers, width=width)
        timing = TimingConfig.paper_defaults()
        timeouts = scenario_stabilization_timeouts(
            Scenario.ZERO, width, layers, 0, timing,
            extra_hops=grid.condition2_extra_hops(),
        )
        separation = timeouts.pulse_separation
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(
                scenario=Scenario.ZERO, num_pulses=num_pulses, separation=separation
            ),
            width,
            timing,
            rng=np.random.default_rng(17),
        )
        skew = StreamSummary(exact_cap=None)
        observer = SoakObserver(
            grid,
            separation=separation,
            num_windows=num_pulses,
            skew_threshold=math.inf,
            skew=skew,
            recovery=StreamSummary(),
        )
        result = DesEngine().multi_pulse(
            grid,
            timing,
            timeouts,
            schedule,
            rng=np.random.default_rng(23),
            initial_states="clean",
            observer=observer,
            collect_firings=True,
        )
        observer.finish_epoch()
        exact = pulse_skew_series(result)
        exact = exact[~np.isnan(exact)]
        streamed = np.sort(np.asarray(skew.quantiles._exact, dtype=float))
        assert streamed.size == exact.size
        np.testing.assert_array_equal(streamed, np.sort(exact))
        assert skew.quantile(0.95) == float(np.quantile(exact, 0.95))

    def test_collect_firings_false_keeps_nothing(self):
        grid = HexGrid(layers=3, width=3)
        timing = TimingConfig.paper_defaults()
        timeouts = scenario_stabilization_timeouts(
            Scenario.ZERO, 3, 3, 0, timing, extra_hops=grid.condition2_extra_hops()
        )
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(
                scenario=Scenario.ZERO, num_pulses=5,
                separation=timeouts.pulse_separation,
            ),
            3,
            timing,
            rng=np.random.default_rng(1),
        )
        result = DesEngine().multi_pulse(
            grid,
            timing,
            timeouts,
            schedule,
            rng=np.random.default_rng(2),
            initial_states="clean",
            collect_firings=False,
        )
        assert result.firing_times == {}


class TestSoakCli:
    def _run(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        out = capsys.readouterr().out
        return code, out

    def test_soak_checkpoint_summarize_resume(self, tmp_path, capsys):
        store = tmp_path / "artifacts"
        argv = [
            "soak",
            "--layers", "3", "--width", "3",
            "--pulses", "40", "--pulses-per-epoch", "20",
            "--faults", "1", "--seed", "99",
            "--store", str(store), "--checkpoint-every", "1",
            "--quiet",
        ]
        code, out = self._run(argv, capsys)
        assert code == 0
        assert "40 pulses over 2 epochs" in out
        checkpoints = sorted(store.glob("soak-*.json"))
        assert len(checkpoints) == 1

        code, out = self._run(
            ["trace", "summarize", str(checkpoints[0]), "--top", "5"], capsys
        )
        assert code == 0
        assert "soak checkpoint" in out
        assert "skew" in out

        code, out = self._run(argv + ["--resume"], capsys)
        assert code == 0
        assert "(2 resumed)" in out

    def test_soak_json_output(self, capsys):
        code, out = self._run(
            [
                "soak",
                "--layers", "3", "--width", "3",
                "--pulses", "20", "--pulses-per-epoch", "10",
                "--faults", "0", "--seed", "7",
                "--quiet", "--json",
            ],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "hex-repro/soak/v1"
        assert payload["pulses_completed"] == 20
        assert payload["checkpoint_path"] is None

    def test_trace_summarize_top_truncates_spans(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "sweep", "--layers", "3", "--width", "3",
                "--scenarios", "i", "--runs", "2",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "more" in out
