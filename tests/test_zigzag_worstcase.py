"""Tests for causal zig-zag paths (Definitions 1-2) and the worst-case constructions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pulse_solver import solve_single_pulse
from repro.core.topology import HexGrid
from repro.core.worstcase import fig17_single_byzantine_worst_case, fig5_worst_case_wave
from repro.core.zigzag import build_left_zigzag_path, lemma2_upper_bound
from repro.simulation.links import ConstantDelays, UniformRandomDelays


class TestZigZagConstruction:
    def test_path_terminates_and_is_causal(self, medium_grid, timing, rng):
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        path = build_left_zigzag_path(solution, destination=(10, 4), target_column=6)
        assert path.length > 0
        assert path.destination == (10, 4)
        assert path.is_causal(solution, timing)
        # Terminates either triangularly in the target column or in layer 0.
        if path.triangular:
            assert path.origin[1] == 6
            assert path.excess_up_left > 0
        else:
            assert path.origin[0] == 0

    def test_link_kinds_follow_definition2(self, medium_grid, timing, rng):
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        path = build_left_zigzag_path(solution, destination=(12, 2), target_column=3)
        for link in path.links:
            (sl, sc), (dl, dc) = link.source, link.destination
            if link.kind == "rightward":
                assert sl == dl and (sc + 1) % medium_grid.width == dc
            else:
                assert sl == dl - 1 and sc == (dc + 1) % medium_grid.width

    def test_nodes_chain_is_contiguous(self, medium_grid, timing, rng):
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        path = build_left_zigzag_path(solution, destination=(8, 1), target_column=2)
        nodes = path.nodes()
        assert nodes[0] == path.origin and nodes[-1] == path.destination
        for link, source, destination in zip(path.links, nodes, nodes[1:]):
            assert link.source == source and link.destination == destination

    def test_lemma1_prefixes_of_triangular_paths(self, timing):
        """With all delays d+, every node is centrally triggered, so the zig-zag
        path is a pure diagonal and triangular; all its prefixes must be too."""
        grid = HexGrid(layers=8, width=10)
        solution = solve_single_pulse(grid, np.zeros(grid.width), ConstantDelays(timing.d_max))
        path = build_left_zigzag_path(solution, destination=(6, 3), target_column=4)
        assert path.triangular
        assert path.num_rightward == 0
        for length in range(1, path.length + 1):
            prefix = path.prefix(length)
            assert prefix.excess_up_left > 0

    def test_lemma2_bound_holds_on_random_executions(self, medium_grid, timing, rng):
        """For triangular paths, t_{l, i'} <= t_{l, i} + r d- + (l - l') eps."""
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        checked = 0
        for destination in [(6, 2), (8, 5), (12, 7), (14, 1)]:
            for target in range(medium_grid.width):
                path = build_left_zigzag_path(solution, destination, target)
                if not path.triangular or path.excess_up_left <= 0:
                    continue
                bound = lemma2_upper_bound(path, solution, timing)
                end_layer = path.destination[0]
                observed = solution.trigger_time((end_layer, path.origin[1]))
                assert observed <= bound + 1e-9
                checked += 1
        assert checked > 0

    def test_destination_must_be_forwarding_node(self, medium_grid, timing, rng):
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        with pytest.raises(ValueError):
            build_left_zigzag_path(solution, destination=(0, 3), target_column=1)

    def test_prefix_validation(self, medium_grid, timing, rng):
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        path = build_left_zigzag_path(solution, destination=(5, 3), target_column=4)
        with pytest.raises(ValueError):
            path.prefix(path.length + 1)
        with pytest.raises(ValueError):
            lemma2_upper_bound(path.prefix(0), solution, timing) if path.prefix(0).excess_up_left <= 0 else None


class TestFig5Construction:
    def test_structure(self, timing):
        construction = fig5_worst_case_wave(timing)
        assert construction.name == "fig5"
        assert construction.focus_columns == (8, 9)
        # Barrier column is dead in every forwarding layer.
        barrier_nodes = [n for n in construction.fault_model.faulty_nodes() if n[1] == 16]
        assert len(barrier_nodes) == construction.grid.layers

    def test_focus_skew_far_exceeds_random_case_but_respects_lemma4(self, timing):
        from repro.core.bounds import lemma4_intra_layer_bound, skew_potential

        construction = fig5_worst_case_wave(timing)
        solution = solve_single_pulse(
            construction.grid,
            construction.layer0_times,
            construction.delays,
            fault_model=construction.fault_model,
        )
        top = construction.grid.layers
        left, right = construction.focus_columns
        skew = abs(solution.trigger_time((top, left)) - solution.trigger_time((top, right)))
        # Far above the d+-level skews of random executions ...
        assert skew > 2 * timing.d_max
        # ... close to d+ + L*eps by design ...
        assert skew == pytest.approx(timing.d_max + top * timing.epsilon, rel=0.05)
        # ... and below the Lemma 4 bound for the construction's layer-0 potential.
        delta0 = skew_potential(construction.layer0_times, timing.d_min)
        assert skew <= lemma4_intra_layer_bound(timing, top, base_skew_potential=delta0) + 1e-9

    def test_parameter_validation(self, timing):
        with pytest.raises(ValueError):
            fig5_worst_case_wave(timing, fast_column=0)
        with pytest.raises(ValueError):
            fig5_worst_case_wave(timing, width=10, barrier_column=12)


class TestFig17Construction:
    def test_structure(self, timing):
        construction = fig17_single_byzantine_worst_case(timing)
        assert construction.focus_node is not None
        assert construction.reference_fault_model is not None
        # The Byzantine node is present on top of the barrier nodes.
        assert construction.fault_model.num_faulty_nodes == (
            construction.reference_fault_model.num_faulty_nodes + 1
        )

    def test_single_fault_generates_multiple_dmax_of_skew(self, timing):
        from repro.experiments import fig17

        result = fig17.run(timing)
        d_max = timing.d_max
        # The paper's construction reaches ~5 d+; ours reaches >= 3 d+ and the
        # inter-layer skew is smaller by about one d+.
        assert result.max_intra_skew >= 3 * d_max - 1e-6
        assert result.max_intra_skew - result.max_inter_skew == pytest.approx(d_max, rel=0.2)
        # Without the fault the same region shows only ~d+ of skew.
        assert result.fault_free_max_intra_skew <= d_max + 1e-6

    def test_parameter_validation(self, timing):
        with pytest.raises(ValueError):
            fig17_single_byzantine_worst_case(timing, fault_layer=0)
        with pytest.raises(ValueError):
            fig17_single_byzantine_worst_case(timing, fault_column=5, barrier_column=6)
