"""Tests for the analytic single-pulse solver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.algorithm import GuardKind
from repro.core.pulse_solver import solve_single_pulse
from repro.core.topology import Direction, HexGrid
from repro.faults.models import FaultModel, LinkBehavior, NodeFault
from repro.simulation.links import ConstantDelays, TableDelays, UniformRandomDelays


class TestFaultFreePropagation:
    def test_constant_delays_zero_skew(self, small_grid, simple_timing):
        """With identical delays and aligned sources every layer fires in lockstep."""
        delays = ConstantDelays(simple_timing.d_max)
        solution = solve_single_pulse(small_grid, np.zeros(small_grid.width), delays)
        for layer in range(small_grid.layers + 1):
            expected = layer * simple_timing.d_max
            assert np.allclose(solution.trigger_times[layer, :], expected)

    def test_all_nodes_triggered_with_random_delays(self, medium_grid, timing, rng):
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        assert solution.all_triggered()

    def test_trigger_times_respect_link_delay_lower_bound(self, medium_grid, timing, rng):
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        times = solution.trigger_times
        for layer in range(1, medium_grid.layers + 1):
            assert np.all(times[layer, :] >= layer * timing.d_min - 1e-9)
            assert np.all(times[layer, :] <= layer * timing.d_max + 1e-9)

    def test_every_node_fires_after_both_causal_inputs(self, medium_grid, timing, rng):
        """The firing time equals the max of the two causal arrivals (Definition 1)."""
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        for node in medium_grid.forwarding_nodes():
            guard = solution.guard_kind(node)
            assert guard is not None
            arrivals = []
            for direction in guard.causal_directions:
                source = medium_grid.neighbor(node, direction)
                arrivals.append(solution.trigger_time(source) + delays.delay(source, node))
            assert solution.trigger_time(node) == pytest.approx(max(arrivals))

    def test_guard_reported_matches_definition1(self, medium_grid, timing, rng):
        """No other guard could have fired strictly earlier than the reported one."""
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        for node in list(medium_grid.forwarding_nodes())[:50]:
            fire_time = solution.trigger_time(node)
            for kind in GuardKind:
                arrivals = []
                for direction in kind.causal_directions:
                    source = medium_grid.neighbor(node, direction)
                    arrivals.append(solution.trigger_time(source) + delays.delay(source, node))
                assert max(arrivals) >= fire_time - 1e-9

    def test_layer0_times_are_propagated_unchanged(self, small_grid, timing, rng):
        layer0 = np.linspace(0.0, 3.0, small_grid.width)
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(small_grid, layer0, delays)
        assert np.allclose(solution.layer0_times, layer0)
        assert np.allclose(solution.trigger_times[0, :], layer0)

    def test_monotone_in_layer0_times(self, small_grid, timing, rng):
        """Delaying a source can only delay (never advance) any trigger time."""
        delays = UniformRandomDelays(timing, rng)
        delays.materialize(small_grid)
        base = solve_single_pulse(small_grid, np.zeros(small_grid.width), delays)
        shifted_layer0 = np.zeros(small_grid.width)
        shifted_layer0[2] = 5.0
        shifted = solve_single_pulse(small_grid, shifted_layer0, delays)
        assert np.all(shifted.trigger_times >= base.trigger_times - 1e-9)

    def test_wrong_layer0_shape_raises(self, small_grid, timing, rng):
        with pytest.raises(ValueError):
            solve_single_pulse(small_grid, np.zeros(3), UniformRandomDelays(timing, rng))


class TestFaultyPropagation:
    def test_fail_silent_node_is_nan_and_neighbours_still_fire(self, medium_grid, timing, rng):
        fault = NodeFault.fail_silent(medium_grid, (5, 3))
        model = FaultModel(medium_grid, [fault])
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays, model)
        assert math.isnan(solution.trigger_time((5, 3)))
        assert solution.all_triggered()  # all *correct* nodes fired

    def test_two_adjacent_silent_nodes_starve_their_common_upper_neighbour(self, medium_grid, timing, rng):
        """Violating Condition 1 with two silent lower neighbours blocks a node."""
        model = FaultModel(
            medium_grid,
            [
                NodeFault.fail_silent(medium_grid, (4, 3)),
                NodeFault.fail_silent(medium_grid, (4, 4)),
            ],
        )
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays, model)
        # Node (5, 3) has lower-left (4,3) and lower-right (4,4) silent, so it
        # can only be left- or right-triggered -- which additionally requires
        # one of the silent nodes.  It therefore never fires.
        assert math.isinf(solution.trigger_time((5, 3)))

    def test_constant_one_links_can_trigger_early(self, medium_grid, timing, rng):
        """A Byzantine node asserting both links of a guard fires the victim at once."""
        node = (5, 3)
        grid = medium_grid
        behaviors = {dest: LinkBehavior.CONSTANT_ONE for dest in grid.out_neighbors(node).values()}
        model = FaultModel(grid, [NodeFault.byzantine(grid, node, behaviors=behaviors)])
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(grid, np.zeros(grid.width), delays, model)
        # The right neighbour of the fault sees a stuck-at-1 left link; its
        # left guard completes as soon as its lower-left message arrives, i.e.
        # potentially before the fault-free schedule -- and never later.
        victim = grid.neighbor(node, Direction.RIGHT)
        fault_free = solve_single_pulse(grid, np.zeros(grid.width), delays)
        assert solution.trigger_time(victim) <= fault_free.trigger_time(victim) + 1e-9

    def test_byzantine_node_never_delays_far_away_nodes(self, medium_grid, timing, rng):
        """Under Condition 1 a single Byzantine node cannot slow down remote nodes much."""
        node = (5, 3)
        model = FaultModel(medium_grid, [NodeFault.byzantine(medium_grid, node, rng=rng)])
        delays = UniformRandomDelays(timing, rng)
        delays.materialize(medium_grid)
        faulty = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays, model)
        clean = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays)
        far_node = (12, 8)
        assert faulty.trigger_time(far_node) <= clean.trigger_time(far_node) + 2 * timing.d_max

    def test_crash_fault_treated_as_silent_by_solver(self, medium_grid, timing, rng):
        model = FaultModel(medium_grid, [NodeFault.crash(medium_grid, (3, 2), crash_time=0.0)])
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays, model)
        assert math.isnan(solution.trigger_time((3, 2)))

    def test_faulty_layer0_source_is_ignored(self, medium_grid, timing, rng):
        model = FaultModel(medium_grid, [NodeFault.fail_silent(medium_grid, (0, 4))])
        delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays, model)
        assert math.isnan(solution.trigger_times[0, 4])
        assert solution.all_triggered()

    def test_mismatched_fault_model_grid_raises(self, medium_grid, small_grid, timing, rng):
        model = FaultModel(small_grid)
        with pytest.raises(ValueError):
            solve_single_pulse(
                medium_grid, np.zeros(medium_grid.width), UniformRandomDelays(timing, rng), model
            )


class TestSolutionAccessors:
    def test_causal_in_neighbors(self, small_grid, simple_timing):
        delays = ConstantDelays(simple_timing.d_min)
        solution = solve_single_pulse(small_grid, np.zeros(small_grid.width), delays)
        node = (3, 2)
        causal = solution.causal_in_neighbors(node)
        assert len(causal) == 2
        for neighbor in causal:
            assert neighbor in small_grid.in_neighbors(node).values()
        assert solution.causal_in_neighbors((0, 0)) == ()

    def test_finite_times_masks_inf(self, medium_grid, timing, rng):
        model = FaultModel(
            medium_grid,
            [
                NodeFault.fail_silent(medium_grid, (4, 3)),
                NodeFault.fail_silent(medium_grid, (4, 4)),
            ],
        )
        solution = solve_single_pulse(
            medium_grid, np.zeros(medium_grid.width), UniformRandomDelays(timing, rng), model
        )
        finite = solution.finite_times()
        assert np.isnan(finite[5, 3])

    def test_guard_matrix_values(self, small_grid, simple_timing):
        solution = solve_single_pulse(
            small_grid, np.zeros(small_grid.width), ConstantDelays(simple_timing.d_min)
        )
        assert np.all(solution.guards[0, :] == -1)
        assert np.all(solution.guards[1:, :] >= 0)


class TestWorstCaseDelays:
    def test_table_delays_shape_skews(self, simple_timing):
        """Fast left half / slow right half yields a bounded but visible skew."""
        grid = HexGrid(layers=8, width=8)
        table = TableDelays({}, default=simple_timing.d_max)
        for source, destination in grid.links():
            if destination[1] < 4:
                table.set(source, destination, simple_timing.d_min)
        solution = solve_single_pulse(grid, np.zeros(grid.width), table)
        top = solution.trigger_times[grid.layers, :]
        assert top[0] < top[5]
        # The coupling of the HEX rule keeps the neighbour skew of the boundary
        # columns far below the accumulated difference of the two halves.
        assert abs(top[4] - top[3]) < grid.layers * (simple_timing.d_max - simple_timing.d_min)
