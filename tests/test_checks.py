"""Tests for repro.checks: the contract-enforcing static analysis pass."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checks import (
    Finding,
    available_rules,
    get_rule,
    load_builtin_rules,
    register_rule,
    run_checks,
    scan_package,
    schema,
    unregister_rule,
)
from repro.checks.contentkeys import (
    GOLDEN_SPECS,
    OMISSION_MANIFESTS,
    OmissionManifest,
    golden_key_findings,
    omission_findings,
)
from repro.checks.layering import LAYER_DAG, package_of
from repro.checks.registry import CheckContext
from repro.checks.schemas import SCHEMA_PATTERN, SCHEMAS
from repro.cli import main

load_builtin_rules()


def make_tree(root: Path, files: dict) -> Path:
    """Write a fixture package tree: ``{"simulation/bad.py": source}``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def findings_of(report, rule):
    return [finding for finding in report.findings if finding.rule == rule]


# ----------------------------------------------------------------------
# framework: source model, waivers, findings
# ----------------------------------------------------------------------
class TestFramework:
    def test_scan_package_module_names(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "__init__.py": "",
                "simulation/__init__.py": "",
                "simulation/bad.py": "x = 1\n",
            },
        )
        modules = {m.module: m for m in scan_package(tmp_path)}
        assert set(modules) == {"repro", "repro.simulation", "repro.simulation.bad"}
        assert modules["repro.simulation.bad"].rel_path == "simulation/bad.py"
        assert modules["repro.simulation.bad"].package_relative() == "simulation.bad"

    def test_waivers_parse_only_from_comments(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "simulation/mod.py": (
                    '"""Docs mention # repro: allow-import[not a waiver]."""\n'
                    "import json  # repro: allow-import[ real reason ]\n"
                    'text = "# repro: allow-random[also not a waiver]"\n'
                )
            },
        )
        [module] = scan_package(tmp_path)
        assert len(module.waivers) == 1
        assert module.waivers[0].tag == "import"
        assert module.waivers[0].reason == "real reason"
        assert module.waivers[0].line == 2

    def test_waiver_at_prefers_same_line(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "simulation/mod.py": (
                    "import json  # repro: allow-import[first]\n"
                    "import math  # repro: allow-import[second]\n"
                )
            },
        )
        [module] = scan_package(tmp_path)
        assert module.waiver_at(2, "import").reason == "second"
        assert module.waiver_at(1, "import").reason == "first"
        assert module.waiver_at(3, "import").reason == "second"  # line above
        assert module.waiver_at(2, "random") is None

    def test_finding_format_and_sorting(self):
        finding = Finding(rule="L001", severity="error", path="a.py", line=3, message="m")
        assert finding.format() == "a.py:3: L001 m"
        with pytest.raises(ValueError):
            Finding(rule="X", severity="fatal", path="a.py", line=1, message="m")
        with pytest.raises(ValueError):
            Finding(rule="X", severity="error", path="a.py", line=0, message="m")
        unsorted = [
            Finding(rule="B", severity="error", path="b.py", line=1, message="m"),
            Finding(rule="A", severity="error", path="a.py", line=9, message="m"),
            Finding(rule="Z", severity="error", path="a.py", line=2, message="m"),
        ]
        ordered = sorted(unsorted, key=Finding.sort_key)
        assert [f.path for f in ordered] == ["a.py", "a.py", "b.py"]

    def test_registry_lookup_and_reserved_ids(self):
        assert get_rule("L001").name == "layering-dag"
        with pytest.raises(ValueError, match="unknown rule"):
            get_rule("X999")
        with pytest.raises(ValueError, match="reserved"):
            register_rule(id="W001", name="bad")(lambda context: [])
        with pytest.raises(ValueError, match="already registered"):
            register_rule(id="L001", name="dup")(lambda context: [])
        register_rule(id="T900", name="test-rule")(lambda context: [])
        try:
            assert get_rule("T900").severity == "error"
        finally:
            unregister_rule("T900")


# ----------------------------------------------------------------------
# layering rules
# ----------------------------------------------------------------------
class TestLayering:
    def test_known_bad_import_is_found(self, tmp_path):
        make_tree(
            tmp_path,
            {"simulation/bad.py": "import json\nfrom repro.obs import get_logger\n"},
        )
        report = run_checks(root=tmp_path, rule_ids=["L001"])
        [finding] = findings_of(report, "L001")
        assert finding.path == "simulation/bad.py"
        assert finding.line == 2
        assert "obs" in finding.message
        assert report.exit_code() == 1

    def test_allowed_edges_and_foundation_leaf(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "engines/ok.py": (
                    "from repro.core.topology import HexGrid\n"
                    "from repro.obs import get_logger\n"
                    "from repro.checks.schemas import schema\n"
                ),
                "core/ok.py": "from repro.checks.schemas import schema\n",
            },
        )
        report = run_checks(root=tmp_path, rule_ids=["L001"])
        assert report.clean

    def test_relative_imports_resolve_inside_package(self, tmp_path):
        make_tree(tmp_path, {"simulation/mod.py": "from . import engine\n"})
        report = run_checks(root=tmp_path, rule_ids=["L001"])
        assert report.clean

    def test_waiver_with_reason_moves_finding_aside(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "simulation/bad.py": (
                    "from repro.obs import get_logger  # repro: allow-import[legacy]\n"
                )
            },
        )
        report = run_checks(root=tmp_path, rule_ids=["L001"])
        assert report.clean
        [waived] = report.waived
        assert waived.waived and waived.waiver_reason == "legacy"

    def test_empty_reason_keeps_finding_and_adds_w001(self, tmp_path):
        make_tree(
            tmp_path,
            {"simulation/bad.py": "from repro.obs import x  # repro: allow-import[]\n"},
        )
        report = run_checks(root=tmp_path, rule_ids=["L001"])
        assert {f.rule for f in report.findings} == {"L001", "W001"}

    def test_stale_waiver_flagged_only_on_full_runs(self, tmp_path):
        make_tree(
            tmp_path,
            {"core/ok.py": "import json  # repro: allow-import[nothing wrong here]\n"},
        )
        full = run_checks(root=tmp_path)
        assert [f.rule for f in full.findings] == ["W002"]
        subset = run_checks(root=tmp_path, rule_ids=["L001"])
        assert subset.clean

    def test_undeclared_package_is_flagged(self, tmp_path):
        make_tree(tmp_path, {"newpkg/mod.py": "x = 1\n", "newpkg/other.py": "y = 2\n"})
        report = run_checks(root=tmp_path, rule_ids=["L002"])
        [finding] = findings_of(report, "L002")  # one finding per package, not per file
        assert "newpkg" in finding.message

    def test_package_of(self):
        assert package_of("repro.engines.base") == "engines"
        assert package_of("repro.checks.schemas") == "checks.schemas"
        assert package_of("repro.checks.layering") == "checks"
        assert package_of("repro") == ""

    def test_dag_covers_the_real_tree(self):
        from repro.checks.registry import default_root

        for module in scan_package(default_root()):
            package = package_of(module.module)
            assert package in LAYER_DAG or package == "checks.schemas", module.module


# ----------------------------------------------------------------------
# determinism rules
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_global_random_calls_are_found(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/bad.py": (
                    "import random\n"
                    "import numpy as np\n"
                    "x = random.random()\n"
                    "np.random.seed(0)\n"
                    "rng = np.random.default_rng()\n"
                )
            },
        )
        report = run_checks(root=tmp_path, rule_ids=["D001"])
        lines = sorted(f.line for f in findings_of(report, "D001"))
        assert lines == [1, 3, 4, 5]

    def test_seeded_generators_pass(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/ok.py": (
                    "import numpy as np\n"
                    "rng = np.random.default_rng(42)\n"
                    "seq = np.random.SeedSequence(entropy=1)\n"
                    "value = rng.random()\n"
                )
            },
        )
        report = run_checks(root=tmp_path, rule_ids=["D001"])
        assert report.clean

    def test_wall_clock_outside_allowlist(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "simulation/bad.py": "import time\nnow = time.time()\n",
                "obs/fine.py": "import time\nnow = time.perf_counter()\n",
                "bench/fine.py": "import time\nnow = time.monotonic()\n",
            },
        )
        report = run_checks(root=tmp_path, rule_ids=["D002"])
        [finding] = findings_of(report, "D002")
        assert finding.path == "simulation/bad.py"

    def test_json_dumps_needs_sort_keys(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "campaign/mixed.py": (
                    "import json\n"
                    "a = json.dumps({})\n"
                    "b = json.dumps({}, sort_keys=True)\n"
                    "c = json.dumps({}, indent=2)\n"
                )
            },
        )
        report = run_checks(root=tmp_path, rule_ids=["D003"])
        assert sorted(f.line for f in findings_of(report, "D003")) == [2, 4]

    def test_float_equality_only_in_hot_paths(self, tmp_path):
        source = "def f(x):\n    return x == 0.5 or x != float('inf')\n"
        make_tree(
            tmp_path,
            {"simulation/network.py": source, "analysis/slow.py": source},
        )
        report = run_checks(root=tmp_path, rule_ids=["D004"])
        [finding] = findings_of(report, "D004")
        assert finding.path == "simulation/network.py"


# ----------------------------------------------------------------------
# content-key stability rules
# ----------------------------------------------------------------------
class TestContentKeys:
    def test_real_manifests_are_clean(self):
        context = CheckContext(root=Path("."), modules=[])
        assert list(omission_findings(context, OMISSION_MANIFESTS())) == []

    def test_serialized_default_field_is_flagged(self):
        class Leaky:
            def to_json_dict(self):
                return {"layers": 50, "topology": "cylinder"}  # default leaked

        manifest = OmissionManifest(
            name="Leaky",
            anchor="engines/base.py",
            build_default=Leaky,
            omitted=("topology",),
        )
        context = CheckContext(root=Path("."), modules=[])
        [finding] = omission_findings(context, [manifest])
        assert finding.rule == "K001"
        assert "topology" in finding.message

    def test_dropped_non_default_field_is_flagged(self):
        class Dropper:
            def to_json_dict(self):
                return {"layers": 50}

        manifest = OmissionManifest(
            name="Dropper",
            anchor="campaign/spec.py",
            build_default=Dropper,
            omitted=("topology",),
            probes={"topology": Dropper},  # non-default still missing
        )
        context = CheckContext(root=Path("."), modules=[])
        [finding] = omission_findings(context, [manifest])
        assert finding.rule == "K001"
        assert "drops non-default" in finding.message

    def test_golden_corpus_matches(self):
        assert list(golden_key_findings(GOLDEN_SPECS())) == []

    def test_changed_golden_key_is_flagged(self):
        corpus = {"fake-spec": (lambda: "0" * 32, "f" * 32)}
        [finding] = golden_key_findings(corpus)
        assert finding.rule == "K002"
        assert "fake-spec" in finding.message

    def test_broken_golden_spec_is_flagged(self):
        def broken():
            raise TypeError("unexpected keyword argument")

        [finding] = golden_key_findings({"broken-spec": (broken, "0" * 32)})
        assert finding.rule == "K002"
        assert "no longer constructs" in finding.message


# ----------------------------------------------------------------------
# artifact-schema rules
# ----------------------------------------------------------------------
class TestSchemas:
    def test_registry_lookup(self):
        assert schema("trace") == "hex-repro/trace/v1"
        with pytest.raises(KeyError, match="unknown artifact schema"):
            schema("nonexistent")
        for key, value in SCHEMAS.items():
            match = SCHEMA_PATTERN.match(value)
            assert match is not None and match.group("name") == key

    def test_duplicated_schema_string_is_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "campaign/dup.py": (
                    '"""Prose may mention hex-repro/trace/v1 freely."""\n'
                    'SCHEMA = "hex-repro/run-record/v1"\n'
                )
            },
        )
        report = run_checks(root=tmp_path, rule_ids=["S001"])
        [finding] = findings_of(report, "S001")
        assert finding.line == 2

    def test_waived_literal_is_allowed(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "cli.py": (
                    'EXAMPLE = "hex-repro/trace/v1"'
                    "  # repro: allow-schema-literal[help example]\n"
                )
            },
        )
        report = run_checks(root=tmp_path, rule_ids=["S001"])
        assert report.clean and len(report.waived) == 1

    def test_malformed_registry_is_flagged(self, monkeypatch):
        import repro.checks.artifacts as artifacts

        monkeypatch.setitem(SCHEMAS, "bogus", "hex-repro/other-name/v1")
        context = CheckContext(root=Path("."), modules=[])
        findings = list(artifacts.check_schema_registry(context))
        assert any("bogus" in f.message for f in findings)


# ----------------------------------------------------------------------
# end-to-end over the real tree, and the CLI verb
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_real_tree_is_clean(self):
        report = run_checks()
        assert report.findings == [], report.render()
        assert all(finding.waiver_reason for finding in report.waived)
        assert report.exit_code() == 0

    def test_all_rule_families_registered(self):
        ids = {rule.id for rule in available_rules()}
        assert {"L001", "L002", "D001", "D002", "D003", "D004", "K001", "K002", "S001", "S002"} <= ids

    def test_cli_check_clean(self, capsys):
        assert main(["check"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_check_json_document(self, capsys, tmp_path):
        out_file = tmp_path / "findings.json"
        assert main(["check", "--json", "--out", str(out_file)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == schema("check-findings")
        assert document["findings"] == []
        assert document["waived"]
        assert json.loads(out_file.read_text()) == document

    def test_cli_check_list_and_rule_selection(self, capsys):
        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        assert "L001" in out and "layering-dag" in out
        assert main(["check", "--rule", "S002"]) == 0
        assert main(["check", "--rule", "NOPE"]) == 2  # unknown rule -> CLI error

    def test_cli_check_fails_on_bad_tree(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "simulation/bad.py": "from repro.obs import x\n",
                "core/rand.py": "import random\nv = random.random()\n",
            },
        )
        assert main(["check", "--root", str(tmp_path), "--rule", "L001", "--rule", "D001"]) == 1
        out = capsys.readouterr().out
        assert "simulation/bad.py:1: L001" in out
        assert "core/rand.py:2: D001" in out
