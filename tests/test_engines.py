"""Tests of the unified engine protocol, registry and RunSpec execution API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.runner import CampaignRunner, execute_task
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.cli import main
from repro.clocksource.scenarios import scenario_layer0_times
from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid
from repro.engines import (
    ArrayEngine,
    ClockTreeEngine,
    DesEngine,
    EngineCapabilities,
    RunSpec,
    SolverEngine,
    available_engines,
    generic_run_batch,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.engines.array import delay_envelope
from repro.engines.base import batch_key, require_exactness
from repro.faults.placement import build_fault_model
from repro.simulation.links import UniformRandomDelays
from repro.simulation.runner import simulate_multi_pulse, simulate_single_pulse


@pytest.fixture
def timing():
    return TimingConfig.paper_defaults()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = available_engines()
        assert "solver" in names
        assert "des" in names
        assert "clocktree" in names
        assert "array" in names

    def test_get_engine_returns_singletons(self):
        assert get_engine("solver") is get_engine("solver")
        assert isinstance(get_engine("solver"), SolverEngine)
        assert isinstance(get_engine("des"), DesEngine)
        assert isinstance(get_engine("clocktree"), ClockTreeEngine)
        assert isinstance(get_engine("array"), ArrayEngine)

    def test_unknown_engine_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            get_engine("vhdl")
        message = str(excinfo.value)
        assert "unknown engine 'vhdl'" in message
        for name in available_engines():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_engine(SolverEngine())
        register_engine(SolverEngine(), replace=True)  # idempotent override is fine

    def test_register_and_unregister_custom_engine(self):
        class NullEngine:
            name = "null"
            capabilities = EngineCapabilities(kinds=("single_pulse",))

            def run(self, spec, rng=None):  # pragma: no cover - never called
                raise NotImplementedError

        try:
            register_engine(NullEngine())
            assert "null" in available_engines()
            assert isinstance(get_engine("null"), NullEngine)
        finally:
            unregister_engine("null")
        assert "null" not in available_engines()

    def test_non_engine_rejected(self):
        with pytest.raises(TypeError):
            register_engine(object())

    def test_capabilities_reject_unknown_kind(self):
        with pytest.raises(ValueError):
            EngineCapabilities(kinds=("chaos",))


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_json_round_trip_is_identity(self):
        spec = RunSpec(
            kind="multi_pulse",
            layers=12,
            width=8,
            scenario="iii",
            num_faults=2,
            fault_type="byzantine",
            fixed_fault_positions=((3, 1), (7, 4)),
            timeouts=(10.0, 20.0, 30.0, 40.0, 500.0, 60.0),
            timer_policy="nominal",
            num_pulses=4,
            entropy=2013,
            run_index=3,
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.key() == spec.key()
        assert restored.to_json() == spec.to_json()

    def test_aliases_canonicalised(self):
        assert RunSpec(scenario="(iv)").scenario == "ramp"
        assert RunSpec(scenario="i") == RunSpec(scenario="zero")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            RunSpec.from_json_dict({"kind": "single_pulse", "warp_factor": 9})

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec(kind="chaos")
        with pytest.raises(ValueError):
            RunSpec(delay_model="psychic")
        with pytest.raises(ValueError):
            RunSpec(num_faults=-1)
        with pytest.raises(ValueError):
            RunSpec(num_pulses=0)
        with pytest.raises(ValueError):
            RunSpec(timeouts=(1.0, 2.0))

    def test_rng_matches_campaign_task_stream(self):
        spec = RunSpec(entropy=77, run_index=5)
        expected = np.random.default_rng(
            np.random.SeedSequence(entropy=77, spawn_key=(5,))
        )
        assert spec.rng().uniform() == expected.uniform()

    def test_run_kind_mismatch_raises(self):
        spec = RunSpec(kind="multi_pulse", layers=4, width=4, entropy=1)
        with pytest.raises(ValueError, match="does not support kind"):
            get_engine("solver").run(spec)
        with pytest.raises(ValueError, match="does not support kind"):
            get_engine("clocktree").run(spec)


# ----------------------------------------------------------------------
# shim-vs-engine and task-vs-engine bit-identity
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["solver", "des"])
    def test_shim_matches_engine_single_pulse(self, timing, engine):
        grid = HexGrid(layers=6, width=5)
        layer0 = np.linspace(0.0, 1.0, grid.width)
        shim = simulate_single_pulse(
            grid, timing, layer0, rng=np.random.default_rng(11), engine=engine
        )
        direct = get_engine(engine).single_pulse(
            grid, timing, layer0, rng=np.random.default_rng(11)
        )
        np.testing.assert_array_equal(shim.trigger_times, direct.trigger_times)
        np.testing.assert_array_equal(shim.correct_mask, direct.correct_mask)
        assert shim.engine == direct.engine == engine

    @pytest.mark.parametrize("engine", ["solver", "des"])
    def test_engine_run_matches_historical_body(self, timing, engine):
        """engine.run(spec) reproduces the historical draw order bit-for-bit."""
        spec = RunSpec(
            kind="single_pulse",
            layers=6,
            width=5,
            scenario="iii",
            num_faults=1,
            fault_type="byzantine",
            entropy=424242,
            run_index=2,
        )
        result = get_engine(engine).run(spec)

        # The historical per-run body: layer-0 draw, fault placement and
        # behaviour, then link delays inside the entry point -- all from one
        # generator rebuilt from (entropy, run_index).
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=424242, spawn_key=(2,))
        )
        grid = spec.make_grid()
        layer0 = scenario_layer0_times("iii", grid.width, timing, rng=rng)
        fault_model = build_fault_model(grid, 1, spec.make_fault_type(), rng)
        expected = simulate_single_pulse(
            grid, timing, layer0, rng=rng, fault_model=fault_model, engine=engine
        )
        np.testing.assert_array_equal(result.layer0_times, layer0)
        np.testing.assert_array_equal(result.trigger_times, expected.trigger_times)
        assert sorted(fault_model.faulty_nodes()) == sorted(
            result.fault_model.faulty_nodes()
        )

    def test_multi_pulse_shim_matches_engine(self, timing):
        grid = HexGrid(layers=4, width=4)
        engine = get_engine("des")
        spec = RunSpec(
            kind="multi_pulse", layers=4, width=4, num_pulses=2, entropy=9, run_index=0
        )
        via_run = engine.run(spec)
        shim = simulate_multi_pulse(
            grid,
            timing,
            via_run.timeouts,
            via_run.source_schedule,
            rng=np.random.default_rng(123),
        )
        direct = engine.multi_pulse(
            grid,
            timing,
            via_run.timeouts,
            via_run.source_schedule,
            rng=np.random.default_rng(123),
        )
        assert shim.firing_times == direct.firing_times
        assert shim.total_firings() == direct.total_firings()
        assert via_run.num_pulses == shim.num_pulses == 2


# ----------------------------------------------------------------------
# solver-vs-DES agreement (fault-free property test)
# ----------------------------------------------------------------------
class TestSolverDesAgreement:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        layers=st.integers(min_value=2, max_value=5),
        width=st.integers(min_value=3, max_value=6),
    )
    def test_shared_delays_agree_exactly(self, seed, layers, width):
        """With one shared per-link delay model the two semantics coincide."""
        timing = TimingConfig.paper_defaults()
        grid = HexGrid(layers=layers, width=width)
        rng = np.random.default_rng(seed)
        layer0 = rng.uniform(0.0, timing.d_max, size=width)
        delays = UniformRandomDelays(timing, rng)
        solver = get_engine("solver").single_pulse(
            grid, timing, layer0, rng=rng, delays=delays
        )
        des = get_engine("des").single_pulse(
            grid, timing, layer0, rng=np.random.default_rng(seed + 1), delays=delays
        )
        assert solver.all_correct_triggered() and des.all_correct_triggered()
        np.testing.assert_allclose(
            solver.trigger_times, des.trigger_times, rtol=0.0, atol=1e-9
        )

    @settings(max_examples=8, deadline=None)
    @given(
        entropy=st.integers(min_value=0, max_value=2**32 - 1),
        layers=st.integers(min_value=2, max_value=5),
        width=st.integers(min_value=3, max_value=6),
    )
    def test_independent_draws_agree_within_bounds(self, entropy, layers, width):
        """Fault-free runs of both engines stay inside the analytic envelope."""
        spec = RunSpec(
            kind="single_pulse",
            layers=layers,
            width=width,
            scenario="iii",
            entropy=entropy,
        )
        timing = spec.make_timing()
        for name in ("solver", "des"):
            result = get_engine(name).run(spec)
            assert result.all_correct_triggered()
            layer0 = result.layer0_times
            low = float(np.min(layer0))
            high = float(np.max(layer0))
            for layer in range(1, layers + 1):
                row = result.trigger_times[layer, :]
                assert np.all(row >= low + layer * timing.d_min - 1e-9)
                assert np.all(row <= high + layer * timing.d_max + 1e-9)


# ----------------------------------------------------------------------
# clock-tree engine & campaign integration
# ----------------------------------------------------------------------
class TestClockTreeEngine:
    def test_covers_grid_and_reports_metrics(self):
        spec = RunSpec(kind="single_pulse", layers=6, width=5, entropy=3)
        result = get_engine("clocktree").run(spec)
        side = int(2 ** result.metrics["tree_levels"])
        assert result.trigger_times.shape == (side, side)
        assert result.metrics["tree_num_sinks"] >= spec.make_grid().num_nodes
        assert np.all(np.isfinite(result.trigger_times))
        assert result.metrics["tree_global_skew"] > 0.0
        assert result.metrics["tree_max_neighbor_skew"] >= result.metrics[
            "tree_avg_neighbor_skew"
        ] >= 0.0

    def test_deterministic_given_spec(self):
        spec = RunSpec(kind="single_pulse", layers=6, width=5, entropy=3)
        first = get_engine("clocktree").run(spec)
        second = get_engine("clocktree").run(spec)
        np.testing.assert_array_equal(first.trigger_times, second.trigger_times)

    def test_rejects_faults(self):
        spec = RunSpec(kind="single_pulse", layers=6, width=5, num_faults=1,
                       fault_type="byzantine", entropy=3)
        with pytest.raises(ValueError, match="does not support fault injection"):
            get_engine("clocktree").run(spec)

    def test_rejects_explicit_inputs_via_shim(self, timing):
        grid = HexGrid(layers=4, width=4)
        with pytest.raises(ValueError, match="explicit layer0_times"):
            simulate_single_pulse(
                grid, timing, np.zeros(4), seed=0, engine="clocktree"
            )


class TestCampaignIntegration:
    def _three_engine_spec(self, runs=2):
        cell = SweepSpec(
            layers=6, width=5, scenario="i", engine=("solver", "des", "clocktree"),
            runs=runs, seed_salt=0,
        )
        return CampaignSpec(name="three-engines", seed=7, cells=(cell,))

    def test_sweep_covers_all_engines(self):
        result = CampaignRunner(self._three_engine_spec()).run()
        engines_seen = {record.params["engine"] for record in result.records}
        assert engines_seen == {"solver", "des", "clocktree"}
        for record in result.records:
            assert record.skew is not None
            assert np.isfinite(record.skew["intra_max"])

    def test_serial_parallel_bit_identity(self):
        spec = self._three_engine_spec()
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        assert [r.canonical_json() for r in serial.records] == [
            r.canonical_json() for r in parallel.records
        ]

    def test_faultless_engine_with_faults_axis_rejected_at_build_time(self):
        with pytest.raises(ValueError, match="does not support fault injection"):
            SweepSpec(engine=("solver", "clocktree"), num_faults=(0, 1))
        # Fault-free cells and multi-pulse cells (engine axis inert) stay valid.
        SweepSpec(engine=("solver", "clocktree"), num_faults=0)
        SweepSpec(engine="clocktree", num_faults=(0, 1), kind="multi_pulse")

    def test_single_pulse_task_timeout_override_stays_inert(self):
        """Campaign timeouts are a multi-pulse parameter; single-pulse DES
        records must not change when one is present (historical contract)."""
        override = (10.0, 400.0, 420.0, 800.0, 1000.0, 60.0)
        base = SweepSpec(layers=5, width=4, engine="des", runs=1)
        with_override = SweepSpec(layers=5, width=4, engine="des", runs=1,
                                  timeouts=override)
        record_a = execute_task(CampaignSpec(name="a", seed=11, cells=(base,)).tasks()[0])
        record_b = execute_task(
            CampaignSpec(name="b", seed=11, cells=(with_override,)).tasks()[0]
        )
        assert record_a.skew == record_b.skew
        np.testing.assert_array_equal(
            np.asarray(record_a.trigger_times), np.asarray(record_b.trigger_times)
        )
        # Direct RunSpec users *do* get the override honoured by the engine.
        import dataclasses

        task = CampaignSpec(name="b", seed=11, cells=(with_override,)).tasks()[0]
        honoured_spec = dataclasses.replace(task.to_run_spec(), timeouts=override)
        honoured = get_engine("des").run(honoured_spec)
        assert honoured.timeouts.t_sleep_max == 800.0

    def test_unknown_task_engine_fails_before_running(self):
        task = self._three_engine_spec().tasks()[0]
        import dataclasses

        broken = dataclasses.replace(task, engine="vhdl")
        with pytest.raises(ValueError, match="unknown engine"):
            execute_task(broken)

    def test_array_engine_axis_serial_parallel_resumed_bit_identity(self, tmp_path):
        """Campaign determinism with the dense engine on the engine axis.

        Serial, parallel and store-resumed executions of a
        ``require_exactness="bit_identical"`` cell must produce byte-identical
        records, and the solver/array record pairs at each sweep point must
        carry identical trigger times (the contract, observed end to end).
        """
        cell = SweepSpec(
            layers=6,
            width=5,
            scenario="iii",
            engine=("solver", "array"),
            delay_model=("constant", "max_skew"),
            runs=2,
            seed_salt=0,
            require_exactness="bit_identical",
        )
        spec = CampaignSpec(name="dense-axis", seed=13, cells=(cell,))
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        CampaignRunner(spec, store=tmp_path).run()
        resumed = CampaignRunner(spec, store=tmp_path, resume=True).run()
        canonical = [r.canonical_json() for r in serial.records]
        assert canonical == [r.canonical_json() for r in parallel.records]
        assert canonical == [r.canonical_json() for r in resumed.records]

        # Each sweep point derives its own entropy, so engine-axis neighbours
        # are distinct runs; the bit-identity claim is checked by replaying
        # every array task's exact derived RunSpec on the reference solver.
        import dataclasses

        array_tasks = [task for task in spec.tasks() if task.engine == "array"]
        assert len(array_tasks) == len(serial.records) // 2
        for task in array_tasks:
            array_record = execute_task(task)
            solver_record = execute_task(dataclasses.replace(task, engine="solver"))
            np.testing.assert_array_equal(
                np.asarray(array_record.trigger_times),
                np.asarray(solver_record.trigger_times),
            )

    def test_multi_pulse_point_ignores_single_pulse_engine(self):
        """The engine axis stays inert for multi-pulse cells (documented)."""
        cells = tuple(
            SweepSpec(
                layers=4, width=4, kind="multi_pulse", num_pulses=2, runs=1,
                engine=engine, seed_salt=0,
            )
            for engine in ("solver", "des")
        )
        spec = CampaignSpec(name="mp", seed=3, cells=cells)
        records = CampaignRunner(spec).run().records
        assert records[0].total_firings == records[1].total_firings
        assert records[0].stabilization_time == records[1].stabilization_time


# ----------------------------------------------------------------------
# the exactness contract (EngineCapabilities.exactness / exact_when)
# ----------------------------------------------------------------------
class TestExactnessContract:
    def test_capabilities_validation(self):
        with pytest.raises(ValueError, match="unknown exactness"):
            EngineCapabilities(kinds=("single_pulse",), exactness="vibes")
        with pytest.raises(ValueError, match="unknown exact_when predicate"):
            EngineCapabilities(
                kinds=("single_pulse",),
                exactness="bit_identical",
                exact_when=("lucky",),
            )
        with pytest.raises(ValueError, match="only gate a 'bit_identical'"):
            EngineCapabilities(
                kinds=("single_pulse",),
                exactness="tolerance",
                exact_when=("fault_free",),
            )
        with pytest.raises(ValueError, match="tolerance must be positive"):
            EngineCapabilities(kinds=("single_pulse",), tolerance=0.0)

    def test_is_exact_for_consults_spec_regime(self):
        capabilities = get_engine("array").capabilities
        exact = RunSpec(layers=4, width=4, delay_model="constant", entropy=1)
        assert capabilities.is_exact_for(exact)
        assert capabilities.is_exact_for(
            RunSpec(layers=4, width=4, delay_model="max_skew", entropy=1)
        )
        # Random delays break the deterministic_delays predicate; so does the
        # per-kind "default" resolution (single-pulse default is uniform).
        assert not capabilities.is_exact_for(
            RunSpec(layers=4, width=4, delay_model="uniform", entropy=1)
        )
        assert not capabilities.is_exact_for(RunSpec(layers=4, width=4, entropy=1))
        # The solver's claim is unconditional.
        assert get_engine("solver").capabilities.is_exact_for(
            RunSpec(layers=4, width=4, entropy=1)
        )
        # Tolerance engines never claim bitwise agreement.
        assert not get_engine("des").capabilities.is_exact_for(exact)

    def test_require_exactness_names_unmet_predicates(self):
        spec = RunSpec(layers=4, width=4, delay_model="uniform", entropy=1)
        require_exactness(get_engine("solver"), spec, "bit_identical")
        require_exactness(get_engine("des"), spec, "tolerance")
        with pytest.raises(ValueError, match="deterministic_delays"):
            require_exactness(get_engine("array"), spec, "bit_identical")
        with pytest.raises(ValueError, match="cannot promise bit-identical"):
            require_exactness(get_engine("des"), spec, "bit_identical")
        with pytest.raises(ValueError, match="no quantitative agreement"):
            require_exactness(get_engine("clocktree"), spec, "tolerance")
        with pytest.raises(ValueError, match="unknown exactness requirement"):
            require_exactness(get_engine("solver"), spec, "vibes")

    def test_sweepspec_require_exactness_checked_at_build_time(self):
        SweepSpec(
            layers=6,
            width=5,
            engine=("solver", "array"),
            delay_model=("constant", "max_skew"),
            require_exactness="bit_identical",
        )
        with pytest.raises(ValueError, match="require_exactness"):
            SweepSpec(
                layers=6,
                width=5,
                engine=("array",),
                delay_model=("uniform",),
                require_exactness="bit_identical",
            )
        with pytest.raises(ValueError, match="require_exactness"):
            SweepSpec(layers=6, width=5, engine=("des",), require_exactness="bit_identical")
        with pytest.raises(ValueError, match="require_exactness"):
            SweepSpec(layers=6, width=5, engine=("clocktree",), require_exactness="tolerance")
        with pytest.raises(ValueError, match="unknown require_exactness"):
            SweepSpec(layers=6, width=5, require_exactness="psychic")

    def test_sweepspec_require_exactness_serialization(self):
        default = SweepSpec(layers=6, width=5)
        assert "require_exactness" not in default.to_json_dict()
        cell = SweepSpec(
            layers=6,
            width=5,
            engine=("solver", "array"),
            delay_model=("constant",),
            require_exactness="bit_identical",
        )
        document = cell.to_json_dict()
        assert document["require_exactness"] == "bit_identical"
        assert SweepSpec.from_json_dict(document) == cell


# ----------------------------------------------------------------------
# the dense numpy-frontier array engine
# ----------------------------------------------------------------------
ARRAY_TOPOLOGIES = (
    "cylinder",
    "torus",
    "patch",
    "degraded:nodes=2,links=3,seed=11",
)


class TestArrayEngine:
    @pytest.mark.parametrize("topology", ARRAY_TOPOLOGIES)
    @pytest.mark.parametrize("delay_model", ["constant", "max_skew"])
    def test_bit_identical_to_solver_in_contract_regime(self, topology, delay_model):
        spec = RunSpec(
            layers=9,
            width=7,
            topology=topology,
            delay_model=delay_model,
            scenario="iii",
            entropy=2013,
            run_index=4,
        )
        assert get_engine("array").capabilities.is_exact_for(spec)
        array = get_engine("array").run(spec)
        solver = get_engine("solver").run(spec)
        np.testing.assert_array_equal(array.trigger_times, solver.trigger_times)
        np.testing.assert_array_equal(array.correct_mask, solver.correct_mask)
        np.testing.assert_array_equal(array.layer0_times, solver.layer0_times)
        assert array.engine == "array" and array.spec == spec

    def test_run_batch_bit_identical_to_per_spec_loop(self):
        engine = get_engine("array")
        specs = [
            RunSpec(layers=5, width=6, delay_model="constant", entropy=8, run_index=i)
            for i in range(4)
        ] + [
            RunSpec(
                layers=4,
                width=5,
                topology="torus",
                delay_model="max_skew",
                entropy=8,
                run_index=i,
            )
            for i in range(3)
        ]
        batched = engine.run_batch(specs)
        looped = generic_run_batch(engine, specs)
        assert len(batched) == len(specs)
        assert len({batch_key(spec) for spec in specs}) == 2
        for via_batch, via_loop in zip(batched, looped):
            np.testing.assert_array_equal(
                via_batch.trigger_times, via_loop.trigger_times
            )
            assert via_batch.spec == via_loop.spec

    def test_random_delays_stay_inside_declared_envelope(self):
        spec = RunSpec(layers=10, width=8, delay_model="uniform", scenario="iii", entropy=77)
        result = get_engine("array").run(spec)
        assert result.all_correct_triggered()
        low, high = delay_envelope(spec)
        times = result.trigger_times
        assert np.all(times >= low - 1e-9)
        assert np.all(times <= high + 1e-9)

    def test_rejects_faults_schedules_and_multi_pulse(self):
        engine = get_engine("array")
        with pytest.raises(ValueError, match="does not support fault injection"):
            engine.run(
                RunSpec(layers=4, width=4, num_faults=1, fault_type="byzantine", entropy=1)
            )
        with pytest.raises(ValueError, match="does not support kind"):
            engine.run(RunSpec(kind="multi_pulse", layers=4, width=4, entropy=1))
        from repro.adversary.schedule import FaultSchedule

        with pytest.raises(ValueError, match="dynamic fault schedules"):
            engine.run(
                RunSpec(
                    layers=4,
                    width=4,
                    entropy=1,
                    fault_schedule=FaultSchedule.burst(time=5.0, count=1),
                )
            )

    def test_rejects_explicit_inputs_via_shim(self, timing):
        grid = HexGrid(layers=4, width=4)
        with pytest.raises(ValueError, match="explicit layer0_times"):
            simulate_single_pulse(grid, timing, np.zeros(4), seed=0, engine="array")

    def test_degraded_unreachable_nodes_match_solver(self):
        """Heavily damaged grids leave deadlocked nodes at +inf in both engines."""
        spec = RunSpec(
            layers=6,
            width=6,
            topology="degraded:links=9,seed=5",
            delay_model="constant",
            entropy=3,
        )
        array = get_engine("array").run(spec)
        solver = get_engine("solver").run(spec)
        np.testing.assert_array_equal(array.trigger_times, solver.trigger_times)

    def test_work_counters_are_batching_invariant(self):
        from repro import obs

        engine = get_engine("array")
        specs = [
            RunSpec(layers=5, width=6, delay_model="constant", entropy=21, run_index=i)
            for i in range(3)
        ]

        def counters(run):
            with obs.observed() as session:
                run()
                return (
                    session.registry.counter("array.rounds"),
                    session.registry.counter("array.cells_updated"),
                )

        serial = counters(lambda: [engine.run(spec) for spec in specs])
        batched = counters(lambda: engine.run_batch(specs))
        assert serial == batched
        assert serial[0] and serial[1]


# ----------------------------------------------------------------------
# contract-driven cross-engine agreement (no engine-name switches)
# ----------------------------------------------------------------------
class TestContractDrivenAgreement:
    @settings(max_examples=8, deadline=None)
    @given(
        entropy=st.integers(min_value=0, max_value=2**32 - 1),
        layers=st.integers(min_value=2, max_value=4),
        width=st.integers(min_value=4, max_value=6),
        topology=st.sampled_from(ARRAY_TOPOLOGIES),
        delay_model=st.sampled_from(["constant", "max_skew", "uniform"]),
    )
    def test_every_engine_honours_its_declared_contract(
        self, entropy, layers, width, topology, delay_model
    ):
        """Agreement expectations derive from capabilities, not engine names.

        The solver is the reference semantics.  For every registered
        single-pulse engine able to run the spec: a spec inside the engine's
        ``exact_when`` regime must match the solver bit for bit; an engine
        declaring a numeric ``tolerance`` must land inside the spec's delay
        envelope scaled by it; ``tolerance=None`` engines (the clock-tree
        baseline computes a different physical model) are exempt.
        """
        spec = RunSpec(
            kind="single_pulse",
            layers=layers,
            width=width,
            topology=topology,
            delay_model=delay_model,
            scenario="iii",
            entropy=entropy,
        )
        reference = get_engine("solver").run(spec)
        envelope = None
        for name in available_engines():
            engine = get_engine(name)
            capabilities = engine.capabilities
            if "single_pulse" not in capabilities.kinds:
                continue
            if not capabilities.supports_topology(spec.topology_family()):
                continue
            if name == "solver":
                continue
            if capabilities.is_exact_for(spec):
                result = engine.run(spec)
                np.testing.assert_array_equal(
                    result.trigger_times, reference.trigger_times
                )
            elif capabilities.tolerance is not None:
                result = engine.run(spec)
                if envelope is None:
                    envelope = delay_envelope(spec)
                low, high = envelope
                pad = (capabilities.tolerance - 1.0) / 2.0
                times = result.trigger_times
                finite = np.isfinite(low) & np.isfinite(high)
                slack = pad * np.where(finite, high - low, 0.0) + 1e-9
                inside = (times >= low - slack) & (times <= high + slack)
                same = (times == low) | (np.isnan(times) & np.isnan(low))
                assert np.all(np.where(finite, inside, same)), name


# ----------------------------------------------------------------------
# error messages & CLI
# ----------------------------------------------------------------------
class TestErrorsAndCli:
    def test_layer0_shape_error_is_actionable(self, timing):
        grid = HexGrid(layers=4, width=7)
        with pytest.raises(ValueError) as excinfo:
            simulate_single_pulse(grid, timing, np.zeros(3), seed=0)
        message = str(excinfo.value)
        assert "(7,)" in message
        assert "scenario_layer0_times" in message

    def test_unknown_engine_error_in_shim(self, timing):
        grid = HexGrid(layers=4, width=4)
        with pytest.raises(ValueError, match="available engines"):
            simulate_single_pulse(grid, timing, np.zeros(4), seed=0, engine="vhdl")

    def test_protocol_only_engine_fails_cleanly_in_shim(self, timing):
        """A run-only Engine (the documented minimum) must not crash the shims
        with AttributeError, whatever its capability flags claim."""

        class RunOnlyEngine:
            name = "run-only"
            capabilities = EngineCapabilities(
                kinds=("single_pulse", "multi_pulse"), supports_explicit_inputs=True
            )

            def run(self, spec, rng=None):  # pragma: no cover - never called
                raise NotImplementedError

        grid = HexGrid(layers=4, width=4)
        try:
            register_engine(RunOnlyEngine())
            with pytest.raises(ValueError, match="explicit layer0_times"):
                simulate_single_pulse(grid, timing, np.zeros(4), seed=0, engine="run-only")
            with pytest.raises(ValueError, match="multi-pulse"):
                simulate_multi_pulse(
                    grid, timing, None, np.zeros((1, 4)), seed=0, engine="run-only"
                )
        finally:
            unregister_engine("run-only")

    def test_cli_engines_lists_backends(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("solver", "des", "clocktree", "array"):
            assert name in out
        assert "bit-identical when fault_free+deterministic_delays" in out

    def test_cli_engines_json_exposes_exactness(self, capsys):
        import json

        assert main(["engines", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["array"]["exactness"] == "bit_identical"
        assert by_name["array"]["exact_when"] == [
            "fault_free",
            "deterministic_delays",
        ]
        assert by_name["array"]["tolerance"] == 1.0
        assert by_name["solver"]["exactness"] == "bit_identical"
        assert by_name["solver"]["exact_when"] == []
        assert by_name["des"]["tolerance"] == 1.0
        assert by_name["clocktree"]["tolerance"] is None

    def test_cli_sweep_rejects_unknown_engine(self, capsys):
        assert main(["sweep", "--engine", "warp", "--runs", "1"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "solver" in err
