"""Tests of ``repro.campaign.progress``: rate/ETA math, stream selection,
throttling and ``format_duration`` edge cases."""

from __future__ import annotations

import io

import pytest

from repro.campaign.progress import ProgressReporter, format_duration


class _FakeTty(io.StringIO):
    def isatty(self) -> bool:
        return True


class _Clock:
    """Deterministic stand-in for ``time.monotonic``."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock(monkeypatch) -> _Clock:
    clock = _Clock()
    monkeypatch.setattr("repro.campaign.progress.time.monotonic", clock)
    return clock


class TestFormatDuration:
    def test_sub_minute(self):
        assert format_duration(0.0) == "0.0s"
        assert format_duration(4.25) == "4.2s"
        assert format_duration(59.94) == "59.9s"

    def test_minutes(self):
        assert format_duration(60.0) == "1m00s"
        assert format_duration(192.0) == "3m12s"
        assert format_duration(3599.0) == "59m59s"

    def test_hours(self):
        assert format_duration(3600.0) == "1h00m"
        assert format_duration(3840.0) == "1h04m"
        assert format_duration(7265.0) == "2h01m"

    def test_nan_and_inf(self):
        assert format_duration(float("nan")) == "?"
        assert format_duration(float("inf")) == "?"


class TestStreamSelection:
    def test_enabled_on_tty_by_default(self):
        assert ProgressReporter(10, stream=_FakeTty()).enabled is True

    def test_disabled_on_non_tty_by_default(self):
        assert ProgressReporter(10, stream=io.StringIO()).enabled is False

    def test_disabled_when_stream_has_no_isatty(self):
        class Bare:
            def write(self, text):
                pass

            def flush(self):
                pass

        assert ProgressReporter(10, stream=Bare()).enabled is False

    def test_explicit_override_beats_sniffing(self):
        assert ProgressReporter(10, stream=io.StringIO(), enabled=True).enabled is True
        assert ProgressReporter(10, stream=_FakeTty(), enabled=False).enabled is False

    def test_disabled_reporter_writes_nothing(self):
        stream = io.StringIO()
        reporter = ProgressReporter(5, stream=stream)
        reporter.start()
        reporter.advance(5)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ProgressReporter(-1)


class TestEtaMath:
    def test_eta_from_executed_throughput(self, clock):
        reporter = ProgressReporter(10, stream=io.StringIO())
        reporter.start()
        clock.advance(4.0)
        reporter.advance(2)
        # 2 tasks in 4s -> 2s/task; 8 remaining -> 16s.
        assert reporter.eta() == pytest.approx(16.0)
        assert reporter.elapsed == pytest.approx(4.0)

    def test_cached_tasks_excluded_from_rate(self, clock):
        reporter = ProgressReporter(10, stream=io.StringIO())
        reporter.start(cached=4)
        clock.advance(3.0)
        reporter.advance(3)
        # 3 *executed* in 3s -> 1s/task; 3 remaining -> 3s.
        assert reporter.eta() == pytest.approx(3.0)

    def test_eta_unknown_before_first_completion(self, clock):
        reporter = ProgressReporter(10, stream=io.StringIO())
        reporter.start()
        clock.advance(5.0)
        assert reporter.eta() == float("inf")

    def test_eta_zero_when_done(self, clock):
        reporter = ProgressReporter(3, stream=io.StringIO())
        reporter.start()
        clock.advance(1.0)
        reporter.advance(3)
        assert reporter.eta() == 0.0

    def test_cached_only_completion_has_zero_eta(self, clock):
        reporter = ProgressReporter(4, stream=io.StringIO())
        reporter.start(cached=4)
        assert reporter.eta() == 0.0

    def test_elapsed_zero_before_start(self):
        assert ProgressReporter(3, stream=io.StringIO()).elapsed == 0.0


class TestRendering:
    def test_progress_line_and_final_newline(self, clock):
        stream = _FakeTty()
        reporter = ProgressReporter(4, label="sweep", stream=stream)
        reporter.start()
        clock.advance(2.0)
        reporter.advance(2)
        reporter.finish()
        output = stream.getvalue()
        assert "\rsweep: 2/4" in output
        assert "( 50.0%)" in output
        assert "eta" in output
        assert output.endswith("\n")

    def test_throttling_skips_rapid_redraws(self, clock):
        stream = _FakeTty()
        reporter = ProgressReporter(100, stream=stream, min_interval=0.2)
        reporter.start()
        for _ in range(10):
            clock.advance(0.01)  # all within one min_interval window
            reporter.advance()
        renders = stream.getvalue().count("\r")
        assert renders == 1  # only the forced start render

    def test_forced_render_ignores_throttle(self, clock):
        stream = _FakeTty()
        reporter = ProgressReporter(2, stream=stream, min_interval=60.0)
        reporter.start()
        clock.advance(0.01)
        reporter.advance(2)
        reporter.finish()  # forces a final render despite min_interval
        assert "2/2" in stream.getvalue()

    def test_zero_total_renders_complete(self, clock):
        stream = _FakeTty()
        reporter = ProgressReporter(0, stream=stream)
        reporter.start()
        summary = reporter.finish()
        assert "(100.0%)" in stream.getvalue()
        assert "0/0" in summary

    def test_summary_mentions_cached(self, clock):
        reporter = ProgressReporter(6, label="camp", stream=io.StringIO())
        reporter.start(cached=2)
        clock.advance(1.0)
        reporter.advance(4)
        summary = reporter.finish()
        assert summary == "camp: 6/6 runs, 2 cached, in 1.0s"
