"""Tests of ``repro.obs``: registry, tracer, no-op guards, DES capture,
the bit-identity contract and the CLI surface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import timer_stats
from repro.obs.summary import render_summary, summarize_file, summary_to_json


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends with observability off (process-global state)."""
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_timers(self):
        registry = obs.MetricsRegistry()
        registry.inc("runs")
        registry.inc("runs", 2)
        registry.gauge("utilization", 0.75)
        registry.gauge("utilization", 0.5)  # last write wins
        registry.observe("step_s", 0.1)
        registry.observe("step_s", 0.3)
        snap = registry.snapshot()
        assert snap["schema"] == obs.METRICS_SCHEMA
        assert snap["schema_version"] == obs.METRICS_SCHEMA_VERSION
        assert snap["counters"] == {"runs": 3.0}
        assert snap["gauges"] == {"utilization": 0.5}
        stats = snap["timers"]["step_s"]
        assert stats["count"] == 2
        assert stats["total_s"] == pytest.approx(0.4)
        assert stats["mean_s"] == pytest.approx(0.2)
        assert stats["min_s"] == pytest.approx(0.1)
        assert stats["max_s"] == pytest.approx(0.3)

    def test_time_context_manager_records_an_observation(self):
        registry = obs.MetricsRegistry()
        with registry.time("block_s"):
            pass
        stats = registry.snapshot()["timers"]["block_s"]
        assert stats["count"] == 1
        assert stats["total_s"] >= 0.0

    def test_snapshot_keys_are_sorted(self):
        registry = obs.MetricsRegistry()
        registry.inc("zebra")
        registry.inc("aardvark")
        assert list(registry.snapshot()["counters"]) == ["aardvark", "zebra"]

    def test_write_and_load_roundtrip(self, tmp_path):
        registry = obs.MetricsRegistry()
        registry.inc("runs", 5)
        path = registry.write(tmp_path / "metrics.json")
        payload = obs.load_metrics(path)
        assert payload["counters"] == {"runs": 5.0}

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "something/else", "counters": {}}))
        with pytest.raises(ValueError, match="schema"):
            obs.load_metrics(path)

    def test_metrics_delta_keeps_only_changes(self):
        registry = obs.MetricsRegistry()
        registry.inc("steady", 7)
        before = registry.counters()
        registry.inc("moved", 2)
        registry.inc("steady", 0)
        delta = obs.metrics_delta(before, registry.counters())
        assert delta == {"moved": 2.0}

    def test_timer_stats_quantiles(self):
        values = [float(i) for i in range(1, 101)]
        stats = timer_stats(values, len(values), sum(values))
        assert stats["median_s"] == pytest.approx(50.5)
        assert stats["p95_s"] == pytest.approx(95.05)


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_header_written_eagerly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = obs.TraceSink(path)
        sink.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "header"
        assert header["schema"] == obs.TRACE_SCHEMA
        assert obs.load_trace_records(path) == []

    def test_span_nesting_parent_ids_and_depth(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = obs.Tracer(obs.TraceSink(path))
        outer = tracer.start_span("outer", label="a")
        inner = tracer.start_span("inner")
        tracer.event("ping", n=1)
        tracer.end_span(inner)
        tracer.end_span(outer)
        tracer.close()
        records = obs.load_trace_records(path)
        by_name = {r["name"]: r for r in records if r["type"] == "span"}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["outer"]["attrs"] == {"label": "a"}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["depth"] == 1
        # Spans are written on close: inner closes before outer.
        span_names = [r["name"] for r in records if r["type"] == "span"]
        assert span_names == ["inner", "outer"]
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["name"] == "ping"
        assert event["span_id"] == by_name["inner"]["span_id"]
        assert event["attrs"] == {"n": 1}

    def test_close_ends_dangling_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = obs.Tracer(obs.TraceSink(path))
        tracer.start_span("left-open")
        tracer.close()
        records = obs.load_trace_records(path)
        assert [r["name"] for r in records] == ["left-open"]

    def test_load_rejects_non_trace_files(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text('{"type": "header", "schema": "bogus/v9"}\n')
        with pytest.raises(ValueError, match="not a trace file"):
            obs.load_trace_records(path)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            obs.load_trace_records(empty)

    def test_attrs_coerced_to_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = obs.Tracer(obs.TraceSink(path))
        span = tracer.start_span("s", node=(3, 4), arr=np.int64(7))
        span.set(extra={"k": (1, 2)})
        tracer.end_span(span)
        tracer.close()
        (record,) = obs.load_trace_records(path)
        assert record["attrs"]["node"] == [3, 4]
        assert record["attrs"]["extra"] == {"k": [1, 2]}


# ----------------------------------------------------------------------
# global on/off switch
# ----------------------------------------------------------------------
class TestGlobalState:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.registry() is None
        assert obs.tracer() is None
        # Every guard is a no-op and the span handle is the shared singleton.
        obs.inc("nope")
        obs.gauge("nope", 1.0)
        obs.observe("nope", 0.1)
        obs.event("nope")
        first = obs.span("a", x=1)
        second = obs.span("b")
        assert first is second
        with first:
            first.set(anything=True)
        assert obs.des_observer() is None
        obs.record_des_observer(None)  # must not raise

    def test_enable_disable_cycle(self, tmp_path):
        session = obs.enable(metrics=True, trace=tmp_path / "t.jsonl")
        assert obs.enabled() and obs.metrics_enabled() and obs.tracing_enabled()
        obs.inc("runs")
        with obs.span("region", tag="x"):
            obs.event("mark")
        obs.disable()
        obs.disable()  # idempotent
        assert not obs.enabled()
        assert session.registry.snapshot()["counters"] == {"runs": 1.0}
        # A live span also feeds a timer observation named "<name>_s".
        assert "region_s" in session.registry.snapshot()["timers"]
        records = obs.load_trace_records(tmp_path / "t.jsonl")
        assert {r["type"] for r in records} == {"span", "event"}

    def test_observed_restores_outer_session(self, tmp_path):
        outer = obs.enable(metrics=True, trace=tmp_path / "outer.jsonl")
        obs.inc("outer.count")
        with obs.observed(trace=tmp_path / "inner.jsonl") as inner:
            obs.inc("inner.count")
            assert obs.registry() is inner.registry
        # Outer session restored, its tracer still writable.
        assert obs.registry() is outer.registry
        obs.inc("outer.count")
        with obs.span("still-works"):
            pass
        obs.disable()
        assert outer.registry.snapshot()["counters"]["outer.count"] == 2.0
        assert inner.registry.snapshot()["counters"] == {"inner.count": 1.0}
        assert [r["name"] for r in obs.load_trace_records(tmp_path / "outer.jsonl")] == [
            "still-works"
        ]

    def test_metrics_only_session_has_no_trace(self):
        obs.enable(metrics=True)
        assert obs.metrics_enabled() and not obs.tracing_enabled()
        obs.event("dropped")  # no tracer: silently ignored
        with obs.span("timed"):
            pass
        assert "timed_s" in obs.registry().snapshot()["timers"]


# ----------------------------------------------------------------------
# DES capture + the bit-identity contract
# ----------------------------------------------------------------------
def _des_spec(**overrides):
    from repro.engines.base import RunSpec

    defaults = dict(
        kind="single_pulse",
        layers=8,
        width=6,
        scenario="iii",
        num_faults=4,
        fault_type="byzantine",
        entropy=99,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestDesCapture:
    def test_event_capture_reconstructs_firing_matrix(self, tmp_path):
        from repro.engines import get_engine

        spec = _des_spec()
        engine = get_engine("des")
        trace = tmp_path / "run.jsonl"
        with obs.observed(trace=trace, des_events=True) as session:
            result = engine.run(spec, np.random.default_rng(99))
        counters = session.registry.snapshot()["counters"]
        assert counters["engine.des.runs"] == 1.0
        assert counters["des.events_processed"] > 0
        assert counters["des.firing"] > 0

        from repro.analysis import event_trace_times, load_event_trace

        events = load_event_trace(trace)
        kinds = {event["kind"] for event in events}
        assert {"source_pulse", "arrival", "firing"} <= kinds
        matrix = event_trace_times(events, spec.layers, spec.width)
        times = np.asarray(result.trigger_times, dtype=float)
        finite = np.isfinite(times)
        assert (np.isfinite(matrix) == finite).all()
        assert np.allclose(matrix[finite], times[finite])

    def test_adversary_actions_are_counted(self, tmp_path):
        from repro.adversary.schedule import FaultSchedule
        from repro.engines import get_engine

        schedule = FaultSchedule.burst(time=20.0, count=2, duration=40.0)
        spec = _des_spec(
            kind="multi_pulse",
            num_faults=0,
            fault_type=None,
            num_pulses=4,
            fault_schedule=schedule,
        )
        engine = get_engine("des")
        with obs.observed(trace=tmp_path / "adv.jsonl", des_events=True) as session:
            engine.run(spec, np.random.default_rng(7))
        counters = session.registry.snapshot()["counters"]
        assert counters["des.adversary"] == 4.0  # 2 injections + 2 heals
        assert counters["des.faults_injected"] == 2.0
        assert counters["des.faults_healed"] == 2.0
        events = [
            record
            for record in obs.load_trace_records(tmp_path / "adv.jsonl")
            if record.get("type") == "event"
            and record["attrs"].get("kind") == "adversary_action"
        ]
        assert len(events) == 4
        assert all("detail" in record["attrs"] for record in events)

    def test_event_capture_off_without_trace(self):
        obs.enable(metrics=True, des_events=True)
        observer = obs.des_observer()
        # Counters still collected; per-event records need a trace file.
        assert observer is not None
        assert observer.capture_events is False


class TestBitIdentity:
    """The subsystem's hard contract: observability never changes results."""

    def _sweep(self):
        from repro.campaign import CampaignRunner, CampaignSpec, SweepSpec

        cell = SweepSpec(
            layers=(8,),
            width=6,
            scenario=("i", "iii"),
            num_faults=(0, 2),
            runs=3,
            engine=("solver", "des"),
            seed_salt=41,
        )
        spec = CampaignSpec(name="obs-identity", seed=2013, cells=(cell,))
        return CampaignRunner(spec, workers=1).run()

    def test_seeded_sweep_is_bit_identical_with_obs_fully_on(self, tmp_path):
        from repro.campaign.records import pooled_statistics

        baseline = self._sweep()
        with obs.observed(trace=tmp_path / "sweep.jsonl", des_events=True):
            observed_run = self._sweep()

        assert [r.canonical_json() for r in baseline.records] == [
            r.canonical_json() for r in observed_run.records
        ]
        base_stats = pooled_statistics(baseline.records).as_row()
        obs_stats = pooled_statistics(observed_run.records).as_row()
        assert base_stats == obs_stats

    def test_parallel_workers_fan_telemetry_back_in(self, tmp_path):
        """Pool workers run their own instrumented sessions: worker activity
        lands in the merged trace and the ``worker.*`` counters, while the
        records stay byte-identical to the serial obs-off run."""
        from repro.campaign import CampaignRunner, CampaignSpec, SweepSpec

        cell = SweepSpec(
            layers=(8,), width=6, scenario=("i", "iii"), num_faults=0, runs=3,
            engine=("des",), seed_salt=42,
        )
        spec = CampaignSpec(name="obs-parallel", seed=2013, cells=(cell,))
        baseline = CampaignRunner(spec, workers=1).run()
        trace = tmp_path / "parallel.jsonl"
        with obs.observed(trace=trace) as session:
            parallel = CampaignRunner(spec, workers=2).run()
            counters = session.registry.snapshot()["counters"]
        assert [r.canonical_json() for r in baseline.records] == [
            r.canonical_json() for r in parallel.records
        ]
        header, records = obs.load_trace(trace)
        assert header["merged"] is True
        names = {r["name"] for r in records}
        assert "campaign.run" in names
        # Worker engine runs now appear in the merged trace...
        worker_spans = [r for r in records if "worker" in r]
        assert {r["name"] for r in worker_spans} >= {"campaign.task", "engine.run"}
        # ...parented under the orchestrator's campaign.run span.
        campaign_span = next(r for r in records if r.get("name") == "campaign.run")
        task_spans = [r for r in worker_spans if r["name"] == "campaign.task"]
        assert task_spans
        assert all(r["parent_id"] == campaign_span["span_id"] for r in task_spans)
        # ...and the worker counters fan back in with provenance.
        assert counters["worker.engine.des.runs"] == float(len(baseline.records))
        assert counters["worker.campaign.tasks_executed"] == float(
            len(baseline.records)
        )
        assert "engine.des.runs" not in counters  # parent ran no engine itself

    def test_task_content_keys_unchanged(self):
        from repro.campaign import CampaignSpec, SweepSpec

        cell = SweepSpec(layers=(8,), width=6, scenario=("i",), num_faults=0, runs=2)
        spec = CampaignSpec(name="obs-keys", seed=5, cells=(cell,))
        keys_off = [task.key() for task in spec.tasks()]
        obs.enable(metrics=True)
        keys_on = [task.key() for task in spec.tasks()]
        assert keys_off == keys_on


# ----------------------------------------------------------------------
# cross-process fan-in: context propagation, shard merge, warnings
# ----------------------------------------------------------------------
def _parallel_spec(name: str, engines=("solver",), runs: int = 2):
    from repro.campaign import CampaignSpec, SweepSpec

    cell = SweepSpec(
        layers=(8,), width=6, scenario=("i",), num_faults=0, runs=runs,
        engine=engines, seed_salt=43,
    )
    return CampaignSpec(name=name, seed=2013, cells=(cell,))


def _minimal_trace(path) -> int:
    """Write a one-span parent trace; returns the span id."""
    tracer = obs.Tracer(obs.TraceSink(path))
    span = tracer.start_span("campaign.run")
    tracer.end_span(span)
    tracer.close()
    return span.span_id


class TestCrossProcess:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_context_propagates_under_both_start_methods(self, tmp_path, start_method):
        """obs.worker_init + TraceContext must work when workers inherit the
        parent state (fork) AND when they start from a fresh interpreter and
        unpickle the context (spawn, the macOS/Windows default)."""
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {start_method!r} not available")
        from repro.campaign import CampaignRunner

        spec = _parallel_spec(f"obs-{start_method}")
        trace = tmp_path / f"{start_method}.jsonl"
        with obs.observed(trace=trace) as session:
            CampaignRunner(spec, workers=2, mp_start_method=start_method).run()
            counters = session.registry.snapshot()["counters"]
        assert counters["worker.campaign.tasks_executed"] == float(spec.num_tasks)
        assert counters["worker.solver.heap_pushes"] > 0
        header, records = obs.load_trace(trace)
        assert header["merged"] is True
        assert header["num_shards"] >= 1
        assert any("worker" in record for record in records)

    def test_missing_shard_warns_instead_of_merging_silently(self, tmp_path):
        from repro.obs.merge import merge_trace

        trace = tmp_path / "t.jsonl"
        _minimal_trace(trace)
        report = merge_trace(trace, expected_shards=2)
        assert len(report.warnings) == 1
        assert "expected 2 worker shard(s), found 0" in report.warnings[0]

    def test_truncated_shard_warns_and_keeps_complete_records(self, tmp_path):
        from repro.obs.merge import merge_trace

        trace = tmp_path / "t.jsonl"
        parent_span = _minimal_trace(trace)
        shard = tmp_path / "t-worker-123.jsonl"
        header = {
            "type": "header", "schema": obs.TRACE_SCHEMA, "schema_version": 1,
            "trace_id": "t", "worker": 123, "parent_span_id": parent_span,
        }
        complete = {
            "type": "span", "name": "campaign.task", "span_id": 123_000_001,
            "parent_id": None, "depth": 0, "start_s": 0.1, "duration_s": 0.2,
        }
        shard.write_text(
            json.dumps(header) + "\n" + json.dumps(complete) + "\n"
            + '{"type": "span", "na',  # worker died mid-write
            encoding="utf-8",
        )
        report = merge_trace(trace, expected_shards=1)
        assert any("truncated worker shard" in message for message in report.warnings)
        header_out, records = obs.load_trace(trace)
        assert header_out["merged"] is True
        worker_spans = [r for r in records if r.get("worker") == 123]
        assert len(worker_spans) == 1
        assert worker_spans[0]["parent_id"] == parent_span
        assert worker_spans[0]["depth"] == 1  # shifted below campaign.run
        assert not shard.exists()  # absorbed shards are removed

    def test_empty_shard_dropped_with_warning(self, tmp_path):
        from repro.obs.merge import merge_trace

        trace = tmp_path / "t.jsonl"
        _minimal_trace(trace)
        (tmp_path / "t-worker-7.jsonl").write_text("", encoding="utf-8")
        report = merge_trace(trace)
        assert any("empty worker shard" in message for message in report.warnings)

    def test_merge_is_idempotent(self, tmp_path):
        from repro.obs.merge import merge_trace

        trace = tmp_path / "t.jsonl"
        parent_span = _minimal_trace(trace)
        shard = tmp_path / "t-worker-9.jsonl"
        shard.write_text(
            json.dumps({
                "type": "header", "schema": obs.TRACE_SCHEMA, "schema_version": 1,
                "trace_id": "t", "worker": 9, "parent_span_id": parent_span,
            }) + "\n" + json.dumps({
                "type": "span", "name": "campaign.task", "span_id": 9_000_001,
                "parent_id": None, "depth": 0, "start_s": 0.1, "duration_s": 0.2,
            }) + "\n",
            encoding="utf-8",
        )
        first = merge_trace(trace, expected_shards=1)
        assert first.num_shards == 1 and not first.warnings
        merged_once = trace.read_text(encoding="utf-8")
        again = merge_trace(trace, expected_shards=1)
        assert again.already_merged and again.num_shards == 0
        assert not again.warnings  # the absorbed shard still counts as found
        assert trace.read_text(encoding="utf-8") == merged_once

    def test_worker_metrics_shard_merges_exactly(self, tmp_path):
        source = obs.MetricsRegistry()
        source.inc("engine.solver.runs", 3)
        source.gauge("campaign.worker_utilization", 0.5)
        for value in (0.1, 0.2, 0.4):
            source.observe("campaign.task_s", value)
        shard = source.write_worker_snapshot(tmp_path / "w-metrics.json")

        target = obs.MetricsRegistry()
        target.merge_worker_snapshot(obs.load_worker_metrics(shard))
        snap = target.snapshot()
        assert snap["counters"] == {"worker.engine.solver.runs": 3.0}
        assert snap["gauges"] == {"worker.campaign.worker_utilization": 0.5}
        merged = snap["timers"]["worker.campaign.task_s"]
        original = source.snapshot()["timers"]["campaign.task_s"]
        # Raw values travel with the shard, so the percentile statistics are
        # exact -- not recomputed from pre-aggregated summaries.
        for key in ("count", "total_s", "mean_s", "median_s", "p95_s"):
            assert merged[key] == original[key]

    def test_load_worker_metrics_rejects_plain_snapshot(self, tmp_path):
        registry = obs.MetricsRegistry()
        path = registry.write(tmp_path / "plain.json")
        with pytest.raises(ValueError, match="worker-metrics"):
            obs.load_worker_metrics(path)

    def test_work_counters_identical_across_solver_paths(self):
        """The deterministic work counters are path-independent: a serial
        campaign (plan-compiled batched sweep) and a parallel one (per-task
        reference sweep in pool workers) report the same numbers."""
        from repro.campaign import CampaignRunner

        spec = _parallel_spec("obs-work", runs=3)
        with obs.observed(metrics=True) as session:
            CampaignRunner(spec, workers=1).run()
            serial = session.registry.snapshot()["counters"]
        with obs.observed(metrics=True) as session:
            CampaignRunner(spec, workers=1).run()
            serial_again = session.registry.snapshot()["counters"]
        with obs.observed(metrics=True) as session:
            CampaignRunner(spec, workers=2).run()
            parallel = session.registry.snapshot()["counters"]
        for name in ("heap_pushes", "frontier_advances", "messages_delivered"):
            assert serial[f"solver.{name}"] > 0
            assert serial[f"solver.{name}"] == serial_again[f"solver.{name}"]
            assert serial[f"solver.{name}"] == parallel[f"worker.solver.{name}"]

    def test_resource_attrs_stamped_on_task_spans(self, tmp_path):
        from repro.campaign.runner import execute_task

        spec = _parallel_spec("obs-resources", runs=1)
        task = spec.tasks()[0]
        trace = tmp_path / "res.jsonl"
        with obs.observed(trace=trace):
            execute_task(task)
        records = obs.load_trace_records(trace)
        task_span = next(r for r in records if r.get("name") == "campaign.task")
        attrs = task_span["attrs"]
        for key in ("cpu_user_s", "cpu_system_s", "gc_collections", "max_rss_bytes"):
            assert key in attrs
        assert attrs["max_rss_bytes"] > 0

    def test_resources_helpers(self):
        before = obs.resources.snapshot()
        attrs = obs.resources.delta_attrs(before)
        assert set(attrs) == {
            "cpu_user_s", "cpu_system_s", "gc_collections", "max_rss_bytes",
        }
        gauges = obs.resources.usage_gauges("soak")
        assert set(gauges) == {
            "soak.cpu_user_s", "soak.cpu_system_s", "soak.gc_collections",
            "soak.max_rss_bytes",
        }
        assert obs.resources.rss_bytes() > 0

    def test_summarize_merged_trace_by_worker(self, tmp_path, capsys):
        from repro.campaign import CampaignRunner
        from repro.cli import main

        spec = _parallel_spec("obs-byworker")
        trace = tmp_path / "bw.jsonl"
        with obs.observed(trace=trace):
            CampaignRunner(spec, workers=2).run()
        summary = summarize_file(trace)
        assert summary["merged"] is True
        assert summary["workers"]
        for rollup in summary["workers"].values():
            assert rollup["task_total_s"] >= 0.0
            assert rollup["max_rss_bytes"] > 0
        assert sum(r["tasks"] for r in summary["workers"].values()) == spec.num_tasks
        rendered = render_summary(summary, by_worker=True)
        assert "by worker:" in rendered and "peak rss" in rendered
        # The CLI surfaces both the merge (idempotent) and the rollup table.
        assert main(["trace", "merge", str(trace)]) == 0
        assert "already merged" in capsys.readouterr().out
        assert main(["trace", "summarize", str(trace), "--by-worker"]) == 0
        assert "by worker:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# campaign wall-time aggregation
# ----------------------------------------------------------------------
class TestWallTimeSummary:
    def test_summary_fields(self):
        from repro.campaign import CampaignRunner, CampaignSpec, SweepSpec

        cell = SweepSpec(layers=(8,), width=6, scenario=("i",), num_faults=0, runs=4)
        spec = CampaignSpec(name="obs-walltime", seed=11, cells=(cell,))
        result = CampaignRunner(spec, workers=1).run()
        times = result.wall_time_summary()
        assert times["tasks"] == spec.num_tasks
        assert times["executed"] == spec.num_tasks
        assert times["cached"] == 0
        assert times["task_total_s"] > 0.0
        assert times["task_median_s"] <= times["task_p95_s"] <= times["task_total_s"]
        assert times["tasks_per_s"] > 0.0

    def test_campaign_gauges_populated_when_metrics_on(self):
        from repro.campaign import CampaignRunner, CampaignSpec, SweepSpec

        cell = SweepSpec(layers=(8,), width=6, scenario=("i",), num_faults=0, runs=2)
        spec = CampaignSpec(name="obs-gauges", seed=12, cells=(cell,))
        with obs.observed() as session:
            CampaignRunner(spec, workers=1).run()
        snap = session.registry.snapshot()
        assert snap["counters"]["campaign.tasks_executed"] == float(spec.num_tasks)
        for name in (
            "campaign.task_total_s",
            "campaign.task_median_s",
            "campaign.task_p95_s",
            "campaign.tasks_per_s",
            "campaign.worker_utilization",
        ):
            assert name in snap["gauges"]


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
class TestSummaries:
    def test_summarize_metrics_and_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with obs.observed(trace=trace) as session:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.event("mark")
            obs.inc("runs", 3)
        metrics = tmp_path / "m.json"
        session.registry.write(metrics)

        trace_summary = summarize_file(trace)
        assert trace_summary["format"] == "trace"
        assert trace_summary["num_spans"] == 2
        assert trace_summary["max_depth"] == 1
        assert set(trace_summary["spans"]) == {"outer", "inner"}
        assert trace_summary["events"] == {"mark": 1}

        metrics_summary = summarize_file(metrics)
        assert metrics_summary["format"] == "metrics"
        assert metrics_summary["counters"]["runs"] == 3.0

        for summary in (trace_summary, metrics_summary):
            text = render_summary(summary)
            assert summary["file"] in text
            json.loads(summary_to_json(summary))  # valid JSON

    def test_summarize_rejects_unknown_files(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text("{}")
        with pytest.raises(ValueError, match="unrecognized"):
            summarize_file(bogus)
        with pytest.raises(FileNotFoundError):
            summarize_file(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_version_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "hex-repro" in capsys.readouterr().out

    def test_sweep_trace_metrics_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "sweep.jsonl"
        metrics = tmp_path / "sweep-metrics.json"
        argv = [
            "sweep",
            "--layers", "8",
            "--width", "6",
            "--scenarios", "i",
            "--runs", "2",
            "--trace", str(trace),
            "--metrics-out", str(metrics),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "task wall time:" in out

        assert obs.load_metrics(metrics)["counters"]["campaign.tasks_executed"] == 2.0
        records = obs.load_trace_records(trace)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert "campaign.run" in span_names

        assert main(["trace", "summarize", str(trace)]) == 0
        assert "spans" in capsys.readouterr().out
        assert main(["trace", "summarize", str(metrics), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "metrics"

    def test_simulate_trace_events(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "sim.jsonl"
        argv = [
            "simulate",
            "--layers", "6",
            "--width", "5",
            "--runs", "1",
            "--engine", "des",
            "--trace", str(trace),
            "--trace-events",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        records = obs.load_trace_records(trace)
        des_events = [
            r for r in records if r["type"] == "event" and r["name"] == "des.event"
        ]
        assert des_events, "per-event DES capture produced no des.event records"

    def test_trace_events_requires_trace(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--runs", "1", "--trace-events"]) == 2
        assert "--trace-events requires --trace" in capsys.readouterr().err

    def test_trace_summarize_missing_file_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        capsys.readouterr()

    def test_obs_left_disabled_after_command(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "sweep",
            "--layers", "8",
            "--width", "6",
            "--scenarios", "i",
            "--runs", "1",
            "--quiet",
            "--metrics-out", str(tmp_path / "m.json"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert not obs.enabled()


# ----------------------------------------------------------------------
# logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_configure_logging_is_idempotent(self):
        import io

        stream = io.StringIO()
        logger = obs.configure_logging(0, stream=stream)
        obs.configure_logging(0, stream=stream)
        handlers = [h for h in logger.handlers if getattr(h, "_repro_handler", False)]
        assert len(handlers) == 1
        assert not logger.propagate

    def test_verbosity_levels_and_format(self):
        import io
        import logging

        stream = io.StringIO()
        obs.configure_logging(0, stream=stream)
        child = obs.get_logger("cli")
        child.debug("hidden")
        child.info("plain note")
        assert stream.getvalue() == "plain note\n"

        stream = io.StringIO()
        logger = obs.configure_logging(1, stream=stream)
        assert logger.level == logging.DEBUG
        child.debug("shown now")
        assert "DEBUG repro.cli: shown now" in stream.getvalue()
