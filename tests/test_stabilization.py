"""Tests for pulse assignment and stabilization-time estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stabilization import assign_pulses, pulse_skew_ok, stabilization_time
from repro.clocksource.generator import PulseScheduleConfig, generate_pulse_schedule
from repro.core.topology import HexGrid
from repro.faults.models import FaultModel, NodeFault
from repro.simulation.runner import MultiPulseResult, default_timeouts, simulate_multi_pulse


@pytest.fixture
def grid() -> HexGrid:
    return HexGrid(layers=5, width=5)


def _synthetic_result(grid, timing, timeouts, schedule, per_layer_offsets):
    """Build a MultiPulseResult with analytically known firing times.

    Every node of layer ``l`` fires ``per_layer_offsets[l]`` after the earliest
    layer-0 time of the pulse.
    """
    firing_times = {}
    for layer, column in grid.nodes():
        times = []
        for pulse in range(schedule.shape[0]):
            base = float(np.min(schedule[pulse]))
            times.append(base + per_layer_offsets[layer])
        firing_times[(layer, column)] = times
    return MultiPulseResult(
        grid=grid,
        timing=timing,
        timeouts=timeouts,
        source_schedule=schedule,
        firing_times=firing_times,
    )


class TestAssignPulses:
    def test_clean_assignment(self, grid, timing):
        timeouts = default_timeouts(grid, timing)
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="i", num_pulses=3, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            seed=1,
        )
        offsets = [layer * timing.d_min for layer in range(grid.layers + 1)]
        result = _synthetic_result(grid, timing, timeouts, schedule, offsets)
        assignment = assign_pulses(result)
        assert assignment.num_pulses == 3
        assert np.all(assignment.counts == 1)
        assert np.all(np.isfinite(assignment.times))

    def test_spurious_early_firings_are_not_assigned(self, grid, timing):
        timeouts = default_timeouts(grid, timing)
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="i", num_pulses=2, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            seed=1,
        )
        # Shift the whole schedule so there is room before the first pulse.
        schedule = schedule + 100.0
        offsets = [layer * timing.d_min for layer in range(grid.layers + 1)]
        result = _synthetic_result(grid, timing, timeouts, schedule, offsets)
        result.firing_times[(3, 2)] = [5.0] + result.firing_times[(3, 2)]
        assignment = assign_pulses(result)
        assert assignment.spurious_firings_before_first_pulse() == 1
        assert np.all(assignment.counts[:, 3, 2] == 1)

    def test_double_firing_marks_pulse_ambiguous(self, grid, timing):
        timeouts = default_timeouts(grid, timing)
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="i", num_pulses=2, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            seed=1,
        )
        offsets = [layer * timing.d_min for layer in range(grid.layers + 1)]
        result = _synthetic_result(grid, timing, timeouts, schedule, offsets)
        node_times = result.firing_times[(2, 2)]
        node_times.insert(1, node_times[0] + 1.0)  # second firing in pulse 0's window
        assignment = assign_pulses(result)
        assert assignment.counts[0, 2, 2] == 2
        assert np.isnan(assignment.times[0, 2, 2])

    def test_faulty_nodes_are_skipped(self, grid, timing):
        timeouts = default_timeouts(grid, timing)
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="i", num_pulses=2, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            seed=1,
        )
        offsets = [layer * timing.d_min for layer in range(grid.layers + 1)]
        result = _synthetic_result(grid, timing, timeouts, schedule, offsets)
        result.fault_model = FaultModel(grid, [NodeFault.fail_silent(grid, (2, 2))])
        assignment = assign_pulses(result)
        assert np.all(assignment.counts[:, 2, 2] == 0)


class TestStabilizationTime:
    def test_perfect_run_stabilizes_at_pulse_one(self, grid, timing):
        timeouts = default_timeouts(grid, timing)
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="i", num_pulses=4, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            seed=1,
        )
        offsets = [layer * timing.delay_midpoint for layer in range(grid.layers + 1)]
        result = _synthetic_result(grid, timing, timeouts, schedule, offsets)
        assert stabilization_time(result, intra_bound=lambda layer: timing.d_max) == 1

    def test_violating_early_pulse_delays_stabilization(self, grid, timing):
        timeouts = default_timeouts(grid, timing)
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="i", num_pulses=4, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            seed=1,
        )
        offsets = [layer * timing.delay_midpoint for layer in range(grid.layers + 1)]
        result = _synthetic_result(grid, timing, timeouts, schedule, offsets)
        # Make one node of pulse 0 grossly late (but still within its window)
        # -> intra-layer violation in pulse 0 only.
        result.firing_times[(3, 2)][0] += 30.0
        estimate = stabilization_time(result, intra_bound=lambda layer: timing.d_max)
        assert estimate == 2

    def test_never_stabilizing_run_returns_none(self, grid, timing):
        timeouts = default_timeouts(grid, timing)
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="i", num_pulses=3, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            seed=1,
        )
        offsets = [layer * timing.delay_midpoint for layer in range(grid.layers + 1)]
        result = _synthetic_result(grid, timing, timeouts, schedule, offsets)
        for pulse in range(3):
            result.firing_times[(3, 2)][pulse] += 50.0
        assert stabilization_time(result, intra_bound=lambda layer: timing.d_max) is None

    def test_pulse_skew_ok_checks_inter_layer_bound(self, grid, timing):
        times = np.zeros(grid.shape)
        for layer in range(grid.layers + 1):
            times[layer, :] = layer * timing.d_max
        counts = np.ones(grid.shape, dtype=int)
        mask = np.ones(grid.shape, dtype=bool)
        assert pulse_skew_ok(
            grid, times, counts, mask,
            intra_bound=lambda layer: timing.epsilon,
            inter_bound=lambda layer: timing.d_max + timing.epsilon,
        )
        # An inter-layer bound below d+ must fail.
        assert not pulse_skew_ok(
            grid, times, counts, mask,
            intra_bound=lambda layer: timing.epsilon,
            inter_bound=lambda layer: timing.d_max - 1.0,
        )

    def test_missing_firing_fails_pulse(self, grid, timing):
        times = np.zeros(grid.shape)
        counts = np.ones(grid.shape, dtype=int)
        counts[3, 2] = 0
        mask = np.ones(grid.shape, dtype=bool)
        assert not pulse_skew_ok(
            grid, times, counts, mask,
            intra_bound=lambda layer: 1.0,
            inter_bound=lambda layer: 1.0,
        )


class TestEndToEndStabilization:
    def test_des_run_from_random_states_stabilizes(self, timing):
        """A full DES run from arbitrary states stabilizes within a few pulses."""
        grid = HexGrid(layers=8, width=6)
        timeouts = default_timeouts(grid, timing, num_faults=0, layer0_spread=timing.d_max)
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="iii", num_pulses=6, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            seed=4,
        )
        result = simulate_multi_pulse(
            grid, timing, timeouts, schedule, seed=11, random_initial_states=True
        )
        estimate = stabilization_time(
            result, intra_bound=lambda layer: 3 * timing.d_max
        )
        assert estimate is not None
        assert estimate <= 3
