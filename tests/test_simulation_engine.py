"""Tests for the event queue and the link delay models."""

from __future__ import annotations

import pytest

from repro.core.topology import HexGrid
from repro.simulation.engine import EventQueue
from repro.simulation.links import (
    ConstantDelays,
    FreshUniformDelays,
    TableDelays,
    UniformRandomDelays,
)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.schedule(3.0, "c")
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        for label in "abc":
            queue.schedule(1.0, label)
        assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_now_advances_with_pops(self):
        queue = EventQueue()
        queue.schedule(2.5, "x")
        assert queue.now == 0.0
        queue.pop()
        assert queue.now == 2.5

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(5.0, "x")
        queue.pop()
        with pytest.raises(ValueError):
            queue.schedule(4.0, "y")

    def test_cannot_schedule_nonfinite(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(float("inf"), "x")
        with pytest.raises(ValueError):
            queue.schedule(float("nan"), "x")

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.schedule(1.0, "a")
        assert queue.peek_time() == 1.0
        assert len(queue) == 1

    def test_pop_until(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0, 4.0):
            queue.schedule(t, t)
        popped = list(queue.pop_until(2.5))
        assert [time for time, _ in popped] == [1.0, 2.0]
        assert len(queue) == 2

    def test_counters(self):
        queue = EventQueue()
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        queue.pop()
        assert queue.num_scheduled == 2
        assert queue.num_processed == 1

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1.0, "a")
        queue.clear()
        assert len(queue) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestDelayModels:
    def test_constant_delays(self):
        model = ConstantDelays(3.5)
        assert model.delay((0, 0), (1, 0)) == 3.5
        assert model.sample((0, 0), (1, 0)) == 3.5
        with pytest.raises(ValueError):
            ConstantDelays(0.0)

    def test_table_delays_default_and_override(self):
        model = TableDelays({((0, 0), (1, 0)): 2.0}, default=5.0)
        assert model.delay((0, 0), (1, 0)) == 2.0
        assert model.delay((0, 1), (1, 1)) == 5.0
        model.set((0, 1), (1, 1), 3.0)
        assert model.delay((0, 1), (1, 1)) == 3.0
        with pytest.raises(ValueError):
            model.set((0, 1), (1, 1), -1.0)
        with pytest.raises(ValueError):
            TableDelays({}, default=0.0)

    def test_uniform_delays_are_cached_and_in_range(self, timing, rng):
        model = UniformRandomDelays(timing, rng)
        first = model.delay((0, 0), (1, 0))
        second = model.delay((0, 0), (1, 0))
        assert first == second
        assert timing.d_min <= first <= timing.d_max

    def test_uniform_delays_differ_across_links(self, timing, rng):
        model = UniformRandomDelays(timing, rng)
        grid = HexGrid(layers=4, width=4)
        values = set(model.materialize(grid).values())
        assert len(values) > 10  # essentially all distinct

    def test_fresh_delays_resample_every_message(self, timing, rng):
        model = FreshUniformDelays(timing, rng)
        values = {model.sample((0, 0), (1, 0)) for _ in range(10)}
        assert len(values) > 1
        assert all(timing.d_min <= value <= timing.d_max for value in values)

    def test_validate_against(self, timing, rng):
        grid = HexGrid(layers=3, width=4)
        good = UniformRandomDelays(timing, rng)
        assert good.validate_against(timing, grid)
        bad = ConstantDelays(timing.d_max * 2)
        assert not bad.validate_against(timing, grid)
