"""Tests for the discrete-event simulator (network + runner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clocksource.generator import PulseScheduleConfig, generate_pulse_schedule
from repro.core.topology import Direction, HexGrid
from repro.faults.models import FaultModel, LinkBehavior, NodeFault
from repro.simulation.links import ConstantDelays, UniformRandomDelays
from repro.simulation.network import HexNetwork, TimerPolicy
from repro.simulation.runner import default_timeouts, simulate_multi_pulse, simulate_single_pulse


@pytest.fixture
def grid() -> HexGrid:
    return HexGrid(layers=8, width=6)


@pytest.fixture
def timeouts(grid, timing):
    return default_timeouts(grid, timing, num_faults=1, layer0_spread=timing.d_max)


class TestSinglePulseDES:
    def test_all_nodes_fire_exactly_once(self, grid, timing, timeouts, rng):
        network = HexNetwork(
            grid, timing, timeouts, ConstantDelays(timing.d_max), rng=rng
        )
        network.initialize()
        network.schedule_source_pulses(np.zeros((1, grid.width)))
        network.run(until=1000.0)
        for node in grid.forwarding_nodes():
            assert len(network.firing_times(node)) == 1

    def test_agrees_with_analytic_solver_exactly(self, grid, timing, rng):
        """With a shared per-link delay model the two engines coincide."""
        delays = UniformRandomDelays(timing, np.random.default_rng(5))
        delays.materialize(grid)
        layer0 = np.linspace(0.0, timing.d_max, grid.width)
        solver = simulate_single_pulse(grid, timing, layer0, rng=rng, delays=delays, engine="solver")
        des = simulate_single_pulse(
            grid, timing, layer0, rng=np.random.default_rng(9), delays=delays, engine="des"
        )
        assert np.allclose(solver.trigger_times, des.trigger_times, atol=1e-9)

    def test_agrees_with_solver_under_byzantine_faults(self, grid, timing):
        delays = UniformRandomDelays(timing, np.random.default_rng(6))
        delays.materialize(grid)
        fault_rng = np.random.default_rng(3)
        model = FaultModel(grid, [NodeFault.byzantine(grid, (4, 2), rng=fault_rng)])
        layer0 = np.zeros(grid.width)
        solver = simulate_single_pulse(
            grid, timing, layer0, rng=np.random.default_rng(1), delays=delays,
            fault_model=model, engine="solver",
        )
        des = simulate_single_pulse(
            grid, timing, layer0, rng=np.random.default_rng(2), delays=delays,
            fault_model=model, engine="des",
        )
        mask = model.correctness_mask()
        assert np.allclose(solver.trigger_times[mask], des.trigger_times[mask], atol=1e-9)

    def test_sleeping_node_does_not_refire_within_a_pulse(self, grid, timing, timeouts, rng):
        network = HexNetwork(grid, timing, timeouts, ConstantDelays(timing.d_min), rng=rng)
        network.initialize()
        network.schedule_source_pulses(np.zeros((1, grid.width)))
        network.run(until=10_000.0)
        assert all(len(network.firing_times(node)) == 1 for node in grid.forwarding_nodes())

    def test_constant_one_link_reasserts_after_timeout(self, grid, timing, timeouts):
        """A stuck-at-1 in-link keeps the victim's flag set across link timeouts."""
        fault_node = (3, 2)
        behaviors = {
            dest: LinkBehavior.CONSTANT_ONE for dest in grid.out_neighbors(fault_node).values()
        }
        model = FaultModel(grid, [NodeFault.byzantine(grid, fault_node, behaviors=behaviors)])
        network = HexNetwork(
            grid, timing, timeouts, ConstantDelays(timing.d_max),
            fault_model=model, rng=np.random.default_rng(0),
        )
        network.initialize()
        # Do not schedule any source pulses: run well past several link
        # timeouts; the victim must not fire (one stuck flag is not a guard)
        # and the simulation must not livelock.
        horizon = 5 * timeouts.t_link_max
        network.run(until=horizon)
        victim = grid.neighbor(fault_node, Direction.UPPER_RIGHT)
        assert network.firing_times(victim) == []
        automaton = network.automata[victim]
        assert Direction.LOWER_LEFT in automaton.flags

    def test_crash_fault_forwards_before_crash_only(self, grid, timing, timeouts):
        model = FaultModel(grid, [NodeFault.crash(grid, (2, 3), crash_time=1000.0)])
        network = HexNetwork(
            grid, timing, timeouts, ConstantDelays(timing.d_max),
            fault_model=model, rng=np.random.default_rng(0),
        )
        network.initialize()
        network.schedule_source_pulses(np.zeros((1, grid.width)))
        network.run(until=900.0)
        # Before the crash the node behaves correctly and forwards the pulse.
        assert len(network.firing_times((2, 3))) == 1

    def test_event_cap_guards_against_livelock(self, grid, timing, timeouts):
        network = HexNetwork(
            grid, timing, timeouts, ConstantDelays(timing.d_max),
            rng=np.random.default_rng(0), max_events=10,
        )
        network.initialize()
        network.schedule_source_pulses(np.zeros((1, grid.width)))
        with pytest.raises(RuntimeError):
            network.run(until=1e9)

    def test_uniform_timer_policy_requires_rng(self, grid, timing, timeouts):
        with pytest.raises(ValueError):
            HexNetwork(grid, timing, timeouts, ConstantDelays(timing.d_max), rng=None)

    def test_nominal_policy_without_rng_is_allowed(self, grid, timing, timeouts):
        network = HexNetwork(
            grid, timing, timeouts, ConstantDelays(timing.d_max),
            rng=None, timer_policy=TimerPolicy.NOMINAL,
        )
        network.initialize()
        network.schedule_source_pulses(np.zeros((1, grid.width)))
        network.run(until=1000.0)
        assert network.first_firing_matrix()[grid.layers, 0] > 0


class TestRunnerInterfaces:
    def test_single_pulse_result_accessors(self, grid, timing, rng):
        layer0 = np.zeros(grid.width)
        result = simulate_single_pulse(grid, timing, layer0, rng=rng)
        assert result.trigger_time((0, 0)) == 0.0
        assert result.all_correct_triggered()
        assert result.engine == "solver"
        assert result.solution is not None

    def test_unknown_engine_raises(self, grid, timing, rng):
        with pytest.raises(ValueError):
            simulate_single_pulse(grid, timing, np.zeros(grid.width), rng=rng, engine="vhdl")

    def test_bad_layer0_shape_raises(self, grid, timing, rng):
        with pytest.raises(ValueError):
            simulate_single_pulse(grid, timing, np.zeros(3), rng=rng)

    def test_multi_pulse_counts_pulses(self, grid, timing, timeouts, rng):
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="i", num_pulses=3, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            rng=rng,
        )
        result = simulate_multi_pulse(
            grid, timing, timeouts, schedule, rng=rng, random_initial_states=False
        )
        assert result.num_pulses == 3
        # Every forwarding node fires exactly once per pulse from a clean start.
        for node in grid.forwarding_nodes():
            assert len(result.firings_of(node)) == 3
        assert result.total_firings() == 3 * (grid.num_nodes)

    def test_multi_pulse_with_random_initial_states_recovers(self, grid, timing, timeouts, rng):
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(scenario="iii", num_pulses=4, separation=timeouts.pulse_separation),
            grid.width,
            timing,
            rng=rng,
        )
        result = simulate_multi_pulse(
            grid, timing, timeouts, schedule, rng=rng, random_initial_states=True
        )
        # In the last pulse window every forwarding node fires (the system has
        # recovered from the arbitrary initial states).
        last_window_start = float(np.nanmin(schedule[-1, :]))
        for node in grid.forwarding_nodes():
            firings = [t for t in result.firings_of(node) if t >= last_window_start]
            assert len(firings) == 1

    def test_multi_pulse_bad_schedule_shape(self, grid, timing, timeouts, rng):
        with pytest.raises(ValueError):
            simulate_multi_pulse(grid, timing, timeouts, np.zeros((2, 3)), rng=rng)

    def test_default_timeouts_satisfy_condition2_relations(self, grid, timing):
        timeouts = default_timeouts(grid, timing, num_faults=2, layer0_spread=1.0)
        assert timeouts.t_link_max == pytest.approx(timing.theta * timeouts.t_link_min)
        assert timeouts.t_sleep_min == pytest.approx(2 * timeouts.t_link_max + 2 * timing.d_max)
