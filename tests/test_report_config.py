"""Tests for the experiment configuration and the report formatting helpers."""

from __future__ import annotations

import pytest

from repro.experiments.config import DEFAULT_RUNS, PAPER_RUNS, ExperimentConfig
from repro.experiments.report import format_comparison, format_kv, format_table


class TestExperimentConfig:
    def test_default_matches_paper_grid(self):
        config = ExperimentConfig()
        assert (config.layers, config.width) == (50, 20)
        assert config.runs == DEFAULT_RUNS
        assert config.timing.d_max == pytest.approx(8.197)

    def test_paper_configuration(self):
        config = ExperimentConfig.paper()
        assert config.runs == PAPER_RUNS
        assert (config.layers, config.width) == (50, 20)

    def test_quick_configuration_is_smaller(self):
        quick = ExperimentConfig.quick()
        assert quick.layers < 50 and quick.width < 20
        assert quick.runs < DEFAULT_RUNS

    def test_with_runs_and_seed(self):
        config = ExperimentConfig().with_runs(7).with_seed(123)
        assert config.runs == 7 and config.seed == 123

    def test_make_grid(self):
        grid = ExperimentConfig.quick().make_grid()
        assert grid.layers == 20 and grid.width == 10

    def test_spawn_rngs_are_independent_and_reproducible(self):
        config = ExperimentConfig(seed=5)
        first = config.spawn_rngs(3, salt=1)
        second = config.spawn_rngs(3, salt=1)
        other_salt = config.spawn_rngs(3, salt=2)
        for a, b in zip(first, second):
            assert a.uniform() == b.uniform()
        assert first[0].uniform() != other_salt[0].uniform()
        # Different children of the same spawn produce different streams.
        fresh = config.spawn_rngs(2, salt=1)
        assert fresh[0].uniform() != fresh[1].uniform()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(layers=0)
        with pytest.raises(ValueError):
            ExperimentConfig(width=2)
        with pytest.raises(ValueError):
            ExperimentConfig(runs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(num_pulses=0)


class TestReportFormatting:
    def test_format_table_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.23456], ["b", 7]],
            precision=2,
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.23" in text and "7" in text

    def test_format_table_handles_nan(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text

    def test_format_comparison_includes_ratio(self):
        text = format_comparison(
            ["skew"], measured={"skew": 2.0}, paper={"skew": 4.0}
        )
        assert "0.500" in text
        assert "measured" in text and "paper" in text

    def test_format_comparison_missing_and_zero_paper_value(self):
        text = format_comparison(
            ["a", "b"], measured={"a": 1.0, "b": 1.0}, paper={"a": 0.0}
        )
        assert "nan" in text

    def test_format_kv(self):
        text = format_kv({"alpha": 1.0, "beta": "x"}, title="Summary")
        assert text.splitlines()[0] == "Summary"
        assert "alpha" in text and "beta" in text
