"""Tests for the benchmark harness (``repro.bench``) and batched execution.

Covers the acceptance surface of the bench subsystem: case/settings
round-trips and quick-mode shrink invariants, robust statistics, the
registry, the runner's schema-versioned artifacts and ``BENCH_OUT`` routing,
the baseline comparison exit codes (pass / regress / missing-baseline), the
``hex-repro bench`` CLI, and the engine/campaign batching contract --
``run_batch`` results bit-identical to per-spec execution.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    EXIT_MISSING_BASELINE,
    EXIT_OK,
    EXIT_REGRESSION,
    BenchCase,
    BenchSettings,
    available_suites,
    bench_output_dir,
    cases_in_suite,
    compare_payloads,
    get_case,
    load_baseline,
    load_builtin_suites,
    merge_case_result,
    register_case,
    robust_stats,
    run_case,
    run_suites,
    suite_filename,
    unregister_case,
)
from repro.bench.runner import COMBINED_SCHEMA, SCHEMA_VERSION, SUITE_SCHEMA
from repro.campaign import CampaignRunner, CampaignSpec, SweepSpec
from repro.campaign.runner import execute_task, execute_task_batch
from repro.cli import main
from repro.engines import RunSpec, generic_run_batch, get_engine


def _stub_case(name="stub", suite="stub-suite", **kwargs):
    calls = {"made": 0, "ran": 0, "checked": 0}

    def make(settings):
        calls["made"] += 1

        def workload():
            calls["ran"] += 1
            return {"value": 42}

        return workload

    def check(result, settings):
        calls["checked"] += 1
        assert result["value"] == 42

    defaults = dict(
        name=name,
        suite=suite,
        make=make,
        repeats=3,
        quick_repeats=1,
        check=check,
        quick_check=True,
        info=lambda result, settings: {"value": result["value"]},
    )
    defaults.update(kwargs)
    return BenchCase(**defaults), calls


class TestSettings:
    def test_mode_and_effective_runs(self):
        assert BenchSettings().mode == "full"
        assert BenchSettings(quick=True).mode == "quick"
        assert BenchSettings(paper=True).mode == "paper"
        assert BenchSettings(quick=True).effective_runs() < BenchSettings().effective_runs()
        assert BenchSettings(runs=77).effective_runs() == 77

    def test_quick_and_paper_are_exclusive(self):
        with pytest.raises(ValueError):
            BenchSettings(quick=True, paper=True)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("HEX_BENCH_RUNS", "5")
        settings = BenchSettings.from_env(quick=True)
        assert settings.runs == 5 and settings.quick
        monkeypatch.setenv("HEX_BENCH_PAPER", "1")
        assert BenchSettings.from_env().paper
        with pytest.raises(ValueError, match="HEX_BENCH_PAPER"):
            BenchSettings.from_env(quick=True)  # conflict is a hard error

    def test_configs_shrink_in_quick_mode(self):
        full, quick = BenchSettings(), BenchSettings(quick=True)
        assert quick.config().runs < full.config().runs
        assert quick.config().layers == full.config().layers == 50  # grid kept
        assert quick.stab_config().runs <= full.stab_config().runs


class TestCase:
    def test_validation(self):
        case, _ = _stub_case()
        assert case.effective_repeats(BenchSettings()) == 3
        assert case.effective_repeats(BenchSettings(quick=True)) == 1
        with pytest.raises(ValueError):
            _stub_case(repeats=0)
        with pytest.raises(ValueError):
            _stub_case(repeats=2, quick_repeats=3)  # quick only shrinks
        with pytest.raises(ValueError):
            _stub_case(name="")

    def test_checks_under_quick_mode(self):
        gated, _ = _stub_case(quick_check=False)
        always, _ = _stub_case(quick_check=True)
        assert gated.checks_under(BenchSettings()) is True
        assert gated.checks_under(BenchSettings(quick=True)) is False
        assert always.checks_under(BenchSettings(quick=True)) is True

    def test_builtin_cases_shrink_invariants(self):
        load_builtin_suites()
        quick = BenchSettings(quick=True)
        full = BenchSettings()
        suites = available_suites()
        assert {"solver", "des", "campaign", "topology", "clocktree", "batch"} <= set(
            suites
        )
        total = 0
        for suite in suites:
            for case in cases_in_suite(suite):
                total += 1
                assert case.effective_repeats(quick) <= case.effective_repeats(full)
        assert total >= 23  # the 22 ported historical cases plus the batch gate


class TestStats:
    def test_robust_stats_values(self):
        stats = robust_stats([3.0, 1.0, 2.0, 4.0])
        assert stats["min_s"] == 1.0
        assert stats["median_s"] == 2.5
        assert stats["max_s"] == 4.0
        assert stats["iqr_s"] == pytest.approx(1.5)
        assert stats["mean_s"] == pytest.approx(2.5)

    def test_robust_stats_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            robust_stats([])
        with pytest.raises(ValueError):
            robust_stats([1.0, float("nan")])
        with pytest.raises(ValueError):
            robust_stats([-0.1])


class TestRegistry:
    def test_register_get_unregister(self):
        case, _ = _stub_case(suite="reg-suite")
        register_case(case)
        try:
            assert get_case("reg-suite", "stub") is case
            assert "reg-suite" in available_suites()
            with pytest.raises(ValueError):
                register_case(case)  # duplicate without replace
            register_case(case, replace=True)
        finally:
            unregister_case("reg-suite", "stub")
        with pytest.raises(ValueError, match="unknown bench case"):
            get_case("reg-suite", "stub")


class TestRunner:
    def test_run_case_times_checks_and_info(self):
        case, calls = _stub_case()
        result = run_case(case, BenchSettings())
        assert calls == {"made": 1, "ran": 3, "checked": 1}
        assert len(result.times_s) == 3
        assert result.stats["median_s"] >= 0.0
        assert result.info == {"value": 42}

    def test_quick_mode_shrinks_repeats_and_skips_gated_checks(self):
        case, calls = _stub_case(quick_check=False)
        run_case(case, BenchSettings(quick=True))
        assert calls == {"made": 1, "ran": 1, "checked": 0}

    def test_run_suites_writes_schema_versioned_files(self, tmp_path):
        case, _ = _stub_case(suite="io-suite")
        register_case(case)
        try:
            payloads = run_suites(
                suites=["io-suite"], settings=BenchSettings(quick=True), out=str(tmp_path)
            )
        finally:
            unregister_case("io-suite", "stub")
        suite_file = tmp_path / suite_filename("io-suite")
        combined_file = tmp_path / "BENCH_suite.json"
        assert suite_file.exists() and combined_file.exists()
        payload = json.loads(suite_file.read_text())
        assert payload["schema"] == SUITE_SCHEMA
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["mode"] == "quick"
        assert payload["cases"]["stub"]["stats"]["median_s"] >= 0.0
        assert payload["provenance"]["python"]
        combined = json.loads(combined_file.read_text())
        assert combined["schema"] == COMBINED_SCHEMA
        assert combined["suites"]["io-suite"] == payloads["io-suite"] == payload

    def test_run_suites_rejects_unknown_suite(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suites(suites=["no-such-suite"], out=str(tmp_path))

    def test_bench_output_dir_precedence(self, tmp_path, monkeypatch):
        monkeypatch.delenv("BENCH_OUT", raising=False)
        assert bench_output_dir(str(tmp_path)) == tmp_path
        monkeypatch.setenv("BENCH_OUT", str(tmp_path / "env"))
        assert bench_output_dir() == tmp_path / "env"
        assert bench_output_dir(str(tmp_path)) == tmp_path  # explicit wins

    def test_merge_case_result_accumulates_cases(self, tmp_path):
        settings = BenchSettings(quick=True)
        case_a, _ = _stub_case(name="a", suite="merge-suite")
        case_b, _ = _stub_case(name="b", suite="merge-suite")
        merge_case_result(tmp_path, "merge-suite", settings, run_case(case_a, settings))
        merge_case_result(tmp_path, "merge-suite", settings, run_case(case_b, settings))
        payload = json.loads((tmp_path / suite_filename("merge-suite")).read_text())
        assert set(payload["cases"]) == {"a", "b"}
        # a mode switch resets the payload instead of mixing modes
        merge_case_result(
            tmp_path, "merge-suite", BenchSettings(), run_case(case_a, BenchSettings())
        )
        payload = json.loads((tmp_path / suite_filename("merge-suite")).read_text())
        assert payload["mode"] == "full"
        assert set(payload["cases"]) == {"a"}


def _payload(suite, medians, mode="quick"):
    return {
        "schema": SUITE_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "mode": mode,
        "provenance": {},
        "cases": {
            name: {"repeats": 1, "times_s": [median], "stats": {"median_s": median}}
            for name, median in medians.items()
        },
    }


class TestCompare:
    def test_pass_within_tolerance(self):
        report = compare_payloads(
            {"s": _payload("s", {"c": 1.2})}, {"s": _payload("s", {"c": 1.0})},
            tolerance_pct=25.0,
        )
        assert not report.regressions
        assert report.exit_code() == EXIT_OK

    def test_regression_beyond_tolerance(self):
        report = compare_payloads(
            {"s": _payload("s", {"c": 1.3, "d": 0.9})},
            {"s": _payload("s", {"c": 1.0, "d": 1.0})},
            tolerance_pct=25.0,
        )
        assert [c.name for c in report.regressions] == ["c"]
        assert report.exit_code() == EXIT_REGRESSION
        assert "REGRESSED" in report.render()

    def test_missing_suite_case_and_mode_mismatch(self):
        fresh = {"s": _payload("s", {"c": 1.0}), "t": _payload("t", {"x": 1.0})}
        baseline = {"s": _payload("s", {"c": 1.0, "gone": 1.0})}
        report = compare_payloads(fresh, baseline)
        assert report.exit_code() == EXIT_MISSING_BASELINE
        assert any("suite 't'" in message for message in report.missing)
        assert any("gone" in message for message in report.missing)

    def test_baseline_only_suite_is_missing(self):
        # A suite that silently stopped running must not pass the gate.
        report = compare_payloads(
            {"s": _payload("s", {"c": 1.0})},
            {"s": _payload("s", {"c": 1.0}), "dropped": _payload("dropped", {"x": 1.0})},
        )
        assert report.exit_code() == EXIT_MISSING_BASELINE
        assert any("'dropped' was not run" in message for message in report.missing)
        mismatched = compare_payloads(
            {"s": _payload("s", {"c": 1.0}, mode="quick")},
            {"s": _payload("s", {"c": 1.0}, mode="full")},
        )
        assert mismatched.exit_code() == EXIT_MISSING_BASELINE

    def test_new_case_does_not_gate(self):
        report = compare_payloads(
            {"s": _payload("s", {"c": 1.0, "brand_new": 9.9})},
            {"s": _payload("s", {"c": 1.0})},
        )
        assert report.exit_code() == EXIT_OK
        assert report.new_cases == ["s/brand_new"]

    def test_regression_dominates_missing(self):
        report = compare_payloads(
            {"s": _payload("s", {"c": 2.0}), "t": _payload("t", {"x": 1.0})},
            {"s": _payload("s", {"c": 1.0})},
        )
        assert report.exit_code() == EXIT_REGRESSION

    def test_load_baseline_file_directory_and_missing(self, tmp_path):
        suite_payload = _payload("s", {"c": 1.0})
        (tmp_path / "BENCH_s.json").write_text(json.dumps(suite_payload))
        combined = {
            "schema": COMBINED_SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "mode": "quick",
            "suites": {"t": _payload("t", {"x": 2.0})},
        }
        (tmp_path / "BENCH_suite.json").write_text(json.dumps(combined))
        suites = load_baseline(str(tmp_path))
        assert set(suites) == {"s", "t"}
        assert load_baseline(str(tmp_path / "BENCH_s.json")) == {"s": suite_payload}
        assert load_baseline(str(tmp_path / "nope")) == {}
        with pytest.raises(ValueError, match="not a bench payload"):
            (tmp_path / "only.json").write_text("{}")
            load_baseline(str(tmp_path / "only.json"))


class TestBenchCli:
    @pytest.fixture()
    def stub_suite(self):
        case, calls = _stub_case(suite="cli-suite")
        register_case(case)
        yield calls
        unregister_case("cli-suite", "stub")

    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        output = capsys.readouterr().out
        assert "solver" in output and "batch" in output

    def test_unknown_suite_is_a_cli_error(self, tmp_path):
        assert main(["bench", "--suite", "no-such", "--out", str(tmp_path)]) == 2

    def test_compare_pass_regress_missing_exit_codes(self, stub_suite, tmp_path):
        fresh_dir = tmp_path / "fresh"
        base_dir = tmp_path / "base"
        argv = ["bench", "--quick", "--suite", "cli-suite", "--out", str(base_dir)]
        assert main(argv) == 0

        # Compare against the per-suite file directly: the directory also
        # holds the combined BENCH_suite.json, whose entries would shadow
        # the medians this test edits below.
        baseline_file = base_dir / suite_filename("cli-suite")
        compare = [
            "bench", "--quick", "--suite", "cli-suite", "--out", str(fresh_dir),
            "--compare", str(baseline_file), "--tolerance", "25",
        ]
        # missing baseline: point at an empty directory
        missing_dir = tmp_path / "empty"
        missing_dir.mkdir()
        assert (
            main(compare[:-4] + ["--compare", str(missing_dir), "--tolerance", "25"])
            == EXIT_MISSING_BASELINE
        )
        # pass: the stub workload is effectively instant in both runs ... but
        # guard against timer jitter by inflating the baseline median first.
        payload = json.loads(baseline_file.read_text())
        payload["cases"]["stub"]["stats"]["median_s"] = 10.0
        baseline_file.write_text(json.dumps(payload))
        assert main(compare) == EXIT_OK
        # regression: force an absurdly fast baseline median
        payload["cases"]["stub"]["stats"]["median_s"] = 0.0
        baseline_file.write_text(json.dumps(payload))
        assert main(compare) == EXIT_REGRESSION


class TestRunBatch:
    def _specs(self):
        specs = []
        for index, topology in enumerate(
            ("cylinder", "torus", "patch", "degraded:nodes=2,links=1,seed=3")
        ):
            for scenario in ("i", "iii"):
                for num_faults, fault_type in (
                    (0, None),
                    (2, "byzantine"),
                    (1, "fail_silent"),
                ):
                    specs.append(
                        RunSpec(
                            kind="single_pulse",
                            layers=8,
                            width=5,
                            scenario=scenario,
                            topology=topology,
                            num_faults=num_faults,
                            fault_type=fault_type,
                            entropy=777 + index,
                            run_index=len(specs),
                        )
                    )
        return specs

    @staticmethod
    def _assert_results_identical(per_spec, batched):
        for field in ("trigger_times", "correct_mask", "layer0_times"):
            assert np.array_equal(
                getattr(per_spec, field), getattr(batched, field), equal_nan=True
            ), field
        if per_spec.solution is not None:
            assert np.array_equal(per_spec.solution.guards, batched.solution.guards)
        assert (per_spec.fault_model is None) == (batched.fault_model is None)
        if per_spec.fault_model is not None:
            assert tuple(per_spec.fault_model.faulty_nodes()) == tuple(
                batched.fault_model.faulty_nodes()
            )

    def test_solver_run_batch_bit_identical_to_per_spec_runs(self):
        engine = get_engine("solver")
        specs = self._specs()
        batched = engine.run_batch(specs)
        assert len(batched) == len(specs)
        for spec, batch_result in zip(specs, batched):
            self._assert_results_identical(engine.run(spec), batch_result)
        # grids are shared per (topology, layers, width) within the batch
        fault_free = [r for r in batched if r.spec.num_faults == 0]
        by_topology = {}
        for result in batched:
            by_topology.setdefault(result.spec.topology, []).append(result)
        for results in by_topology.values():
            assert all(r.grid is results[0].grid for r in results)
        assert fault_free  # the fast path was actually exercised

    def test_solver_run_batch_rejects_unsupported_specs_like_run(self):
        engine = get_engine("solver")
        with pytest.raises(ValueError, match="does not support kind"):
            engine.run_batch([RunSpec(kind="multi_pulse", layers=4, width=4)])

    def test_generic_run_batch_matches_loop(self):
        engine = get_engine("des")
        specs = [
            RunSpec(
                kind="single_pulse", layers=4, width=4, scenario="i",
                entropy=5, run_index=index,
            )
            for index in range(3)
        ]
        for per_spec, batched in zip(
            [engine.run(spec) for spec in specs], generic_run_batch(engine, specs)
        ):
            assert np.array_equal(
                per_spec.trigger_times, batched.trigger_times, equal_nan=True
            )

    def test_planned_solver_used_only_when_fault_free(self):
        engine = get_engine("solver")
        faulty = RunSpec(
            kind="single_pulse", layers=6, width=5, num_faults=2,
            fault_type="byzantine", entropy=1, run_index=0,
        )
        (result,) = engine.run_batch([faulty])
        assert result.fault_model is not None
        assert result.solution is not None


class TestCampaignBatching:
    def _spec(self, **kwargs):
        defaults = dict(
            layers=(8, 10), width=5, scenario=("i", "iii"), num_faults=(0, 1),
            runs=2, seed_salt=4,
        )
        defaults.update(kwargs)
        return CampaignSpec(name="batching", seed=31, cells=(SweepSpec(**defaults),))

    def test_batched_serial_records_match_per_task_execution(self):
        spec = self._spec()
        batched = CampaignRunner(spec, batch_size=5).run()
        per_task = CampaignRunner(spec, batch_size=1).run()
        assert [r.canonical_json() for r in batched.records] == [
            r.canonical_json() for r in per_task.records
        ]

    def test_mixed_engine_cells_split_into_groups(self):
        spec = self._spec(engine=("solver", "clocktree"), num_faults=0, layers=8)
        batched = CampaignRunner(spec).run()
        per_task = CampaignRunner(spec, batch_size=1).run()
        assert [r.canonical_json() for r in batched.records] == [
            r.canonical_json() for r in per_task.records
        ]

    def test_execute_task_batch_matches_execute_task(self):
        tasks = self._spec().tasks()
        batched = execute_task_batch(tasks)
        for task, record in zip(tasks, batched):
            assert record.canonical_json() == execute_task(task).canonical_json()

    def test_execute_task_batch_rejects_mixed_groups(self):
        tasks = self._spec().tasks()
        multi = self._spec(kind="multi_pulse", num_faults=0, scenario="i", layers=8)
        with pytest.raises(ValueError, match="same-engine single-pulse"):
            execute_task_batch([tasks[0], multi.tasks()[0]])

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            CampaignRunner(self._spec(), batch_size=0)
