"""Tests for the layer-0 clock-source substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clocksource.fatal import QuorumPulseSynchronizer, SynchronizerConfig
from repro.clocksource.generator import (
    PulseScheduleConfig,
    generate_pulse_schedule,
    schedule_from_timeouts,
)
from repro.clocksource.scenarios import (
    SCENARIOS,
    Scenario,
    parse_scenario,
    scenario_label,
    scenario_layer0_times,
    scenario_skew_potential,
)
from repro.core.parameters import condition2_timeouts


class TestScenarioParsing:
    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("zero", Scenario.ZERO),
            ("i", Scenario.ZERO),
            ("(ii)", Scenario.UNIFORM_DMIN),
            ("III", Scenario.UNIFORM_DMAX),
            ("ramp", Scenario.RAMP),
            ("(iv)", Scenario.RAMP),
            (Scenario.RAMP, Scenario.RAMP),
        ],
    )
    def test_aliases(self, alias, expected):
        assert parse_scenario(alias) is expected

    def test_unknown_alias_raises(self):
        with pytest.raises(ValueError):
            parse_scenario("scenario-42")

    def test_labels(self):
        assert scenario_label("i") == "(i) 0"
        assert scenario_label("iv") == "(iv) ramp d+"
        assert [s.roman for s in SCENARIOS] == ["(i)", "(ii)", "(iii)", "(iv)"]


class TestScenarioTimes:
    def test_zero_scenario(self, timing):
        times = scenario_layer0_times("i", 10, timing)
        assert np.all(times == 0.0)

    def test_uniform_scenarios_respect_ranges(self, timing, rng):
        dmin_times = scenario_layer0_times("ii", 200, timing, rng=rng)
        assert np.all((0 <= dmin_times) & (dmin_times <= timing.d_min))
        dmax_times = scenario_layer0_times("iii", 200, timing, rng=rng)
        assert np.all((0 <= dmax_times) & (dmax_times <= timing.d_max))
        assert dmax_times.max() > timing.d_min  # actually uses the larger range

    def test_ramp_scenario_shape(self, timing):
        width = 20
        times = scenario_layer0_times("iv", width, timing)
        diffs = np.diff(times)
        half = width // 2
        assert np.allclose(diffs[:half], timing.d_max)
        assert np.allclose(diffs[half:], -timing.d_max)
        assert times.min() == 0.0
        assert times.max() == pytest.approx(half * timing.d_max)

    def test_seed_reproducibility(self, timing):
        a = scenario_layer0_times("iii", 20, timing, seed=77)
        b = scenario_layer0_times("iii", 20, timing, seed=77)
        assert np.array_equal(a, b)

    def test_width_validation(self, timing):
        with pytest.raises(ValueError):
            scenario_layer0_times("i", 2, timing)

    def test_skew_potentials(self, timing):
        assert scenario_skew_potential("i", 20, timing) == 0.0
        assert scenario_skew_potential("iv", 20, timing) == pytest.approx(
            10 * timing.epsilon, rel=0.05
        )


class TestPulseSchedules:
    def test_separation_between_pulses(self, timing, rng):
        config = PulseScheduleConfig(scenario="iii", num_pulses=5, separation=100.0)
        schedule = generate_pulse_schedule(config, 12, timing, rng=rng)
        assert schedule.shape == (5, 12)
        for pulse in range(4):
            assert schedule[pulse + 1, :].min() >= schedule[pulse, :].max() + 100.0 - 1e-9

    def test_extra_separation(self, timing, rng):
        config = PulseScheduleConfig(
            scenario="i", num_pulses=3, separation=50.0, extra_separation=10.0
        )
        schedule = generate_pulse_schedule(config, 6, timing, rng=rng)
        gaps = schedule[1:, :].min(axis=1) - schedule[:-1, :].max(axis=1)
        assert np.all(gaps >= 60.0 - 1e-9)

    def test_fixed_offsets_option(self, timing, rng):
        config = PulseScheduleConfig(
            scenario="iii", num_pulses=3, separation=50.0, redraw_offsets=False
        )
        schedule = generate_pulse_schedule(config, 6, timing, rng=rng)
        offsets = schedule - schedule.min(axis=1, keepdims=True)
        assert np.allclose(offsets[0], offsets[1])
        assert np.allclose(offsets[1], offsets[2])

    def test_schedule_from_timeouts_uses_S(self, timing, rng):
        timeouts = condition2_timeouts(timing, stable_skew=20.0, layers=20, num_faults=0)
        schedule = schedule_from_timeouts("i", 3, timeouts, 6, timing, rng=rng)
        gaps = schedule[1:, :].min(axis=1) - schedule[:-1, :].max(axis=1)
        assert np.all(gaps >= timeouts.pulse_separation - 1e-9)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PulseScheduleConfig(scenario="i", num_pulses=0, separation=1.0)
        with pytest.raises(ValueError):
            PulseScheduleConfig(scenario="i", num_pulses=1, separation=0.0)
        with pytest.raises(ValueError):
            PulseScheduleConfig(scenario="i", num_pulses=1, separation=1.0, extra_separation=-1.0)


class TestQuorumSynchronizer:
    def test_bounded_spread_and_separation(self, rng):
        config = SynchronizerConfig(num_sources=10, num_byzantine=2, separation=100.0)
        synchronizer = QuorumPulseSynchronizer(config, rng=rng)
        schedule = synchronizer.generate_schedule(num_pulses=6)
        assert schedule.shape == (6, 10)
        correct = [i for i in range(10) if i not in synchronizer.byzantine]
        spread_bound = synchronizer.spread_bound()
        for pulse in range(6):
            values = schedule[pulse, correct]
            assert np.all(np.isfinite(values))
            assert values.max() - values.min() <= spread_bound + 1e-9
        # Per-source separation of consecutive pulses is at least S (all drifts >= 1).
        for index in correct:
            gaps = np.diff(schedule[:, index])
            assert np.all(gaps >= config.separation * 0.9)

    def test_byzantine_sources_have_nan_entries(self, rng):
        config = SynchronizerConfig(num_sources=7, num_byzantine=2, separation=50.0)
        synchronizer = QuorumPulseSynchronizer(config, rng=rng)
        schedule = synchronizer.generate_schedule(num_pulses=3)
        for index in synchronizer.byzantine:
            assert np.all(np.isnan(schedule[:, index]))

    def test_quorum_requirement(self):
        with pytest.raises(ValueError):
            SynchronizerConfig(num_sources=6, num_byzantine=2)  # needs 3f < n
        config = SynchronizerConfig(num_sources=7, num_byzantine=2)
        assert config.quorum == 5

    def test_explicit_byzantine_indices(self, rng):
        config = SynchronizerConfig(num_sources=7, num_byzantine=2, separation=50.0)
        synchronizer = QuorumPulseSynchronizer(config, rng=rng, byzantine_sources=[0, 3])
        assert synchronizer.byzantine == {0, 3}
        with pytest.raises(ValueError):
            QuorumPulseSynchronizer(config, rng=rng, byzantine_sources=[0])

    def test_schedule_feeds_hex_grid(self, timing, rng):
        """End-to-end: the synchronizer's output drives a HEX grid."""
        from repro.core.topology import HexGrid
        from repro.simulation.links import UniformRandomDelays
        from repro.core.pulse_solver import solve_single_pulse

        config = SynchronizerConfig(num_sources=8, num_byzantine=0, separation=200.0)
        schedule = QuorumPulseSynchronizer(config, rng=rng).generate_schedule(1)
        grid = HexGrid(layers=6, width=8)
        solution = solve_single_pulse(
            grid, schedule[0], UniformRandomDelays(timing, rng)
        )
        assert solution.all_triggered()

    def test_num_pulses_validation(self, rng):
        config = SynchronizerConfig(num_sources=5, num_byzantine=1)
        with pytest.raises(ValueError):
            QuorumPulseSynchronizer(config, rng=rng).generate_schedule(0)


class TestQuorumSynchronizerUnderTransientFaults:
    """The layer-0 stand-in meets the adversary layer.

    The HEX interface the synchronizer must provide -- bounded per-pulse
    spread and minimum separation among *correct* sources -- has to survive
    the worst Byzantine strategy the stand-in models (READY floods sent
    arbitrarily early), and its output has to keep a HEX grid stabilizing
    even while the grid itself is under a transient fault burst.
    """

    def test_interface_bounds_hold_for_every_byzantine_count(self, rng):
        config_base = dict(num_sources=10, separation=120.0)
        spreads = {}
        for num_byzantine in (0, 1, 2, 3):
            config = SynchronizerConfig(num_byzantine=num_byzantine, **config_base)
            synchronizer = QuorumPulseSynchronizer(config, rng=rng)
            schedule = synchronizer.generate_schedule(num_pulses=8)
            correct = [i for i in range(10) if i not in synchronizer.byzantine]
            bound = synchronizer.spread_bound()
            per_pulse = schedule[:, correct].max(axis=1) - schedule[:, correct].min(axis=1)
            assert np.all(per_pulse <= bound + 1e-9)
            for index in correct:
                assert np.all(
                    np.diff(schedule[:, index]) >= config.separation / config.theta - 1e-9
                )
            spreads[num_byzantine] = float(per_pulse.max())
        assert spreads  # all four Byzantine counts produced valid schedules

    def test_faulty_synchronizer_drives_grid_through_transient_burst(self, timing):
        """End-to-end recovery: Byzantine sources *and* a mid-run grid burst.

        The synchronizer (2 of 8 sources Byzantine) produces the layer-0
        schedule; the grid additionally suffers a transient 2-node Byzantine
        burst injected between pulses and healed two windows later.  Every
        correct node must keep firing once per post-heal pulse window.
        """
        from repro.adversary import FaultSchedule
        from repro.analysis.stabilization import assign_pulses
        from repro.core.parameters import condition2_timeouts
        from repro.core.topology import HexGrid
        from repro.engines import get_engine

        grid = HexGrid(layers=8, width=8)
        num_pulses = 6
        synchronizer_rng = np.random.default_rng(2013)
        config = SynchronizerConfig(num_sources=8, num_byzantine=2, separation=400.0)
        # Non-adjacent Byzantine sources so the grid-side Condition 1 holds
        # (two adjacent dead sources would starve the node between them).
        synchronizer = QuorumPulseSynchronizer(
            config, rng=synchronizer_rng, byzantine_sources=[2, 6]
        )
        schedule = synchronizer.generate_schedule(num_pulses)
        # Byzantine sources produce nothing trustworthy: their nan entries are
        # skipped by the network's pulse scheduling; declare them fail-silent.
        byzantine_sources = sorted(synchronizer.byzantine)

        stable_skew = synchronizer.spread_bound() + timing.epsilon * grid.layers + 2 * timing.d_max
        timeouts = condition2_timeouts(
            timing, stable_skew=stable_skew, layers=grid.layers, num_faults=2
        )

        window = float(np.nanmin(schedule[1])) - float(np.nanmin(schedule[0]))
        burst = FaultSchedule.burst(
            time=float(np.nanmin(schedule[1])) + 0.5 * window,
            count=2,
            duration=2.0 * window,
        )
        run_rng = np.random.default_rng(99)
        adversary = burst.materialize(
            grid, run_rng, exclude=[(0, column) for column in byzantine_sources]
        )

        from repro.faults.models import FaultModel, NodeFault

        fault_model = FaultModel(
            grid,
            [NodeFault.fail_silent(grid, (0, column)) for column in byzantine_sources],
        )
        engine = get_engine("des")
        result = engine.multi_pulse(
            grid,
            timing,
            timeouts,
            schedule,  # nan entries (Byzantine sources) are skipped by the network
            rng=run_rng,
            fault_model=fault_model,
            random_initial_states=False,
            adversary=adversary,
        )

        assignment = assign_pulses(result)
        # After the heal, every correct forwarding node fires exactly once per
        # window: the grid re-stabilized despite faulty sources + burst.
        last = assignment.num_pulses - 1
        counts = assignment.counts[last]
        mask = result.fault_model.correctness_mask()
        mask[0, :] = False  # sources are assigned by schedule, not counted here
        assert np.all(counts[mask] == 1)
