"""Tests for the skew statistics (intra-/inter-layer, aggregations, per-layer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.skew import (
    SkewStatistics,
    aggregate,
    collect_inter_values,
    collect_intra_values,
    inter_layer_skews,
    intra_layer_skews,
    per_layer_inter_stats,
    per_layer_intra_stats,
)


@pytest.fixture
def tiny_times() -> np.ndarray:
    """A hand-checkable 3-layer x 4-column trigger-time matrix."""
    return np.array(
        [
            [0.0, 1.0, 2.0, 3.0],
            [8.0, 9.0, 11.0, 10.0],
            [17.0, 16.0, 18.0, 19.0],
        ]
    )


class TestIntraLayerSkews:
    def test_values_with_wraparound(self, tiny_times):
        skews = intra_layer_skews(tiny_times)
        # Layer 1: |8-9|, |9-11|, |11-10|, |10-8| (cyclic wrap).
        assert np.allclose(skews[1, :], [1.0, 2.0, 1.0, 2.0])
        # Layer 0 is also computed (callers slice it off for statistics).
        assert np.allclose(skews[0, :], [1.0, 1.0, 1.0, 3.0])

    def test_mask_excludes_pairs(self, tiny_times):
        mask = np.ones_like(tiny_times, dtype=bool)
        mask[1, 2] = False
        skews = intra_layer_skews(tiny_times, mask)
        assert np.isnan(skews[1, 1]) and np.isnan(skews[1, 2])
        assert skews[1, 0] == 1.0

    def test_infinite_times_become_nan(self, tiny_times):
        times = tiny_times.copy()
        times[2, 0] = np.inf
        skews = intra_layer_skews(times)
        assert np.isnan(skews[2, 0]) and np.isnan(skews[2, 3])

    def test_mask_shape_mismatch_raises(self, tiny_times):
        with pytest.raises(ValueError):
            intra_layer_skews(tiny_times, np.ones((2, 2), dtype=bool))


class TestInterLayerSkews:
    def test_values(self, tiny_times):
        skews = inter_layer_skews(tiny_times)
        assert skews.shape == (3, 4, 2)
        assert np.all(np.isnan(skews[0]))
        # Node (1,0): lower-left (0,0)=0, lower-right (0,1)=1.
        assert skews[1, 0, 0] == pytest.approx(8.0)
        assert skews[1, 0, 1] == pytest.approx(7.0)
        # Wrap: node (1,3): lower-right is (0,0).
        assert skews[1, 3, 1] == pytest.approx(10.0)

    def test_signed_values_preserved(self):
        times = np.array([[10.0, 10.0, 10.0], [5.0, 5.0, 5.0]])
        skews = inter_layer_skews(times)
        assert np.all(skews[1, :, :] == -5.0)


class TestAggregation:
    def test_operators(self):
        values = np.arange(101, dtype=float)
        assert aggregate(values, "min") == 0.0
        assert aggregate(values, "max") == 100.0
        assert aggregate(values, "avg") == 50.0
        assert aggregate(values, "q5") == pytest.approx(5.0)
        assert aggregate(values, "q95") == pytest.approx(95.0)

    def test_ignores_nan(self):
        values = np.array([1.0, np.nan, 3.0])
        assert aggregate(values, "avg") == 2.0

    def test_empty_gives_nan(self):
        assert np.isnan(aggregate(np.array([np.nan]), "max"))

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            aggregate(np.array([1.0]), "median")

    def test_collectors_skip_layer0_and_nan(self, tiny_times):
        intra = collect_intra_values([tiny_times])
        assert intra.size == 8  # layers 1 and 2, 4 pairs each
        inter = collect_inter_values([tiny_times])
        assert inter.size == 16  # 2 layers x 4 nodes x 2 lower neighbours


class TestSkewStatistics:
    def test_from_times_row_keys(self, tiny_times):
        stats = SkewStatistics.from_times(tiny_times)
        row = stats.as_row()
        assert set(row) == {
            "intra_avg", "intra_q95", "intra_max",
            "inter_min", "inter_q5", "inter_avg", "inter_q95", "inter_max",
        }
        assert row["intra_max"] == pytest.approx(2.0)
        assert row["inter_min"] == pytest.approx(5.0)
        assert row["inter_max"] == pytest.approx(11.0)

    def test_from_runs_pools_samples(self, tiny_times):
        single = SkewStatistics.from_times(tiny_times)
        pooled = SkewStatistics.from_runs([tiny_times, tiny_times])
        assert pooled.num_runs == 2
        assert pooled.intra_avg == pytest.approx(single.intra_avg)
        assert pooled.intra_max == pytest.approx(single.intra_max)

    def test_masks_applied_per_run(self, tiny_times):
        mask = np.ones_like(tiny_times, dtype=bool)
        mask[2, 2] = False
        masked = SkewStatistics.from_runs([tiny_times], [mask])
        unmasked = SkewStatistics.from_times(tiny_times)
        assert masked.intra_max <= unmasked.intra_max


class TestPerLayerStats:
    def test_inter_stats_structure(self, medium_grid, timing, rng):
        from repro.core.pulse_solver import solve_single_pulse
        from repro.simulation.links import UniformRandomDelays

        runs = []
        for _ in range(3):
            delays = UniformRandomDelays(timing, rng)
            runs.append(
                solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays).trigger_times
            )
        stats = per_layer_inter_stats(runs, max_layer=10)
        assert list(stats["layer"]) == list(range(1, 11))
        assert np.all(stats["min"] >= timing.d_min - 1e-9)
        assert np.all(stats["max"] <= 2 * timing.d_max + 1e-9)
        assert np.all(stats["avg"] >= stats["min"] - 1e-9)
        assert np.all(stats["avg"] <= stats["max"] + 1e-9)

    def test_intra_stats_structure(self, tiny_times):
        stats = per_layer_intra_stats([tiny_times])
        assert list(stats["layer"]) == [1, 2]
        assert stats["max"][0] == pytest.approx(2.0)
        assert stats["max"][1] == pytest.approx(2.0)

    def test_requires_at_least_one_run(self):
        with pytest.raises(ValueError):
            per_layer_inter_stats([])
        with pytest.raises(ValueError):
            per_layer_intra_stats([])
