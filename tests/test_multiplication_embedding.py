"""Tests for the Section 5 extensions: frequency multiplication and embedding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.topology import HexGrid
from repro.embedding.doubling import build_doubling_layout
from repro.embedding.planar import FlattenedEmbedding, planar_wire_length_stats
from repro.multiplication.fastclock import (
    FrequencyMultiplier,
    MultiplierConfig,
    fast_clock_skew_bound,
    measure_fast_clock_skew,
)
from repro.multiplication.oscillator import StartStopOscillator


class TestOscillator:
    def test_tick_times(self):
        oscillator = StartStopOscillator(nominal_period=2.0, drift=1.0)
        assert np.allclose(oscillator.ticks(10.0, 3), [12.0, 14.0, 16.0])

    def test_drift_stretches_period(self):
        oscillator = StartStopOscillator(nominal_period=2.0, drift=1.05)
        assert oscillator.period == pytest.approx(2.1)

    def test_ticks_within_window(self):
        oscillator = StartStopOscillator(nominal_period=2.0)
        assert len(oscillator.ticks_within(0.0, 7.0)) == 3
        assert len(oscillator.ticks_within(0.0, 0.5)) == 0

    def test_random_drift_within_theta(self, rng):
        for _ in range(20):
            oscillator = StartStopOscillator.with_random_drift(1.0, theta=1.05, rng=rng)
            assert 1.0 <= oscillator.drift <= 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            StartStopOscillator(nominal_period=0.0)
        with pytest.raises(ValueError):
            StartStopOscillator(nominal_period=1.0, drift=0.9)
        with pytest.raises(ValueError):
            StartStopOscillator(nominal_period=1.0).ticks(0.0, -1)


class TestFrequencyMultiplication:
    def test_config_window(self):
        config = MultiplierConfig(multiplication_factor=8, nominal_period=2.0, theta=1.05)
        assert config.min_window == pytest.approx(8 * 2.0 * 1.05)
        assert config.effective_window == config.min_window
        with pytest.raises(ValueError):
            MultiplierConfig(multiplication_factor=8, nominal_period=2.0, theta=1.05, window=10.0)

    def test_skew_bound_formula(self):
        config = MultiplierConfig(multiplication_factor=4, nominal_period=2.0, theta=1.05)
        assert fast_clock_skew_bound(3.0, config) == pytest.approx(3.0 + 0.05 * config.min_window)
        with pytest.raises(ValueError):
            fast_clock_skew_bound(-1.0, config)

    def test_measured_skew_respects_bound(self, timing, rng):
        grid = HexGrid(layers=10, width=8)
        from repro.clocksource.scenarios import scenario_layer0_times
        from repro.core.pulse_solver import solve_single_pulse
        from repro.simulation.links import UniformRandomDelays

        layer0 = scenario_layer0_times("i", grid.width, timing, rng=rng)
        solution = solve_single_pulse(grid, layer0, UniformRandomDelays(timing, rng))
        config = MultiplierConfig(multiplication_factor=4, nominal_period=1.0, theta=1.05)
        multiplier = FrequencyMultiplier(grid, config, rng=rng)
        measured_max, measured_avg = measure_fast_clock_skew(
            grid, solution.trigger_times, multiplier
        )
        # HEX neighbour skew of this run:
        from repro.analysis.skew import inter_layer_skews, intra_layer_skews

        intra = intra_layer_skews(solution.trigger_times)
        inter = np.abs(inter_layer_skews(solution.trigger_times))
        hex_skew = float(max(np.nanmax(intra), np.nanmax(inter)))
        assert measured_avg <= measured_max
        assert measured_max <= fast_clock_skew_bound(hex_skew, config) + 1e-9

    def test_fast_ticks_shape_and_nan_handling(self, timing, rng):
        grid = HexGrid(layers=4, width=4)
        config = MultiplierConfig(multiplication_factor=3, nominal_period=1.0)
        multiplier = FrequencyMultiplier(grid, config, rng=rng)
        times = np.zeros(grid.shape)
        times[2, 1] = np.nan
        ticks = multiplier.fast_ticks_from_matrix(times)
        assert ticks.shape == (5, 4, 3)
        assert np.all(np.isnan(ticks[2, 1, :]))
        with pytest.raises(ValueError):
            multiplier.fast_ticks_from_matrix(np.zeros((2, 2)))


class TestPlanarEmbedding:
    def test_link_lengths_are_bounded_by_a_few_pitches(self, medium_grid):
        embedding = FlattenedEmbedding(medium_grid)
        stats = planar_wire_length_stats(embedding)
        assert stats["max_link_length"] <= 3.0
        assert stats["min_link_length"] > 0.0
        assert stats["length_ratio"] < 10.0

    def test_positions_distinguish_halves(self, medium_grid):
        embedding = FlattenedEmbedding(medium_grid)
        assert not embedding.is_back_half(0)
        assert embedding.is_back_half(medium_grid.width - 1)
        front = embedding.position((3, 0))
        back = embedding.position((3, medium_grid.width - 1))
        # Column W-1 folds back under column 0: physically close.
        assert abs(front[0] - back[0]) <= embedding.fold_offset + 1e-9

    def test_cross_half_pairs_are_physically_close_but_grid_distant(self, medium_grid):
        embedding = FlattenedEmbedding(medium_grid)
        pairs = embedding.closest_cross_half_pairs(top_k=3)
        assert len(pairs) == 3
        for _front, _back, distance, hops in pairs:
            assert distance <= 1.0
            assert hops >= 1
        # The interesting case: some physically adjacent pair is >= 2 grid hops apart.
        assert max(hops for *_rest, hops in pairs) >= 2

    def test_validation(self, medium_grid):
        with pytest.raises(ValueError):
            FlattenedEmbedding(medium_grid, pitch=0.0)
        with pytest.raises(ValueError):
            FlattenedEmbedding(medium_grid, fold_offset=-1.0)


class TestDoublingLayout:
    def test_ring_sizes_double_at_doubling_rings(self):
        layout = build_doubling_layout(num_rings=8, initial_ring_size=4)
        for ring in range(1, layout.num_rings):
            ratio = layout.ring_sizes[ring] / layout.ring_sizes[ring - 1]
            if ring in layout.doubling_rings:
                assert ratio == 2
            else:
                assert ratio == 1
        assert layout.doubling_rings  # doubling does happen

    def test_doubling_becomes_less_frequent(self):
        """Fig. 21: doubling layers become less frequent away from the centre."""
        layout = build_doubling_layout(num_rings=16, initial_ring_size=4)
        gaps = np.diff(layout.doubling_rings)
        assert len(gaps) >= 1
        assert gaps[-1] >= gaps[0]

    def test_link_structure_counts(self):
        layout = build_doubling_layout(num_rings=5, initial_ring_size=4)
        # Every node of ring r (r < last) has exactly two out-links to ring r+1.
        inter_ring = [
            (s, d) for (s, d) in layout.links if d[0] == s[0] + 1
        ]
        expected = 2 * sum(layout.ring_sizes[:-1])
        assert len(inter_ring) == expected

    def test_wire_lengths_stay_nearly_uniform(self):
        layout = build_doubling_layout(num_rings=12, initial_ring_size=4)
        stats = layout.wire_length_stats()
        assert stats["length_ratio"] < 4.0
        assert stats["min_link_length"] > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_doubling_layout(num_rings=1)
        with pytest.raises(ValueError):
            build_doubling_layout(num_rings=3, initial_ring_size=2)
        with pytest.raises(ValueError):
            build_doubling_layout(num_rings=3, target_pitch=0.0)
