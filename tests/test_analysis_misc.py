"""Tests for histograms, traces and fault-locality analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histograms import cumulative_histogram, skew_histograms, tail_fraction
from repro.analysis.locality import excluded_nodes, exclusion_mask, inclusion_mask, skew_vs_distance
from repro.analysis.traces import layer_series, load_trace, save_trace, wave_rows
from repro.core.pulse_solver import solve_single_pulse
from repro.faults.models import FaultModel, NodeFault
from repro.simulation.links import UniformRandomDelays


class TestHistograms:
    def test_counts_and_edges(self):
        values = np.array([0.1, 0.2, 0.6, 1.4, 1.6])
        histogram = cumulative_histogram(values, bin_width=0.5)
        assert histogram.total == 5
        assert histogram.edges[0] <= 0.1
        assert histogram.edges[-1] >= 1.6
        assert histogram.counts.sum() == 5

    def test_normalized_and_cumulative(self):
        histogram = cumulative_histogram(np.array([0.1, 0.1, 0.9]), bin_width=0.5)
        assert histogram.normalized().sum() == pytest.approx(1.0)
        assert histogram.cumulative()[-1] == pytest.approx(1.0)

    def test_explicit_range(self):
        histogram = cumulative_histogram(np.array([1.0, 2.0]), bin_width=1.0, value_range=(0.0, 4.0))
        assert len(histogram.counts) == 4

    def test_empty_input(self):
        histogram = cumulative_histogram(np.array([np.nan]), bin_width=0.5)
        assert histogram.total == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cumulative_histogram(np.array([1.0]), bin_width=0.0)
        with pytest.raises(ValueError):
            cumulative_histogram(np.array([1.0]), bin_width=0.5, value_range=(2.0, 1.0))

    def test_skew_histograms_keys(self, medium_grid, timing, rng):
        delays = UniformRandomDelays(timing, rng)
        times = solve_single_pulse(medium_grid, np.zeros(medium_grid.width), delays).trigger_times
        result = skew_histograms([times])
        assert set(result) == {"intra", "inter"}
        assert result["inter"].total == medium_grid.layers * medium_grid.width * 2

    def test_tail_fraction(self):
        values = np.array([0.5, 1.5, 2.5, np.nan])
        assert tail_fraction(values, 1.0) == pytest.approx(2 / 3)
        assert tail_fraction(np.array([]), 1.0) == 0.0


class TestTraces:
    def test_wave_rows_truncation(self):
        times = np.arange(12, dtype=float).reshape(4, 3)
        rows = wave_rows(times, truncate_layers=1)
        assert len(rows) == 6
        assert rows[0] == {"layer": 0.0, "column": 0.0, "time": 0.0}

    def test_wave_rows_nan_for_nonfinite(self):
        times = np.array([[0.0, np.inf], [1.0, np.nan]])
        rows = wave_rows(times)
        assert np.isnan(rows[1]["time"])
        assert np.isnan(rows[3]["time"])

    def test_layer_series(self):
        times = np.arange(12, dtype=float).reshape(4, 3)
        assert np.array_equal(layer_series(times, 2), [6.0, 7.0, 8.0])
        with pytest.raises(ValueError):
            layer_series(times, 4)

    def test_save_and_load_roundtrip(self, tmp_path):
        times = np.arange(6, dtype=float).reshape(2, 3)
        path = save_trace(tmp_path / "wave", times, metadata={"scenario": "i", "runs": 1})
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert np.array_equal(loaded["times"], times)
        assert str(loaded["meta_scenario"]) == "i"

    def test_save_run_set(self, tmp_path):
        runs = [np.zeros((2, 3)), np.ones((2, 3))]
        path = save_trace(tmp_path / "set.npz", runs)
        loaded = load_trace(path)
        assert loaded["times"].shape == (2, 2, 3)


class TestLocality:
    def test_excluded_nodes_hops(self, medium_grid):
        fault = (5, 3)
        zero_hop = excluded_nodes(medium_grid, [fault], hops=0)
        assert zero_hop == {fault}
        one_hop = excluded_nodes(medium_grid, [fault], hops=1)
        assert fault in one_hop
        assert set(medium_grid.out_neighbors(fault).values()) <= one_hop
        assert len(one_hop) == 5  # the fault plus its 4 out-neighbours
        two_hop = excluded_nodes(medium_grid, [fault], hops=2)
        assert one_hop < two_hop

    def test_exclusion_mask_matches_set(self, medium_grid):
        fault = (5, 3)
        mask = exclusion_mask(medium_grid, [fault], hops=1)
        expected = excluded_nodes(medium_grid, [fault], hops=1)
        assert mask.sum() == len(expected)
        for layer, column in expected:
            assert mask[layer, column]

    def test_inclusion_mask_combines_correctness_and_exclusion(self, medium_grid):
        model = FaultModel(medium_grid, [NodeFault.fail_silent(medium_grid, (5, 3))])
        h0 = inclusion_mask(medium_grid, model, hops=0)
        h1 = inclusion_mask(medium_grid, model, hops=1)
        assert not h0[5, 3]
        assert h1.sum() < h0.sum()
        assert np.all(inclusion_mask(medium_grid, None))

    def test_negative_hops_raise(self, medium_grid):
        with pytest.raises(ValueError):
            excluded_nodes(medium_grid, [(5, 3)], hops=-1)

    def test_skew_vs_distance_profile_decays(self, medium_grid, timing, rng):
        """Fault effects should be strongest near the fault (fault locality)."""
        from repro.faults.models import LinkBehavior

        fault = (5, 4)
        behaviors = {
            dest: LinkBehavior.CONSTANT_ZERO
            for dest in medium_grid.out_neighbors(fault).values()
        }
        model = FaultModel(medium_grid, [NodeFault.byzantine(medium_grid, fault, behaviors=behaviors)])
        delays = UniformRandomDelays(timing, rng)
        times = solve_single_pulse(
            medium_grid, np.zeros(medium_grid.width), delays, model
        ).trigger_times
        profile = skew_vs_distance(medium_grid, times, model, max_distance=4)
        assert set(profile) == {0, 1, 2, 3, 4}
        near = profile[1]
        far = max(v for k, v in profile.items() if k >= 3 and np.isfinite(v))
        assert near >= far - 1e-9

    def test_skew_vs_distance_requires_fault(self, medium_grid):
        with pytest.raises(ValueError):
            skew_vs_distance(medium_grid, np.zeros(medium_grid.shape), FaultModel.fault_free(medium_grid))
