"""Tests for the analytic skew bounds of Section 3."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bounds import (
    corollary1_intra_layer_bound,
    lemma3_skew_potential_bound,
    lemma4_intra_layer_bound,
    lemma5_pulse_skew_bound,
    lemma5_triggering_window,
    paper_quoted_theorem1_value,
    skew_potential,
    stable_skew_choice,
    theorem1_inter_layer_bounds,
    theorem1_intra_layer_bound,
    theorem1_uniform_bound,
    theorem2_stabilization_pulses,
)
from repro.core.parameters import TimingConfig


class TestSkewPotential:
    def test_zero_for_identical_times(self):
        assert skew_potential(np.zeros(8), d_min=7.0) == 0.0

    def test_zero_for_small_spread(self):
        # All times within d- of each other and adjacent -> potential 0.
        times = np.array([0.0, 1.0, 2.0, 1.0, 0.5])
        assert skew_potential(times, d_min=7.0) == 0.0

    def test_positive_when_neighbours_exceed_dmin(self):
        times = np.array([0.0, 10.0, 0.0, 0.0, 0.0])
        # Columns 1 and 2 are adjacent (distance 1): 10 - 0 - 7 = 3.
        assert skew_potential(times, d_min=7.0) == pytest.approx(3.0)

    def test_uses_cyclic_distance(self):
        # The large gap is between the first and the last column, which are
        # cyclically adjacent.
        times = np.array([10.0, 0.0, 0.0, 0.0, 0.0])
        assert skew_potential(times, d_min=7.0) == pytest.approx(3.0)

    def test_ramp_at_dmin_slope_has_zero_potential_without_wrap(self):
        # A ramp with slope exactly d- per column has zero potential except for
        # the cyclic wrap between last and first column.
        d_min = 7.0
        times = np.arange(4) * d_min
        # pairs within the ramp contribute 0; the wrap pair (3,0) contributes
        # 3*7 - 1*7 = 14.
        assert skew_potential(times, d_min=d_min) == pytest.approx(14.0)

    def test_ignores_nan_entries(self):
        times = np.array([0.0, np.nan, 20.0, 0.0])
        value = skew_potential(times, d_min=7.0)
        assert np.isfinite(value) and value > 0

    def test_all_nan_gives_zero(self):
        assert skew_potential(np.full(5, np.nan), d_min=7.0) == 0.0

    def test_scenario_skew_potentials_match_paper(self, timing):
        """The paper states Delta_0 = 0 for (i)/(ii), ~eps for (iii), ~W eps/2 for (iv)."""
        from repro.clocksource.scenarios import scenario_layer0_times

        width = 20
        zero = scenario_layer0_times("i", width, timing)
        assert skew_potential(zero, timing.d_min) == 0.0
        dmin = scenario_layer0_times("ii", width, timing, seed=3)
        assert skew_potential(dmin, timing.d_min) == 0.0
        dmax = scenario_layer0_times("iii", width, timing, seed=3)
        assert 0.0 <= skew_potential(dmax, timing.d_min) <= timing.epsilon + 1e-9
        ramp = scenario_layer0_times("iv", width, timing)
        expected = width * timing.epsilon / 2  # paper: ~ 10.36 ns
        assert skew_potential(ramp, timing.d_min) == pytest.approx(expected, rel=0.05)


class TestLemma3:
    def test_value(self, timing):
        assert lemma3_skew_potential_bound(timing, 20) == pytest.approx(2 * 18 * timing.epsilon)

    def test_requires_width_above_two(self, timing):
        with pytest.raises(ValueError):
            lemma3_skew_potential_bound(timing, 2)


class TestLemma4:
    def test_formula(self, timing):
        # d+ + ceil(l eps / d+) eps + Delta_0
        bound = lemma4_intra_layer_bound(timing, layer=10, base_skew_potential=2.0)
        expected = timing.d_max + math.ceil(10 * timing.epsilon / timing.d_max) * timing.epsilon + 2.0
        assert bound == pytest.approx(expected)

    def test_monotone_in_layer_and_potential(self, timing):
        assert lemma4_intra_layer_bound(timing, 30) >= lemma4_intra_layer_bound(timing, 5)
        assert lemma4_intra_layer_bound(timing, 10, base_skew_potential=5.0) > lemma4_intra_layer_bound(
            timing, 10, base_skew_potential=0.0
        )

    def test_respects_base_layer(self, timing):
        assert lemma4_intra_layer_bound(timing, 20, base_layer=15) == pytest.approx(
            lemma4_intra_layer_bound(timing, 5, base_layer=0)
        )

    def test_validation(self, timing):
        with pytest.raises(ValueError):
            lemma4_intra_layer_bound(timing, layer=3, base_layer=3)
        with pytest.raises(ValueError):
            lemma4_intra_layer_bound(timing, layer=3, base_skew_potential=-1.0)


class TestCorollary1AndTheorem1:
    def test_theorem1_uniform_value_for_paper_parameters(self, timing):
        # d+ + ceil(W eps / d+) eps = 8.197 + 3 * 1.036 = 11.305
        assert theorem1_uniform_bound(timing, 20) == pytest.approx(11.305, abs=1e-3)

    def test_paper_quoted_value(self, timing):
        # 2 d+ + 2 W eps^2 / d+ = 21.63 (the number quoted in Section 4.2)
        assert paper_quoted_theorem1_value(timing, 20) == pytest.approx(21.63, abs=0.01)

    def test_corollary1_reduces_to_uniform_bound_for_zero_potential(self, timing):
        value = corollary1_intra_layer_bound(timing, 20, skew_potential_w_below=0.0)
        assert value >= theorem1_uniform_bound(timing, 20)

    def test_theorem1_piecewise_structure(self, timing):
        width = 20
        # Zero layer-0 potential: uniform bound everywhere.
        assert theorem1_intra_layer_bound(timing, width, layer=1) == pytest.approx(
            theorem1_uniform_bound(timing, width)
        )
        # Non-zero potential: low layers get the Lemma 4 bound including Delta_0 ...
        low = theorem1_intra_layer_bound(timing, width, layer=5, layer0_skew_potential=10.0)
        assert low == pytest.approx(lemma4_intra_layer_bound(timing, 5, base_skew_potential=10.0))
        # ... and high layers forget it.
        high = theorem1_intra_layer_bound(timing, width, layer=2 * width - 2, layer0_skew_potential=10.0)
        assert high == pytest.approx(theorem1_uniform_bound(timing, width))
        assert high < low

    def test_theorem1_requires_constraint(self):
        loose = TimingConfig(d_min=4.0, d_max=8.0)
        with pytest.raises(ValueError):
            theorem1_intra_layer_bound(loose, 10, layer=3)
        # ... unless explicitly disabled.
        value = theorem1_intra_layer_bound(loose, 10, layer=3, require_constraint=False)
        assert value > 0

    def test_inter_layer_bounds(self, timing):
        low, high = theorem1_inter_layer_bounds(timing, sigma_previous_layer=21.63)
        assert low == pytest.approx(-14.47, abs=0.01)
        assert high == pytest.approx(29.83, abs=0.01)
        with pytest.raises(ValueError):
            theorem1_inter_layer_bounds(timing, -1.0)

    def test_theorem1_layer_validation(self, timing):
        with pytest.raises(ValueError):
            theorem1_intra_layer_bound(timing, 20, layer=0)


class TestLemma5:
    def test_pulse_skew_bound(self, timing):
        bound = lemma5_pulse_skew_bound(timing, layers=50, num_faults=3, layer0_spread=5.0)
        assert bound == pytest.approx(5.0 + 50 * timing.epsilon + 3 * timing.d_max)

    def test_triggering_window(self, timing):
        low, high = lemma5_triggering_window(timing, layer=10, num_faulty_layers_below=2, t_min=0.0, t_max=4.0)
        assert low == pytest.approx(10 * timing.d_min)
        assert high == pytest.approx(4.0 + 12 * timing.d_max)

    def test_validation(self, timing):
        with pytest.raises(ValueError):
            lemma5_pulse_skew_bound(timing, layers=0, num_faults=0)
        with pytest.raises(ValueError):
            lemma5_pulse_skew_bound(timing, layers=10, num_faults=-1)
        with pytest.raises(ValueError):
            lemma5_triggering_window(timing, layer=1, num_faulty_layers_below=0, t_min=5.0, t_max=1.0)


class TestTheorem2AndStabilizationChoices:
    def test_theorem2(self):
        assert theorem2_stabilization_pulses(0) == 1
        assert theorem2_stabilization_pulses(50) == 51
        with pytest.raises(ValueError):
            theorem2_stabilization_pulses(-1)

    def test_stable_skew_choices(self, timing):
        # C = 0: per-layer Lemma 5 bound; C in {1,2,3}: (4 - C) d+.
        c0 = stable_skew_choice(0, timing, layers=50, layer=10, num_faults=2, layer0_spread=3.0)
        assert c0 == pytest.approx(3.0 + 10 * timing.epsilon + 2 * timing.d_max)
        assert stable_skew_choice(1, timing, 50, 10, 2) == pytest.approx(3 * timing.d_max)
        assert stable_skew_choice(2, timing, 50, 10, 2) == pytest.approx(2 * timing.d_max)
        assert stable_skew_choice(3, timing, 50, 10, 2) == pytest.approx(timing.d_max)

    def test_stable_skew_choice_validation(self, timing):
        with pytest.raises(ValueError):
            stable_skew_choice(4, timing, 50, 10, 0)
        with pytest.raises(ValueError):
            stable_skew_choice(0, timing, 50, 60, 0)
