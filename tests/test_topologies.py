"""Tests of the pluggable topology subsystem (registry, families, threading)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.skew import inter_layer_skews, intra_layer_skews
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, RunTask, SweepSpec
from repro.cli import main
from repro.core.parameters import TimingConfig
from repro.core.topology import Direction, HexGrid
from repro.engines import RunSpec, get_engine
from repro.faults.placement import check_condition1, place_faults
from repro.simulation.links import UniformRandomDelays
from repro.topologies import (
    DegradedGrid,
    HexPatch,
    HexTorus,
    TopologyFamily,
    TopologySpec,
    available_topologies,
    build_topology,
    canonical_topology,
    condition1_fault_capacity,
    get_topology,
    register_topology,
    topology_column_wrap,
    unregister_topology,
    validate_topology,
)


# ----------------------------------------------------------------------
# registry & spec grammar
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = available_topologies()
        for name in ("cylinder", "torus", "patch", "degraded"):
            assert name in names

    def test_unknown_topology_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            get_topology("moebius")
        message = str(excinfo.value)
        assert "unknown topology 'moebius'" in message
        for name in available_topologies():
            assert name in message

    def test_register_and_unregister_custom_family(self):
        family = TopologyFamily(
            name="unit-test-family", builder=HexGrid, description="test"
        )
        try:
            register_topology(family)
            assert "unit-test-family" in available_topologies()
            assert isinstance(build_topology("unit-test-family", 3, 4), HexGrid)
        finally:
            unregister_topology("unit-test-family")
        assert "unit-test-family" not in available_topologies()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_topology(get_topology("cylinder"))
        register_topology(get_topology("cylinder"), replace=True)  # idempotent

    def test_cylinder_builds_plain_hexgrid(self):
        grid = build_topology("cylinder", 5, 6)
        assert type(grid) is HexGrid
        assert grid == HexGrid(5, 6)

    def test_spec_string_round_trip_and_default_dropping(self):
        assert canonical_topology("torus") == "torus"
        assert canonical_topology("degraded") == "degraded"
        assert canonical_topology("degraded:base=cylinder") == "degraded"
        assert canonical_topology("degraded:nodes=0,links=0") == "degraded"
        assert (
            canonical_topology("degraded:seed=7, nodes=2")
            == "degraded:nodes=2,seed=7"
        )
        spec = TopologySpec.parse("degraded:nodes=2,seed=7")
        assert TopologySpec.parse(spec.to_string()) == spec

    def test_malformed_and_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="malformed topology parameter"):
            TopologySpec.parse("degraded:nodes")
        with pytest.raises(ValueError, match="unknown parameter"):
            build_topology("degraded:holes=3", 5, 6)
        with pytest.raises(ValueError, match="non-empty"):
            TopologySpec.parse("  ")

    def test_dimension_validation_is_actionable(self):
        with pytest.raises(ValueError, match="layers >= 2"):
            validate_topology("torus", 1, 8)
        with pytest.raises(ValueError, match="width >= 4"):
            validate_topology("patch", 5, 3)
        # Degraded inherits the base family's bounds.
        with pytest.raises(ValueError, match="layers >= 2"):
            validate_topology("degraded:base=torus", 1, 8)
        with pytest.raises(ValueError, match="cannot degrade"):
            validate_topology("degraded:base=degraded", 5, 6)

    def test_column_wrap_flags(self):
        assert topology_column_wrap("cylinder")
        assert topology_column_wrap("torus")
        assert not topology_column_wrap("patch")
        assert not topology_column_wrap("degraded:base=patch,nodes=1")
        assert topology_column_wrap("degraded:nodes=1")


# ----------------------------------------------------------------------
# family structure
# ----------------------------------------------------------------------
class TestFamilies:
    @pytest.mark.parametrize(
        "spec", ["cylinder", "torus", "patch", "degraded:nodes=3,links=4,seed=9"]
    )
    def test_in_out_symmetry_and_directions(self, spec):
        grid = build_topology(spec, 5, 6)
        for node in grid.nodes():
            for direction, neighbor in grid.out_neighbors(node).items():
                assert direction.is_outgoing
                assert node in grid.in_neighbors(neighbor).values()
                assert grid.direction_between(node, neighbor).is_incoming
            for direction, neighbor in grid.in_neighbors(node).items():
                assert direction.is_incoming
                assert node in grid.out_neighbors(neighbor).values()

    def test_cached_tables_match_raw_rule(self):
        grid = HexGrid(4, 5)
        for node in grid.nodes():
            layer, column = node
            for direction in Direction:
                assert grid.neighbor(node, direction) == grid._raw_neighbor(
                    layer, column, direction
                )

    def test_torus_wraps_both_axes(self):
        torus = HexTorus(4, 5)
        assert torus.in_neighbors((0, 0))[Direction.LOWER_LEFT] == (4, 0)
        assert torus.in_neighbors((0, 0))[Direction.LOWER_RIGHT] == (4, 1)
        assert torus.out_neighbors((4, 2))[Direction.UPPER_RIGHT] == (0, 2)
        # Sources still have no intra-layer links and never listen laterally.
        assert Direction.LEFT not in torus.in_neighbors((0, 0))
        # Layer distance wraps.
        assert torus.node_distance((0, 0), (4, 0)) == 1

    def test_patch_rim_degrees(self):
        patch = HexPatch(4, 5)
        rim_right = patch.in_neighbors((2, 4))
        assert set(rim_right) == {Direction.LEFT, Direction.LOWER_LEFT}
        rim_left = patch.in_neighbors((2, 0))
        assert set(rim_left) == {
            Direction.RIGHT,
            Direction.LOWER_LEFT,
            Direction.LOWER_RIGHT,
        }
        with pytest.raises(ValueError, match="does not wrap|out of range"):
            patch.validate_node((2, 7))
        assert patch.cyclic_column_distance(0, 4) == 4
        assert not patch.column_wrap

    def test_degraded_damage_is_seed_deterministic(self):
        first = DegradedGrid(6, 6, nodes=3, links=4, seed=9)
        second = build_topology("degraded:links=4,nodes=3,seed=9", 6, 6)
        assert first == second
        assert first.punctured_nodes() == second.punctured_nodes()
        assert first.severed_links() == second.severed_links()
        other = build_topology("degraded:links=4,nodes=3,seed=10", 6, 6)
        assert first != other

    def test_degraded_structure_consistency(self):
        grid = DegradedGrid(6, 6, nodes=3, links=4, seed=9)
        punctured = set(grid.punctured_nodes())
        assert len(punctured) == 3
        assert all(node[0] > 0 for node in punctured)  # sources never punctured
        assert punctured.isdisjoint(set(grid.nodes()))
        assert punctured.isdisjoint(set(grid.forwarding_nodes()))
        mask = grid.presence_mask()
        assert int((~mask).sum()) == 3
        for node in punctured:
            assert not mask[node]
        links = set(grid.links())
        for link in grid.severed_links():
            assert link not in links
        assert grid.num_present_nodes == grid.num_nodes - 3
        assert grid.condition2_extra_hops() == 3 + 4

    def test_degraded_damage_caps_are_actionable(self):
        with pytest.raises(ValueError, match="more hole than fabric"):
            DegradedGrid(3, 4, nodes=12)
        with pytest.raises(ValueError, match="disconnects the fabric"):
            DegradedGrid(3, 4, links=1000)

    @pytest.mark.parametrize(
        "spec,dims",
        [
            ("cylinder", (4, 5)),
            ("torus", (4, 5)),
            ("torus", (2, 3)),
            ("patch", (4, 5)),
            ("patch", (3, 7)),
        ],
    )
    def test_hop_distance_matches_networkx(self, spec, dims):
        import networkx as nx

        grid = build_topology(spec, *dims)
        lengths = dict(nx.all_pairs_shortest_path_length(grid.to_undirected_networkx()))
        for a in grid.nodes():
            for b in grid.nodes():
                assert grid.hop_distance(a, b) == lengths[a][b], (a, b)

    def test_pulse_reachable_mask_flags_guard_deadlocks(self):
        # Holes (3,1) and (3,3) leave (4,1)/(4,2) only guards referencing
        # each other: structurally silent, not merely slow.
        grid = build_topology("degraded:nodes=2,seed=1", 5, 6)
        assert grid.punctured_nodes() == [(3, 1), (3, 3)]
        reachable = grid.pulse_reachable_mask()
        assert not reachable[4, 1] and not reachable[4, 2] and not reachable[5, 1]
        assert grid.presence_mask()[4, 1]  # present but unreachable
        for spec in ("cylinder", "torus", "patch"):
            intact = build_topology(spec, 5, 6)
            assert np.array_equal(intact.pulse_reachable_mask(), intact.presence_mask())

    def test_identity_distinguishes_families(self):
        assert HexGrid(4, 5) != HexTorus(4, 5)
        assert HexTorus(4, 5) != HexPatch(4, 5)
        assert hash(HexGrid(4, 5)) != hash(HexTorus(4, 5))
        assert HexTorus(4, 5) == HexTorus(4, 5)


# ----------------------------------------------------------------------
# Condition 1 capacity & placement hardening
# ----------------------------------------------------------------------
class TestCondition1Capacity:
    @pytest.mark.parametrize("spec", ["cylinder", "torus", "patch"])
    def test_greedy_capacity_is_placeable(self, spec):
        grid = build_topology(spec, 6, 6)
        capacity = condition1_fault_capacity(grid)
        assert capacity >= 1
        placed = place_faults(grid, capacity, np.random.default_rng(0))
        assert len(placed) == capacity
        assert check_condition1(grid, placed)

    def test_placement_failure_names_capacity_and_topology(self):
        grid = HexPatch(2, 4)
        capacity = condition1_fault_capacity(grid)
        with pytest.raises(RuntimeError) as excinfo:
            place_faults(grid, 8, np.random.default_rng(0), max_attempts=5)
        message = str(excinfo.value)
        assert "HexPatch" in message
        assert f"hosts {capacity} fault(s)" in message

    def test_placement_respects_degraded_holes(self):
        grid = DegradedGrid(6, 6, nodes=4, seed=3)
        placed = place_faults(grid, 2, np.random.default_rng(1))
        assert set(placed).isdisjoint(set(grid.punctured_nodes()))
        assert check_condition1(grid, placed)


# ----------------------------------------------------------------------
# RunSpec integration & content-key stability
# ----------------------------------------------------------------------
class TestRunSpecIntegration:
    def test_default_topology_omitted_from_canonical_json(self):
        spec = RunSpec(kind="single_pulse", layers=6, width=5, scenario="iii", entropy=42)
        assert "topology" not in spec.to_json_dict()
        explicit = RunSpec(
            kind="single_pulse", layers=6, width=5, scenario="iii", entropy=42,
            topology="cylinder",
        )
        assert spec.key() == explicit.key()
        # Pinned pre-topology content key: if this changes, every cached
        # cylinder record in existing stores is orphaned.
        assert spec.key() == "73f0a907effa500effaa0071ed73a57f"

    def test_topology_spec_round_trip(self):
        spec = RunSpec(
            kind="single_pulse", layers=6, width=6, scenario="iii", entropy=7,
            topology="degraded:seed=3,nodes=2",
        )
        assert spec.topology == "degraded:nodes=2,seed=3"  # canonicalised
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.key() == spec.key()
        assert json.loads(spec.to_json())["topology"] == "degraded:nodes=2,seed=3"

    def test_invalid_pairings_fail_at_spec_construction(self):
        with pytest.raises(ValueError, match="layers >= 2"):
            RunSpec(layers=1, width=8, topology="torus")
        with pytest.raises(ValueError, match="unknown topology"):
            RunSpec(topology="moebius")

    def test_make_grid_builds_family(self):
        assert isinstance(RunSpec(topology="torus", layers=4, width=5).make_grid(), HexTorus)
        assert RunSpec(layers=4, width=5).topology_family() == "cylinder"

    def test_clocktree_rejects_non_cylinder(self):
        spec = RunSpec(kind="single_pulse", layers=6, width=5, topology="torus", entropy=1)
        with pytest.raises(ValueError, match="does not support topology"):
            get_engine("clocktree").run(spec)

    @pytest.mark.parametrize("engine", ["solver", "des"])
    @pytest.mark.parametrize(
        "topology", ["torus", "patch", "degraded:nodes=2,links=2,seed=5"]
    )
    def test_hex_engines_run_all_families(self, engine, topology):
        spec = RunSpec(
            kind="single_pulse", layers=6, width=6, scenario="iii", entropy=11,
            topology=topology,
        )
        result = get_engine(engine).run(spec)
        assert result.trigger_times.shape == (7, 6)
        # Structurally absent nodes carry nan and are masked out.
        grid = spec.make_grid()
        presence = grid.presence_mask()
        assert np.all(np.isnan(result.trigger_times[~presence]))
        assert not result.correct_mask[~presence].any()

    def test_run_task_round_trip_keeps_topology(self):
        cell = SweepSpec(layers=6, width=6, engine="solver", topology="torus", runs=1)
        task = CampaignSpec(name="t", seed=1, cells=(cell,)).tasks()[0]
        assert task.topology == "torus"
        assert task.to_run_spec().topology == "torus"
        assert task.to_json_dict()["topology"] == "torus"
        # Cylinder tasks keep their historical payload (no topology key).
        plain = CampaignSpec(
            name="t", seed=1, cells=(SweepSpec(layers=6, width=6, runs=1),)
        ).tasks()[0]
        assert "topology" not in plain.to_json_dict()
        assert isinstance(plain, RunTask)


# ----------------------------------------------------------------------
# solver-vs-DES agreement on the new topologies
# ----------------------------------------------------------------------
class TestSolverDesAgreementOnTopologies:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        layers=st.integers(min_value=2, max_value=5),
        width=st.integers(min_value=4, max_value=6),
        topology=st.sampled_from(["torus", "patch"]),
    )
    def test_shared_delays_agree_exactly(self, seed, layers, width, topology):
        """With one shared per-link delay model the two semantics coincide on
        the torus and the open-boundary patch, exactly as on the cylinder."""
        timing = TimingConfig.paper_defaults()
        grid = build_topology(topology, layers, width)
        rng = np.random.default_rng(seed)
        layer0 = rng.uniform(0.0, timing.d_max, size=width)
        delays = UniformRandomDelays(timing, rng)
        solver = get_engine("solver").single_pulse(
            grid, timing, layer0, rng=rng, delays=delays
        )
        des = get_engine("des").single_pulse(
            grid, timing, layer0, rng=np.random.default_rng(seed + 1), delays=delays
        )
        assert solver.all_correct_triggered() and des.all_correct_triggered()
        np.testing.assert_allclose(
            solver.trigger_times, des.trigger_times, rtol=0.0, atol=1e-9
        )


# ----------------------------------------------------------------------
# campaign sweeps over the topology axis
# ----------------------------------------------------------------------
class TestTopologyCampaigns:
    def _spec(self):
        cell = SweepSpec(
            layers=6, width=6, scenario="iii", engine="solver",
            topology=("cylinder", "torus", "patch", "degraded:nodes=2,seed=4"),
            runs=2, seed_salt=0,
        )
        return CampaignSpec(name="topo-sweep", seed=17, cells=(cell,))

    def test_axis_covers_all_topologies(self):
        result = CampaignRunner(self._spec()).run()
        seen = {record.params.get("topology", "cylinder") for record in result.records}
        assert seen == {"cylinder", "torus", "patch", "degraded:nodes=2,seed=4"}

    def test_serial_parallel_resumed_bit_identity(self, tmp_path):
        spec = self._spec()
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        store = str(tmp_path / "store")
        CampaignRunner(spec, store=store).run()
        resumed = CampaignRunner(spec, store=store, resume=True).run()
        assert resumed.cached == spec.num_tasks and resumed.executed == 0
        lines = [record.canonical_json() for record in serial.records]
        assert lines == [record.canonical_json() for record in parallel.records]
        assert lines == [record.canonical_json() for record in resumed.records]

    def test_clocktree_topology_pairing_rejected_at_build_time(self):
        with pytest.raises(ValueError, match="does not support topology"):
            SweepSpec(engine=("solver", "clocktree"), topology=("cylinder", "torus"))
        # Cylinder-only cells and hex-engine cells stay valid.
        SweepSpec(engine=("solver", "clocktree"), topology="cylinder")
        SweepSpec(engine=("solver", "des"), topology=("cylinder", "torus"))

    def test_degenerate_dimension_pairing_rejected_at_build_time(self):
        with pytest.raises(ValueError, match="layers >= 2"):
            SweepSpec(layers=(1, 6), width=6, engine="solver", topology="torus")

    def test_cylinder_cell_payload_unchanged(self):
        cell = SweepSpec(layers=6, width=6, runs=2)
        assert "topology" not in cell.to_json_dict()
        swept = SweepSpec(layers=6, width=6, runs=2, topology=("cylinder", "torus"))
        assert swept.to_json_dict()["topology"] == ["cylinder", "torus"]
        assert SweepSpec.from_json_dict(swept.to_json_dict()) == swept

    def test_multi_pulse_stabilizes_on_all_topologies(self):
        """Stabilization analysis must be topology-aware: wrap-pair skews,
        punctured holes and guard-deadlocked nodes are excluded, and the
        sigma bounds carry the lateral-trigger margin."""
        for topology in ("cylinder", "torus", "patch", "degraded:nodes=2,seed=1"):
            cell = SweepSpec(
                layers=5, width=6, kind="multi_pulse", num_pulses=4, runs=1,
                topology=topology,
            )
            task = CampaignSpec(name="s", seed=5, cells=(cell,)).tasks()[0]
            from repro.campaign.runner import execute_task

            record = execute_task(task)
            assert np.isfinite(record.stabilization_time), topology

    def test_mixed_topology_pooling_uses_per_record_wrap(self):
        """pooled_statistics over a patch+cylinder record list must drop the
        wrap pair only for the patch records."""
        from repro.campaign.records import pooled_statistics

        result = CampaignRunner(self._spec()).run()
        by_topology = {
            record.params.get("topology", "cylinder"): record
            for record in result.records
        }
        mixed = [by_topology["patch"], by_topology["cylinder"]]
        pooled = pooled_statistics(mixed)
        # Per-record pooling == concatenation of the per-topology sample sets;
        # verify against pooling each record alone.
        alone = [pooled_statistics([record]) for record in mixed]
        assert pooled.intra_max == pytest.approx(
            max(stats.intra_max for stats in alone)
        )

    def test_patch_statistics_drop_wrap_pair(self):
        result = CampaignRunner(self._spec()).run()
        for record in result.records:
            if record.params.get("topology") == "patch":
                assert record.column_wrap() is False
                times = record.trigger_matrix()
                wrapped = intra_layer_skews(times, wrap=True)
                open_boundary = intra_layer_skews(times, wrap=False)
                assert np.all(np.isnan(open_boundary[:, -1]))
                assert np.isfinite(wrapped[1:, -1]).any()
                inter = inter_layer_skews(times, wrap=False)
                assert np.all(np.isnan(inter[:, -1, 1]))
                break
        else:  # pragma: no cover - sweep always contains a patch point
            pytest.fail("no patch record found")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTopologyCli:
    def test_cli_topologies_lists_families(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("cylinder", "torus", "patch", "degraded"):
            assert name in out
        assert "Condition-1 capacity" in out

    def test_cli_topologies_json(self, capsys):
        assert main(["topologies", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert set(by_name) >= {"cylinder", "torus", "patch", "degraded"}
        assert "clocktree" in by_name["cylinder"]["engines"]
        assert "clocktree" not in by_name["torus"]["engines"]
        assert by_name["torus"]["num_links"] > by_name["cylinder"]["num_links"]

    def test_cli_engines_json_reports_topologies(self, capsys):
        assert main(["engines", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["solver"]["supported_topologies"] == ["*"]
        assert by_name["clocktree"]["supported_topologies"] == ["cylinder"]

    def test_cli_sweep_rejects_bad_topology(self, capsys):
        assert main(["sweep", "--topology", "moebius", "--runs", "1"]) == 2
        assert "unknown topology" in capsys.readouterr().err

    def test_cli_topology_list_binds_params_to_preceding_spec(self):
        from repro.cli import _topology_list

        assert _topology_list("cylinder,torus") == ["cylinder", "torus"]
        assert _topology_list("cylinder,degraded:nodes=2,seed=3,patch") == [
            "cylinder",
            "degraded:nodes=2,seed=3",
            "patch",
        ]

    def test_cli_simulate_on_torus(self, capsys):
        assert (
            main(
                ["simulate", "--layers", "5", "--width", "5", "--topology", "torus",
                 "--runs", "2", "--seed", "3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "torus grid" in out
