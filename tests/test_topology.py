"""Tests for the cylindric hexagonal grid topology (Fig. 1 semantics)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.topology import TRIGGER_GUARDS, Direction, HexGrid


class TestConstruction:
    def test_dimensions(self, small_grid):
        assert small_grid.layers == 6
        assert small_grid.width == 5
        assert small_grid.shape == (7, 5)
        assert small_grid.num_nodes == 35
        assert small_grid.dimensions.num_forwarding_nodes == 30

    def test_rejects_too_few_layers(self):
        with pytest.raises(ValueError):
            HexGrid(layers=0, width=5)

    def test_rejects_too_narrow_grid(self):
        with pytest.raises(ValueError):
            HexGrid(layers=3, width=2)

    def test_equality_and_hash(self):
        assert HexGrid(3, 4) == HexGrid(3, 4)
        assert HexGrid(3, 4) != HexGrid(3, 5)
        assert hash(HexGrid(3, 4)) == hash(HexGrid(3, 4))

    def test_node_iteration_order_and_count(self, small_grid):
        nodes = list(small_grid.nodes())
        assert len(nodes) == small_grid.num_nodes
        assert nodes[0] == (0, 0)
        assert nodes[-1] == (6, 4)
        assert nodes == sorted(nodes)

    def test_forwarding_nodes_exclude_layer0(self, small_grid):
        forwarding = list(small_grid.forwarding_nodes())
        assert all(layer > 0 for layer, _ in forwarding)
        assert len(forwarding) == 30

    def test_layer_nodes(self, small_grid):
        assert small_grid.layer_nodes(2) == [(2, c) for c in range(5)]
        assert small_grid.source_nodes() == [(0, c) for c in range(5)]
        with pytest.raises(ValueError):
            small_grid.layer_nodes(7)


class TestNodeHelpers:
    def test_wrap_column(self, small_grid):
        assert small_grid.wrap_column(5) == 0
        assert small_grid.wrap_column(-1) == 4
        assert small_grid.wrap_column(12) == 2

    def test_contains(self, small_grid):
        assert small_grid.contains((0, 0))
        assert small_grid.contains((6, 9))  # column wraps
        assert not small_grid.contains((7, 0))

    def test_validate_node_wraps_column(self, small_grid):
        assert small_grid.validate_node((3, 7)) == (3, 2)
        assert small_grid.validate_node((3, -1)) == (3, 4)

    def test_validate_node_rejects_bad_layer(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.validate_node((7, 0))
        with pytest.raises(ValueError):
            small_grid.validate_node((-1, 0))

    def test_node_index_roundtrip(self, small_grid):
        for node in small_grid.nodes():
            assert small_grid.node_from_index(small_grid.node_index(node)) == node
        with pytest.raises(ValueError):
            small_grid.node_from_index(small_grid.num_nodes)


class TestNeighbors:
    def test_paper_neighbour_definitions(self, small_grid):
        # Fig. 1: node (l, i) has lower-left (l-1, i), lower-right (l-1, i+1),
        # upper-left (l+1, i-1), upper-right (l+1, i).
        node = (3, 2)
        assert small_grid.neighbor(node, Direction.LEFT) == (3, 1)
        assert small_grid.neighbor(node, Direction.RIGHT) == (3, 3)
        assert small_grid.neighbor(node, Direction.LOWER_LEFT) == (2, 2)
        assert small_grid.neighbor(node, Direction.LOWER_RIGHT) == (2, 3)
        assert small_grid.neighbor(node, Direction.UPPER_LEFT) == (4, 1)
        assert small_grid.neighbor(node, Direction.UPPER_RIGHT) == (4, 2)

    def test_column_wraparound(self, small_grid):
        assert small_grid.neighbor((2, 0), Direction.LEFT) == (2, 4)
        assert small_grid.neighbor((2, 4), Direction.RIGHT) == (2, 0)
        assert small_grid.neighbor((2, 4), Direction.LOWER_RIGHT) == (1, 0)
        assert small_grid.neighbor((2, 0), Direction.UPPER_LEFT) == (3, 4)

    def test_layer0_has_no_in_neighbours(self, small_grid):
        assert small_grid.in_neighbors((0, 2)) == {}
        assert small_grid.neighbor((0, 2), Direction.LEFT) is None
        assert small_grid.neighbor((0, 2), Direction.LOWER_LEFT) is None

    def test_layer0_out_neighbours_are_upper_only(self, small_grid):
        out = small_grid.out_neighbors((0, 2))
        assert set(out) == {Direction.UPPER_LEFT, Direction.UPPER_RIGHT}
        assert out[Direction.UPPER_RIGHT] == (1, 2)

    def test_top_layer_has_no_upper_neighbours(self, small_grid):
        out = small_grid.out_neighbors((6, 1))
        assert set(out) == {Direction.LEFT, Direction.RIGHT}
        assert small_grid.neighbor((6, 1), Direction.UPPER_LEFT) is None

    def test_interior_node_has_four_in_and_four_out(self, small_grid):
        assert len(small_grid.in_neighbors((3, 2))) == 4
        assert len(small_grid.out_neighbors((3, 2))) == 4
        assert len(small_grid.all_neighbors((3, 2))) == 6

    def test_neighbour_relation_is_consistent(self, small_grid):
        # If b is in direction d of a, then a is in direction d.opposite of b.
        for node in small_grid.nodes():
            for direction, neighbor in small_grid.all_neighbors(node).items():
                assert small_grid.neighbor(neighbor, direction.opposite) == node

    def test_direction_between(self, small_grid):
        assert small_grid.direction_between((3, 1), (3, 2)) == Direction.LEFT
        assert small_grid.direction_between((2, 3), (3, 2)) == Direction.LOWER_RIGHT
        with pytest.raises(ValueError):
            small_grid.direction_between((1, 1), (4, 4))

    def test_upper_neighbours_reciprocate_lower(self, small_grid):
        node = (2, 3)
        upper_right = small_grid.neighbor(node, Direction.UPPER_RIGHT)
        assert small_grid.neighbor(upper_right, Direction.LOWER_LEFT) == node
        upper_left = small_grid.neighbor(node, Direction.UPPER_LEFT)
        assert small_grid.neighbor(upper_left, Direction.LOWER_RIGHT) == node


class TestDirections:
    def test_incoming_outgoing_classification(self):
        assert Direction.LEFT.is_incoming and Direction.LEFT.is_outgoing
        assert Direction.LOWER_LEFT.is_incoming and not Direction.LOWER_LEFT.is_outgoing
        assert Direction.UPPER_RIGHT.is_outgoing and not Direction.UPPER_RIGHT.is_incoming

    def test_opposites_are_involutions(self):
        for direction in Direction:
            assert direction.opposite.opposite is direction

    def test_trigger_guards_match_algorithm1(self):
        assert TRIGGER_GUARDS == (
            (Direction.LEFT, Direction.LOWER_LEFT),
            (Direction.LOWER_LEFT, Direction.LOWER_RIGHT),
            (Direction.LOWER_RIGHT, Direction.RIGHT),
        )


class TestLinks:
    def test_link_count(self, small_grid):
        # Every forwarding node has 4 outgoing links except the top layer (2);
        # every layer-0 node has 2 outgoing links.
        expected = 5 * 2 + 5 * 5 * 4 + 5 * 2  # sources + layers 1..5 + top layer
        # layers 1..6 are forwarding; top layer (6) has only 2 outgoing links.
        expected = 5 * 2 + 5 * 5 * 4 + 5 * 2
        assert small_grid.num_links() == expected

    def test_incoming_and_outgoing_links_are_consistent(self, small_grid):
        all_links = set(small_grid.links())
        for node in small_grid.nodes():
            for link in small_grid.outgoing_links(node):
                assert link in all_links
            for source, destination in small_grid.incoming_links(node):
                assert destination == node
                assert (source, destination) in all_links

    def test_every_forwarding_node_has_four_incoming_links(self, small_grid):
        for node in small_grid.forwarding_nodes():
            assert len(small_grid.incoming_links(node)) == 4


class TestDistances:
    def test_cyclic_column_distance(self, small_grid):
        assert small_grid.cyclic_column_distance(0, 4) == 1
        assert small_grid.cyclic_column_distance(0, 2) == 2
        assert small_grid.cyclic_column_distance(3, 3) == 0

    def test_hop_distance_to_self_is_zero(self, small_grid):
        assert small_grid.hop_distance((3, 2), (3, 2)) == 0

    def test_hop_distance_to_neighbours_is_one(self, small_grid):
        node = (3, 2)
        for neighbor in small_grid.all_neighbors(node).values():
            assert small_grid.hop_distance(node, neighbor) == 1

    def test_hop_distance_is_symmetric(self, small_grid):
        pairs = [((1, 0), (4, 3)), ((0, 2), (6, 2)), ((2, 4), (5, 1))]
        for a, b in pairs:
            assert small_grid.hop_distance(a, b) == small_grid.hop_distance(b, a)

    def test_hop_distance_matches_networkx_shortest_path(self, small_grid):
        graph = small_grid.to_undirected_networkx()
        for a, b in [((1, 0), (4, 3)), ((0, 0), (6, 4)), ((2, 1), (2, 3)), ((5, 4), (1, 2))]:
            expected = nx.shortest_path_length(graph, a, b)
            assert small_grid.hop_distance(a, b) == expected


class TestNetworkxExport:
    def test_node_and_edge_counts(self, small_grid):
        graph = small_grid.to_networkx()
        assert graph.number_of_nodes() == small_grid.num_nodes
        assert graph.number_of_edges() == small_grid.num_links()

    def test_edge_attributes_carry_direction(self, small_grid):
        graph = small_grid.to_networkx()
        assert graph.edges[(2, 1), (3, 1)]["direction"] == Direction.UPPER_RIGHT.value

    def test_graph_metadata(self, small_grid):
        graph = small_grid.to_networkx()
        assert graph.graph["layers"] == 6
        assert graph.graph["width"] == 5

    def test_undirected_graph_is_connected(self, small_grid):
        assert nx.is_connected(small_grid.to_undirected_networkx())


class TestLazyNeighborTables:
    """The neighbour tables build on first accessor use, not at construction.

    The dense array engine never consults the tables (its plans come from
    vectorized boundary rules), so construction must stay O(1) -- that is
    what keeps million-node grids instant to build.
    """

    def test_construction_defers_table_build(self):
        grid = HexGrid(layers=4, width=4)
        assert grid._all_tables is None
        # First accessor builds them once; results match the raw rule.
        neighbors = grid.in_neighbors((1, 0))
        assert grid._all_tables is not None
        assert neighbors[Direction.LOWER_LEFT] == (0, 0)
        assert list(neighbors) == [
            Direction.LEFT,
            Direction.RIGHT,
            Direction.LOWER_LEFT,
            Direction.LOWER_RIGHT,
        ]

    def test_million_node_grid_constructs_instantly(self):
        import time

        start = time.perf_counter()
        grid = HexGrid(layers=1000, width=1000)
        elapsed = time.perf_counter() - start
        assert grid.num_nodes == 1001000
        assert elapsed < 1.0
        assert grid._all_tables is None
