"""Tests for the campaign orchestration subsystem (``repro.campaign``).

Covers the acceptance surface of the subsystem: spec expansion and seed
derivation determinism, serial-vs-parallel record equality, cache
resume-after-interrupt, the experiment adapters' seed parity with the
historical hand-rolled loops, and the CLI regressions (``--runs 0``, the
``sweep`` subcommand round-trip).
"""

from __future__ import annotations

import argparse
import json

import numpy as np
import pytest

import repro.campaign.runner as campaign_runner
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    RunRecord,
    SweepSpec,
    execute_task,
    pooled_statistics,
)
from repro.campaign.progress import ProgressReporter, format_duration
from repro.cli import _experiment_config, main
from repro.clocksource.scenarios import Scenario, scenario_layer0_times
from repro.core.pulse_solver import solve_single_pulse
from repro.experiments.config import ExperimentConfig
from repro.experiments.single_pulse import run_scenario_set
from repro.faults.models import FaultType
from repro.faults.placement import build_fault_model
from repro.simulation.links import UniformRandomDelays


def small_spec(runs: int = 3, **cell_kwargs) -> CampaignSpec:
    """A fast two-point campaign on a small grid."""
    defaults = dict(
        layers=8, width=6, scenario=("i", "iii"), num_faults=1, runs=runs, seed_salt=11
    )
    defaults.update(cell_kwargs)
    return CampaignSpec(name="test", seed=99, cells=(SweepSpec(**defaults),))


class TestSpecExpansion:
    def test_cartesian_point_count_and_salts(self):
        cell = SweepSpec(
            layers=(8, 10), width=6, scenario=("i", "iv"), num_faults=(0, 1, 2),
            runs=2, seed_salt=40,
        )
        assert cell.num_points == 2 * 2 * 3
        assert cell.num_tasks == 24
        points = list(cell.points())
        assert [p.salt for p in points] == [40 + i for i in range(12)]
        # AXES order: layers outermost, num_faults innermost of the varied axes.
        assert (points[0].layers, points[0].scenario, points[0].num_faults) == (8, "zero", 0)
        assert (points[3].layers, points[3].scenario, points[3].num_faults) == (8, "ramp", 0)
        assert points[-1].layers == 10

    def test_task_seed_derivation_matches_spawn_rngs(self):
        spec = small_spec(runs=4)
        tasks = [t for t in spec.tasks() if t.point_index == 1]
        config = ExperimentConfig(layers=8, width=6, runs=4, seed=99)
        reference = config.spawn_rngs(4, salt=11 + 1)
        for task, expected in zip(tasks, reference):
            assert task.entropy == 99 + 11 + 1
            assert task.rng().random(5) == pytest.approx(expected.random(5))

    def test_scenario_and_enum_canonicalization(self):
        cell = SweepSpec(scenario=("(iii)", "ramp"), fault_type=FaultType.FAIL_SILENT)
        assert cell.scenario == ("uniform_dmax", "ramp")
        assert cell.fault_type == ("fail_silent",)

    def test_fault_free_tasks_have_no_fault_type(self):
        spec = small_spec(num_faults=(0, 2))
        kinds = {(t.num_faults, t.fault_type) for t in spec.tasks()}
        assert (0, None) in kinds
        assert (2, "byzantine") in kinds

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SweepSpec(runs=0)
        with pytest.raises(ValueError):
            SweepSpec(engine="vhdl")
        with pytest.raises(ValueError):
            SweepSpec(kind="chaos")
        with pytest.raises(ValueError):
            SweepSpec(num_faults=-1)
        with pytest.raises(ValueError):
            CampaignSpec(name="", cells=(SweepSpec(),))

    def test_json_round_trip_preserves_key(self):
        spec = small_spec(fixed_fault_positions=((2, 3),), num_faults=1)
        payload = json.loads(json.dumps(spec.to_json_dict()))
        clone = CampaignSpec.from_json_dict(payload)
        assert clone == spec
        assert clone.key() == spec.key()

    def test_task_key_ignores_presentation_coordinates(self):
        spec = small_spec()
        task = spec.tasks()[0]
        import dataclasses

        moved = dataclasses.replace(task, cell_index=7, label="elsewhere")
        assert moved.key() == task.key()
        different = dataclasses.replace(task, entropy=task.entropy + 1)
        assert different.key() != task.key()


class TestExecutionDeterminism:
    def test_same_spec_yields_identical_records(self):
        spec = small_spec()
        first = CampaignRunner(spec).run()
        second = CampaignRunner(spec).run()
        assert [r.canonical_json() for r in first.records] == [
            r.canonical_json() for r in second.records
        ]

    def test_serial_and_parallel_records_identical(self):
        spec = small_spec(runs=4)
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=3).run()
        assert [r.canonical_json() for r in serial.records] == [
            r.canonical_json() for r in parallel.records
        ]

    def test_execute_task_matches_hand_rolled_run(self):
        """The executor reproduces the historical per-run body draw for draw."""
        config = ExperimentConfig(layers=8, width=6, runs=1, seed=99)
        spec = small_spec(runs=1, scenario="iii", num_faults=2)
        task = spec.tasks()[0]
        record = execute_task(task)

        grid = config.make_grid()
        rng = config.spawn_rngs(1, salt=11)[0]
        layer0 = scenario_layer0_times(Scenario.UNIFORM_DMAX, grid.width, config.timing, rng=rng)
        fault_model = build_fault_model(grid, 2, FaultType.BYZANTINE, rng)
        delays = UniformRandomDelays(config.timing, rng)
        solution = solve_single_pulse(grid, layer0, delays, fault_model=fault_model)

        assert record.faulty_nodes == tuple(fault_model.faulty_nodes())
        assert np.array_equal(record.trigger_matrix(), solution.trigger_times, equal_nan=True)
        assert record.layer0_times == pytest.approx(layer0.tolist())

    def test_multi_pulse_record_fields(self):
        spec = CampaignSpec(
            name="mp",
            seed=7,
            cells=(
                SweepSpec(
                    layers=8, width=6, scenario="i", num_faults=1, runs=2,
                    kind="multi_pulse", num_pulses=4, seed_salt=3,
                ),
            ),
        )
        result = CampaignRunner(spec).run()
        assert len(result.records) == 2
        for record in result.records:
            assert record.kind == "multi_pulse"
            assert record.total_firings > 0
            assert record.stabilization_time is not None
        times = result.point_stabilization_times(0, 0)
        assert times.shape == (2,)

    def test_keep_times_false_drops_dense_payload(self):
        spec = CampaignSpec(
            name="lean", seed=5, keep_times=False,
            cells=(SweepSpec(layers=8, width=6, runs=2),),
        )
        result = CampaignRunner(spec).run()
        record = result.records[0]
        assert record.trigger_times is None
        assert record.skew is not None  # summary row survives
        with pytest.raises(ValueError):
            record.trigger_matrix()

    def test_record_json_round_trip(self):
        spec = small_spec(runs=1)
        record = CampaignRunner(spec).run().records[0]
        clone = RunRecord.from_json_dict(json.loads(record.canonical_json()))
        assert clone.canonical_json() == record.canonical_json()
        # Infinity/NaN entries survive the round trip (never-fired / faulty).
        assert np.array_equal(clone.trigger_matrix(), record.trigger_matrix(), equal_nan=True)


class TestStoreResume:
    def test_resume_after_interrupt_skips_completed_tasks(self, tmp_path, monkeypatch):
        # batch_size=1 forces strict per-task execution through the
        # module-level execute_task hook this test monkeypatches.
        spec = small_spec(runs=3)
        store = CampaignStore(tmp_path / "cache")

        # Simulate an interrupt: execute only the first 4 tasks, then die.
        real_execute = campaign_runner.execute_task
        calls = {"n": 0}

        def dying_execute(task):
            if calls["n"] >= 4:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real_execute(task)

        monkeypatch.setattr(campaign_runner, "execute_task", dying_execute)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(spec, store=store, resume=True, batch_size=1).run()
        assert len(store.load(spec)) == 4

        # Resume: only the remaining tasks execute.
        executed = {"n": 0}

        def counting_execute(task):
            executed["n"] += 1
            return real_execute(task)

        monkeypatch.setattr(campaign_runner, "execute_task", counting_execute)
        result = CampaignRunner(spec, store=store, resume=True, batch_size=1).run()
        assert executed["n"] == spec.num_tasks - 4
        assert result.cached == 4
        assert result.executed == spec.num_tasks - 4

        # Re-invocation is a pure cache read and yields the same records.
        monkeypatch.setattr(campaign_runner, "execute_task", real_execute)
        repeat = CampaignRunner(spec, store=store, resume=True).run()
        assert repeat.executed == 0
        assert repeat.cached == spec.num_tasks
        assert [r.canonical_json() for r in repeat.records] == [
            r.canonical_json() for r in result.records
        ]

    def test_cached_records_match_fresh_execution(self, tmp_path):
        spec = small_spec(runs=2)
        store = CampaignStore(tmp_path)
        fresh = CampaignRunner(spec, store=store).run()
        resumed = CampaignRunner(spec, store=store, resume=True).run()
        assert resumed.executed == 0
        assert [r.canonical_json() for r in resumed.records] == [
            r.canonical_json() for r in fresh.records
        ]

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        spec = small_spec(runs=2)
        store = CampaignStore(tmp_path)
        CampaignRunner(spec, store=store).run()
        shard = store.shard_path(spec)
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "record": {"trunc')
        loaded = store.load(spec)
        assert len(loaded) == spec.num_tasks

    def test_resume_requires_store(self):
        with pytest.raises(ValueError):
            CampaignRunner(small_spec(), resume=True)

    def test_widened_sweep_reuses_completed_tasks(self, tmp_path):
        """Content addressing: spec revisions under one name keep their runs.

        Raising the Monte Carlo run count (the "add more samples" workflow)
        and appending cells preserve existing task seeds, so every completed
        run is served from cache; only the new runs simulate.
        """
        store = CampaignStore(tmp_path)
        narrow = small_spec(runs=3)
        CampaignRunner(narrow, store=store, resume=True).run()

        more_runs = small_spec(runs=5)
        result = CampaignRunner(more_runs, store=store, resume=True).run()
        assert result.cached == narrow.num_tasks
        assert result.executed == more_runs.num_tasks - narrow.num_tasks

        extra_cell = CampaignSpec(
            name=more_runs.name,
            seed=more_runs.seed,
            cells=more_runs.cells + (SweepSpec(layers=8, width=6, runs=2, seed_salt=77),),
        )
        extended = CampaignRunner(extra_cell, store=store, resume=True).run()
        assert extended.cached == more_runs.num_tasks
        assert extended.executed == 2

    def test_duplicate_key_cells_get_independent_cached_records(self, tmp_path):
        """Cells differing only in label share task keys but not record objects."""
        cells = tuple(
            SweepSpec(layers=8, width=6, runs=2, seed_salt=3, label=label)
            for label in ("first", "second")
        )
        spec = CampaignSpec(name="twin", seed=5, cells=cells)
        store = CampaignStore(tmp_path)
        CampaignRunner(spec, store=store, resume=True).run()
        resumed = CampaignRunner(spec, store=store, resume=True).run()
        assert resumed.executed == 0
        assert [r.cell_index for r in resumed.records] == [0, 0, 1, 1]
        assert resumed.records[0] is not resumed.records[2]
        for record in resumed.records:
            assert record.params["cell_index"] == record.cell_index
        for cell_index in (0, 1):
            assert len(resumed.records_for(cell_index=cell_index)) == 2

    def test_shard_lines_are_strict_json(self, tmp_path):
        """Faulty runs carry nan/inf -- shard lines must still be RFC 8259 JSON."""

        def reject_constant(token):
            raise AssertionError(f"non-standard JSON constant {token!r}")

        spec = small_spec(runs=2, num_faults=2)
        store = CampaignStore(tmp_path)
        result = CampaignRunner(spec, store=store).run()
        for line in store.shard_path(spec).read_text().splitlines():
            json.loads(line, parse_constant=reject_constant)
        for record in result.records:
            json.loads(record.canonical_json(), parse_constant=reject_constant)


class TestExperimentParity:
    """The campaign-backed adapters replicate the historical seed streams."""

    def test_run_scenario_set_matches_legacy_loop(self, quick_config):
        run_set = run_scenario_set(quick_config, "iii", num_faults=2, seed_salt=42)

        grid = quick_config.make_grid()
        rngs = quick_config.spawn_rngs(quick_config.runs, salt=42)
        for index, rng in enumerate(rngs):
            layer0 = scenario_layer0_times(
                Scenario.UNIFORM_DMAX, grid.width, quick_config.timing, rng=rng
            )
            fault_model = build_fault_model(grid, 2, FaultType.BYZANTINE, rng)
            delays = UniformRandomDelays(quick_config.timing, rng)
            solution = solve_single_pulse(grid, layer0, delays, fault_model=fault_model)
            assert np.array_equal(
                run_set.trigger_times[index], solution.trigger_times, equal_nan=True
            )
            assert run_set.fault_models[index].faulty_nodes() == fault_model.faulty_nodes()

    def test_run_scenario_set_workers_equivalence(self, quick_config):
        serial = run_scenario_set(quick_config, "i", num_faults=1, seed_salt=7, workers=1)
        parallel = run_scenario_set(quick_config, "i", num_faults=1, seed_salt=7, workers=2)
        assert serial.statistics(hops=1).as_row() == parallel.statistics(hops=1).as_row()

    def test_pooled_statistics_match_run_set_statistics(self, quick_config):
        from repro.experiments.single_pulse import scenario_set_spec

        spec = scenario_set_spec(quick_config, "iii", num_faults=2, seed_salt=42)
        records = CampaignRunner(spec).run().records
        run_set = run_scenario_set(quick_config, "iii", num_faults=2, seed_salt=42)
        for hops in (0, 1):
            assert pooled_statistics(records, hops=hops) == run_set.statistics(hops=hops)

    def test_fault_type_none_means_fault_free(self, quick_config):
        """Historical contract: fault_type=None injects nothing, whatever num_faults."""
        run_set = run_scenario_set(quick_config, "i", num_faults=2, fault_type=None, seed_salt=9)
        assert run_set.num_faults == 2  # reported as requested...
        assert run_set.fault_type is None
        assert all(model is None for model in run_set.fault_models)  # ...but none injected
        baseline = run_scenario_set(quick_config, "i", num_faults=0, seed_salt=9)
        for ours, theirs in zip(run_set.trigger_times, baseline.trigger_times):
            assert np.array_equal(ours, theirs, equal_nan=True)

    def test_des_engine_reachable_through_run_set(self):
        config = ExperimentConfig(layers=6, width=5, runs=2, seed=3)
        run_set = run_scenario_set(config, "i", engine="des")
        stats = run_set.statistics()
        assert np.isfinite(stats.intra_max)


class TestProgress:
    def test_eta_and_summary(self):
        reporter = ProgressReporter(total=10, label="x", enabled=False)
        reporter.start(cached=2)
        reporter.advance(4)
        assert reporter.done == 6
        reporter._started_at -= 1.0  # pretend a second passed: ETA becomes finite
        assert np.isfinite(reporter.eta())
        summary = reporter.finish()
        assert "6/10" in summary and "2 cached" in summary

    def test_format_duration(self):
        assert format_duration(3.21) == "3.2s"
        assert format_duration(192) == "3m12s"
        assert format_duration(3840) == "1h04m"
        assert format_duration(float("inf")) == "?"


class TestCli:
    def test_runs_zero_is_not_silently_ignored(self):
        """Regression: ``--runs 0`` used to fall through the truthiness check."""
        args = argparse.Namespace(runs=0, seed=None)
        with pytest.raises(ValueError):
            _experiment_config(args)

    def test_runs_and_seed_overrides_apply(self):
        args = argparse.Namespace(runs=7, seed=0)
        config = _experiment_config(args)
        assert config.runs == 7
        assert config.seed == 0  # seed 0 is a valid explicit choice

    def test_defaults_without_overrides(self):
        config = _experiment_config(argparse.Namespace(runs=None, seed=None))
        assert config.runs == ExperimentConfig().runs

    def test_simulate_engine_flag(self, capsys):
        code = main(
            [
                "simulate", "--layers", "6", "--width", "5", "--runs", "2",
                "--seed", "3", "--engine", "des",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine des" in out

    def test_sweep_cli_round_trip_and_resume(self, tmp_path, capsys):
        out_a = tmp_path / "a.jsonl"
        out_b = tmp_path / "b.jsonl"
        store = tmp_path / "cache"
        base = [
            "sweep", "--layers", "6", "--width", "5", "--scenarios", "i,iii",
            "--faults", "0,1", "--runs", "2", "--seed", "5", "--name", "t",
        ]
        assert main(base + ["--workers", "2", "--out", str(out_a), "--store", str(store)]) == 0
        assert main(base + ["--out", str(out_b), "--quiet"]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

        capsys.readouterr()
        assert main(base + ["--store", str(store), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out and "8 from cache" in out

    def test_sweep_spec_file(self, tmp_path, capsys):
        spec = small_spec(runs=1)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec.to_json_dict()))
        assert main(["sweep", "--spec", str(spec_file)]) == 0
        assert "Campaign test" in capsys.readouterr().out
