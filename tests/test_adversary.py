"""Tests of the dynamic adversary layer (repro.adversary) and its wiring.

Covers the declarative FaultSchedule (validation, JSON round trips, content
keys), seeded materialization (determinism, Condition 1 awareness), the DES
engine's schedule execution semantics (inject / heal / crash / flip /
intermittent links / mobile faults), delay adversaries, arbitrary initial
states, campaign integration (schedule axis: serial == parallel == resumed),
backwards compatibility of the static path, and the recovery experiment's
re-stabilization claim.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.adversary import (
    BiasedLinkDelays,
    FaultDirective,
    FaultSchedule,
    InjectFault,
    MaxSkewDelays,
)
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, RunTask, SweepSpec
from repro.campaign.store import CampaignStore
from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid
from repro.engines import RunSpec, get_engine
from repro.engines.des import scenario_stabilization_timeouts
from repro.experiments import recovery
from repro.faults.models import FaultModel, FaultType, LinkBehavior, NodeFault
from repro.faults.placement import check_condition1


@pytest.fixture
def timing():
    return TimingConfig.paper_defaults()


@pytest.fixture
def grid():
    return HexGrid(layers=10, width=8)


def separation(layers=10, width=8, num_faults=0, timing=None):
    """Pulse separation S of the default scenario-(i) stabilization timeouts."""
    timing = timing if timing is not None else TimingConfig.paper_defaults()
    from repro.clocksource.scenarios import Scenario

    return scenario_stabilization_timeouts(
        Scenario.ZERO, width, layers, num_faults, timing
    ).pulse_separation


# ----------------------------------------------------------------------
# schedule declaration & serialization
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_json_round_trip_is_identity(self):
        schedule = FaultSchedule(
            directives=(
                FaultDirective(kind="inject", time=10.0, node=(3, 2), fault_type="fail_silent"),
                FaultDirective(kind="heal", time=50.0, node=(3, 2)),
                FaultDirective(kind="crash", time=70.0),
                FaultDirective(kind="burst", time=100.0, count=2, duration=40.0),
                FaultDirective(kind="cluster", time=200.0, count=3, radius=2),
                FaultDirective(
                    kind="intermittent_link", time=20.0, period=30.0, duty=0.25, until=140.0
                ),
                FaultDirective(kind="mobile", time=5.0, interval=25.0, hops=3, until=105.0),
                FaultDirective(kind="flip_behavior", time=120.0),
            ),
            label="everything",
        )
        rebuilt = FaultSchedule.from_json(schedule.to_json())
        assert rebuilt == schedule
        assert rebuilt.key() == schedule.key()

    def test_generators_produce_single_directives(self):
        assert FaultSchedule.burst(time=1.0, count=3).directives[0].kind == "burst"
        assert FaultSchedule.cluster(time=1.0, count=2).directives[0].kind == "cluster"
        assert (
            FaultSchedule.intermittent_link(time=1.0, period=5.0, until=20.0)
            .directives[0]
            .kind
            == "intermittent_link"
        )
        assert (
            FaultSchedule.mobile_byzantine(time=1.0, interval=5.0, hops=2)
            .directives[0]
            .kind
            == "mobile"
        )

    def test_directive_validation(self):
        with pytest.raises(ValueError, match="unknown directive kind"):
            FaultDirective(kind="explode", time=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultDirective(kind="inject", time=-1.0)
        with pytest.raises(ValueError, match="fault_type"):
            FaultDirective(kind="inject", time=1.0, fault_type="crash")
        with pytest.raises(ValueError, match="duty"):
            FaultDirective(
                kind="intermittent_link", time=1.0, period=5.0, duty=1.5, until=20.0
            )
        with pytest.raises(ValueError, match="until > time"):
            FaultDirective(kind="intermittent_link", time=10.0, period=5.0, until=10.0)
        with pytest.raises(ValueError, match="interval"):
            FaultDirective(kind="mobile", time=1.0, hops=2)
        with pytest.raises(ValueError, match="at least one directive"):
            FaultSchedule(directives=())

    def test_unknown_schema_and_fields_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            FaultSchedule.from_json_dict({"schema": "bogus/v9", "directives": []})
        with pytest.raises(ValueError, match="unknown FaultDirective fields"):
            FaultDirective.from_json_dict({"kind": "inject", "time": 1.0, "wat": 2})

    def test_dict_directives_are_coerced(self):
        schedule = FaultSchedule(directives=({"kind": "burst", "time": 3.0, "count": 2},))
        assert schedule.directives[0] == FaultDirective(kind="burst", time=3.0, count=2)


# ----------------------------------------------------------------------
# materialization
# ----------------------------------------------------------------------
class TestMaterialization:
    def test_same_seed_same_actions(self, grid):
        schedule = FaultSchedule.burst(time=50.0, count=3, duration=100.0)
        first = schedule.materialize(grid, np.random.default_rng(7))
        second = schedule.materialize(grid, np.random.default_rng(7))
        assert first == second
        third = schedule.materialize(grid, np.random.default_rng(8))
        assert third != first  # placements differ for a different stream

    def test_burst_respects_condition1_and_excludes(self, grid):
        schedule = FaultSchedule.burst(time=10.0, count=3)
        static = [(1, 0), (5, 4)]
        adversary = schedule.materialize(grid, np.random.default_rng(3), exclude=static)
        injected = [
            action.fault.node
            for _time, action in adversary.actions
            if isinstance(action, InjectFault)
        ]
        assert len(injected) == 3
        assert not set(injected) & set(static)
        assert check_condition1(grid, injected + static)

    def test_cluster_members_stay_within_radius(self, grid):
        schedule = FaultSchedule.cluster(time=10.0, count=3, radius=3)
        adversary = schedule.materialize(grid, np.random.default_rng(11))
        injected = [
            action.fault.node
            for _time, action in adversary.actions
            if isinstance(action, InjectFault)
        ]
        assert len(injected) == 3
        center = injected[0]
        for node in injected[1:]:
            column_gap = abs(node[1] - center[1])
            distance = abs(node[0] - center[0]) + min(column_gap, grid.width - column_gap)
            assert distance <= 3
        assert check_condition1(grid, injected)

    def test_mobile_walk_heals_previous_position(self, grid):
        schedule = FaultSchedule.mobile_byzantine(time=10.0, interval=20.0, hops=3, until=90.0)
        adversary = schedule.materialize(grid, np.random.default_rng(5))
        timeline = adversary.describe()
        injects = [line for line in timeline if "inject" in line]
        heals = [line for line in timeline if "heal" in line]
        assert len(injects) == 4  # initial position + 3 hops
        assert len(heals) == 4  # each position healed (final one at `until`)
        assert adversary.last_time == 90.0

    def test_intermittent_link_alternates_behaviors(self, grid):
        schedule = FaultSchedule.intermittent_link(
            time=0.0, period=20.0, duty=0.5, until=60.0, link=((2, 1), (3, 1))
        )
        adversary = schedule.materialize(grid, np.random.default_rng(0))
        kinds = [action.behavior for _time, action in adversary.actions]
        assert kinds == [
            LinkBehavior.CONSTANT_ZERO,
            LinkBehavior.CORRECT,
            LinkBehavior.CONSTANT_ZERO,
            LinkBehavior.CORRECT,
            LinkBehavior.CONSTANT_ZERO,
            LinkBehavior.CORRECT,
        ]

    def test_impossible_density_raises(self):
        tiny = HexGrid(layers=2, width=4)
        schedule = FaultSchedule.burst(time=1.0, count=8)
        with pytest.raises(RuntimeError, match="Condition 1"):
            schedule.materialize(tiny, np.random.default_rng(0))

    def test_early_heal_cancels_stale_duration_heal(self, grid):
        """A re-injected fault must not be ended by the previous episode's heal.

        inject@10 with duration 20 queues a heal@30; an explicit heal@15 ends
        the episode early, and a *permanent* re-inject@20 must stay faulty --
        the stale heal@30 has to be dropped at materialization.
        """
        node = (2, 2)
        schedule = FaultSchedule(
            directives=(
                FaultDirective(kind="inject", time=10.0, node=node, duration=20.0),
                FaultDirective(kind="heal", time=15.0, node=node),
                FaultDirective(kind="inject", time=20.0, node=node),
            )
        )
        adversary = schedule.materialize(grid, np.random.default_rng(0))
        times = [
            (at, type(action).__name__, getattr(action, "node", None))
            for at, action in adversary.actions
        ]
        assert (30.0, "HealNode", node) not in times
        assert adversary.last_time == 20.0  # permanent fault: nothing after t=20


# ----------------------------------------------------------------------
# DES execution semantics
# ----------------------------------------------------------------------
class TestDesScheduleExecution:
    def run_spec(self, schedule, **overrides):
        params = dict(
            kind="multi_pulse",
            layers=10,
            width=8,
            scenario="i",
            num_pulses=6,
            entropy=42,
            fault_schedule=schedule,
        )
        params.update(overrides)
        return RunSpec(**params)

    def test_transient_burst_heals_to_fault_free(self):
        s = separation()
        schedule = FaultSchedule.burst(time=1.5 * s, count=2, duration=2.0 * s)
        result = get_engine("des").run(self.run_spec(schedule))
        assert result.fault_model is None  # everything healed by the end
        assert result.metrics["adversary_actions"] == 4.0
        assert result.total_firings() > 0

    def test_permanent_burst_reports_final_faults(self):
        s = separation()
        schedule = FaultSchedule.burst(time=1.5 * s, count=2)
        result = get_engine("des").run(self.run_spec(schedule))
        assert result.fault_model is not None
        assert result.fault_model.num_faulty_nodes == 2
        for node in result.fault_model.faulty_nodes():
            assert result.firings_of(node) == []

    def test_crash_stops_firing_heal_resumes(self):
        s = separation()
        node = (5, 3)
        schedule = FaultSchedule(
            directives=(
                FaultDirective(kind="crash", time=1.5 * s, node=node, duration=2.0 * s),
            )
        )
        result = get_engine("des").run(self.run_spec(schedule, random_initial_states=False))
        firings = np.asarray(result.firings_of(node))
        # Fires before the crash, is silent during it, and resumes after heal.
        assert np.any(firings < 1.5 * s)
        assert not np.any((firings > 1.5 * s) & (firings < 3.5 * s))
        assert np.any(firings > 3.5 * s)

    def test_single_pulse_inject_before_wave_blocks_node(self):
        node = (4, 2)
        schedule = FaultSchedule(
            directives=(
                FaultDirective(kind="inject", time=0.0, node=node, fault_type="fail_silent"),
            )
        )
        spec = RunSpec(
            kind="single_pulse",
            layers=10,
            width=8,
            scenario="i",
            entropy=9,
            fault_schedule=schedule,
        )
        result = get_engine("des").run(spec)
        assert result.fault_model is not None
        assert result.fault_model.faulty_nodes() == [node]
        assert math.isnan(result.trigger_times[node])
        # Every *other* forwarding node still fires (HEX rides out one fault).
        assert result.all_correct_triggered()

    def test_flip_behavior_and_intermittent_links_run_deterministically(self):
        s = separation()
        schedule = FaultSchedule(
            directives=(
                FaultDirective(kind="inject", time=0.5 * s, fault_type="byzantine"),
                FaultDirective(kind="flip_behavior", time=1.5 * s),
                FaultDirective(
                    kind="intermittent_link",
                    time=0.0,
                    period=s,
                    duty=0.5,
                    until=3.0 * s,
                ),
            )
        )
        first = get_engine("des").run(self.run_spec(schedule))
        second = get_engine("des").run(self.run_spec(schedule))
        assert first.firing_times == second.firing_times

    def test_mobile_byzantine_run_completes(self):
        s = separation()
        schedule = FaultSchedule.mobile_byzantine(
            time=0.5 * s, interval=s, hops=3, until=4.5 * s
        )
        result = get_engine("des").run(self.run_spec(schedule))
        assert result.fault_model is None  # healed at `until`
        assert result.total_firings() > 0

    def test_solver_and_clocktree_reject_schedules(self):
        schedule = FaultSchedule.burst(time=1.0, count=1)
        spec = RunSpec(
            kind="single_pulse", layers=8, width=6, entropy=1, fault_schedule=schedule
        )
        for engine in ("solver", "clocktree"):
            with pytest.raises(ValueError, match="cannot execute dynamic fault schedules"):
                get_engine(engine).run(spec)

    def test_engine_capability_flags(self):
        assert get_engine("des").capabilities.supports_fault_schedules
        assert not get_engine("solver").capabilities.supports_fault_schedules
        assert not get_engine("clocktree").capabilities.supports_fault_schedules
        assert "fault-schedules" in get_engine("des").capabilities.summary()


# ----------------------------------------------------------------------
# delay adversaries & initial states
# ----------------------------------------------------------------------
class TestDelayAdversaries:
    def test_max_skew_is_deterministic_and_bounded(self, timing, grid):
        model = MaxSkewDelays(timing, grid.width)
        assert model.validate_against(timing, grid)
        assert model.delay((2, 0), (3, 0)) == timing.d_max  # left half slow
        assert model.delay((2, 7), (3, 7)) == timing.d_min  # right half fast

    def test_biased_delays_stable_bias_bounded_jitter(self, timing, grid):
        model = BiasedLinkDelays(timing, np.random.default_rng(3), jitter=0.5)
        bias = model.delay((1, 1), (2, 1))
        assert bias == model.delay((1, 1), (2, 1))  # cached
        for _ in range(50):
            value = model.sample((1, 1), (2, 1))
            assert timing.d_min <= value <= timing.d_max

    def test_delay_adversaries_run_on_both_engines(self):
        for delay_model in ("max_skew", "biased"):
            spec = RunSpec(
                kind="single_pulse",
                layers=8,
                width=6,
                scenario="iii",
                delay_model=delay_model,
                entropy=17,
            )
            des = get_engine("des").run(spec)
            assert des.all_correct_triggered()
            solver = get_engine("solver").run(spec)
            assert solver.all_correct_triggered()

    def test_max_skew_spec_is_reproducible(self):
        spec = RunSpec(
            kind="single_pulse", layers=8, width=6, delay_model="max_skew", entropy=5
        )
        a = get_engine("des").run(spec)
        b = get_engine("des").run(spec)
        np.testing.assert_array_equal(a.trigger_times, b.trigger_times)

    def test_unknown_delay_model_rejected(self):
        with pytest.raises(ValueError, match="delay_model"):
            RunSpec(delay_model="quantum")


class TestInitialStates:
    def test_adversarial_start_fires_spurious_wave(self):
        spec = RunSpec(
            kind="multi_pulse",
            layers=8,
            width=6,
            scenario="i",
            num_pulses=4,
            entropy=23,
            initial_states="adversarial",
        )
        result = get_engine("des").run(spec)
        firings = [
            t
            for node, times in result.firing_times.items()
            if node[0] > 0  # forwarding nodes (layer-0 sources fire pulse 0 at t=0 too)
            for t in times
        ]
        # All-flags-set start: every forwarding node fires spuriously at t=0.
        assert sum(1 for t in firings if t == 0.0) == 8 * 6
        # ... and the grid still serves the real pulses afterwards.
        from repro.analysis.stabilization import stabilization_time

        assert stabilization_time(result, lambda layer: 1e9) is not None

    def test_clean_matches_legacy_flag(self):
        base = dict(kind="multi_pulse", layers=8, width=6, num_pulses=3, entropy=31)
        via_policy = get_engine("des").run(RunSpec(**base, initial_states="clean"))
        via_flag = get_engine("des").run(RunSpec(**base, random_initial_states=False))
        assert via_policy.firing_times == via_flag.firing_times

    def test_initial_states_requires_multi_pulse(self):
        with pytest.raises(ValueError, match="multi-pulse"):
            RunSpec(kind="single_pulse", initial_states="adversarial")
        with pytest.raises(ValueError, match="initial_states"):
            RunSpec(kind="multi_pulse", initial_states="chaotic")


# ----------------------------------------------------------------------
# backwards compatibility of the static path
# ----------------------------------------------------------------------
class TestStaticPathUnchanged:
    #: The exact RunSpec payload keys of the pre-adversary serialization; a
    #: schedule-free spec must keep this set (content keys depend on it).
    LEGACY_RUNSPEC_KEYS = {
        "kind", "layers", "width", "d_min", "d_max", "theta", "scenario",
        "num_faults", "fault_type", "fixed_fault_positions", "delay_model",
        "timeouts", "timer_policy", "num_pulses", "random_initial_states",
        "run_slack", "entropy", "run_index",
    }

    def test_static_runspec_payload_has_legacy_keys_only(self):
        assert set(RunSpec(entropy=1).to_json_dict()) == self.LEGACY_RUNSPEC_KEYS

    def test_static_runtask_payload_and_key_unchanged(self):
        task_kwargs = dict(
            kind="single_pulse", layers=8, width=6, d_min=7.161, d_max=8.197,
            theta=1.05, scenario="zero", num_faults=1, fault_type="byzantine",
            engine="des", timer_policy="uniform", num_pulses=1, skew_choice=0,
            fixed_fault_positions=None, timeouts=None, keep_times=True,
            entropy=77, run_index=0, cell_index=0, point_index=0,
        )
        legacy = RunTask(**task_kwargs)
        assert "fault_schedule" not in legacy.to_json_dict()
        assert "delay_model" not in legacy.to_json_dict()
        assert "initial_states" not in legacy.to_json_dict()
        with_schedule = dataclasses.replace(
            legacy, fault_schedule=FaultSchedule.burst(time=1.0, count=1)
        )
        assert with_schedule.key() != legacy.key()

    def test_static_sweepspec_payload_has_no_adversary_keys(self):
        payload = SweepSpec(layers=(8,), width=(6,)).to_json_dict()
        assert "fault_schedule" not in payload
        assert "delay_model" not in payload
        assert "initial_states" not in payload

    def test_sweepspec_with_adversary_fields_round_trips(self):
        cell = SweepSpec(
            layers=(8,),
            width=(6,),
            engine=("des",),
            kind="multi_pulse",
            delay_model=("fresh", "biased"),
            fault_schedule=(None, FaultSchedule.burst(time=5.0, count=1)),
            initial_states="adversarial",
        )
        rebuilt = SweepSpec.from_json_dict(cell.to_json_dict())
        assert rebuilt == cell

    def test_schedule_axis_with_static_engine_rejected_at_build_time(self):
        with pytest.raises(ValueError, match="cannot execute dynamic fault schedules"):
            SweepSpec(
                layers=(8,),
                width=(6,),
                engine=("solver",),
                fault_schedule=(FaultSchedule.burst(time=5.0, count=1),),
            )


# ----------------------------------------------------------------------
# campaign integration (acceptance: serial == parallel == resumed)
# ----------------------------------------------------------------------
class TestCampaignScheduleAxis:
    def spec(self):
        s = separation(layers=8, width=6)
        schedule = FaultSchedule.burst(time=1.5 * s, count=2, duration=2.0 * s)
        cell = SweepSpec(
            layers=(8,),
            width=(6,),
            scenario=("i",),
            engine=("des",),
            kind="multi_pulse",
            num_pulses=5,
            runs=3,
            fault_schedule=(None, schedule),
        )
        return CampaignSpec(name="adversary-axis", cells=(cell,), seed=19)

    def test_serial_parallel_and_resume_bit_identity(self, tmp_path):
        spec = self.spec()
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        assert [r.canonical_json() for r in serial.records] == [
            r.canonical_json() for r in parallel.records
        ]

        store = CampaignStore(tmp_path)
        CampaignRunner(spec, store=store).run()
        resumed = CampaignRunner(spec, store=store, resume=True).run()
        assert resumed.executed == 0
        assert resumed.cached == spec.num_tasks
        assert [r.canonical_json() for r in resumed.records] == [
            r.canonical_json() for r in serial.records
        ]

    def test_schedule_rides_in_record_params(self):
        result = CampaignRunner(self.spec(), workers=1).run()
        scheduled = [r for r in result.records if "fault_schedule" in r.params]
        assert len(scheduled) == 3  # the schedule point's runs
        payload = scheduled[0].params["fault_schedule"]
        assert FaultSchedule.from_json_dict(payload).directives[0].kind == "burst"


# ----------------------------------------------------------------------
# NodeFault crash bugfix & heal interplay
# ----------------------------------------------------------------------
class TestCrashFaultValidation:
    def test_negative_crash_time_rejected_at_construction(self, grid):
        with pytest.raises(ValueError, match="non-negative"):
            NodeFault(node=(2, 1), fault_type=FaultType.CRASH, crash_time=-5.0)
        with pytest.raises(ValueError, match="non-negative"):
            NodeFault.crash(grid, (2, 1), crash_time=-1.0)

    def test_finite_crash_time_on_non_crash_fault_rejected(self):
        with pytest.raises(ValueError, match="only meaningful for CRASH"):
            NodeFault(node=(2, 1), fault_type=FaultType.BYZANTINE, crash_time=10.0)

    def test_healed_static_fault_regains_stuck_high_inputs(self, timing, grid):
        """Healing a *statically* faulty node rebuilds its stuck-at-1 in-links.

        A Byzantine neighbour with a constant-1 link towards the healed node
        must resume driving its memory flag -- the registry entry was never
        built at network construction (the node had no automaton then).
        """
        from repro.core.parameters import condition2_timeouts
        from repro.core.topology import Direction
        from repro.simulation.links import ConstantDelays
        from repro.simulation.network import HexNetwork

        byzantine, healed = (1, 1), (2, 1)
        direction = grid.direction_between(byzantine, healed)
        fault_model = FaultModel(
            grid,
            [
                NodeFault.byzantine(
                    grid,
                    byzantine,
                    behaviors={
                        dest: (
                            LinkBehavior.CONSTANT_ONE
                            if dest == healed
                            else LinkBehavior.CONSTANT_ZERO
                        )
                        for dest in grid.out_neighbors(byzantine).values()
                    },
                ),
                NodeFault.fail_silent(grid, healed),
            ],
        )
        timeouts = condition2_timeouts(
            timing, stable_skew=5.0, layers=grid.layers, num_faults=2
        )
        network = HexNetwork(
            grid=grid,
            timing=timing,
            timeouts=timeouts,
            delays=ConstantDelays(timing.d_max),
            fault_model=fault_model,
            rng=np.random.default_rng(0),
        )
        network.initialize()
        assert healed not in network._byzantine_high_inputs  # no automaton yet
        network.heal_node(healed, time=5.0)
        assert network._byzantine_high_inputs[healed] == [(direction, byzantine)]
        assert isinstance(direction, Direction)
        network.run(until=10.0)
        # The stuck-high link drove the healed node's memory flag.
        assert network.automata[healed].is_memorized(direction)

    def test_heal_removes_crash_semantics(self, grid):
        model = FaultModel(grid, [NodeFault.crash(grid, (3, 2), crash_time=10.0)])
        link = ((3, 2), (4, 2))
        assert model.link_behavior(link, time=5.0) is LinkBehavior.CORRECT
        assert model.link_behavior(link, time=20.0) is LinkBehavior.CONSTANT_ZERO
        removed = model.remove_node_fault((3, 2))
        assert removed is not None and removed.fault_type is FaultType.CRASH
        assert model.link_behavior(link, time=20.0) is LinkBehavior.CORRECT
        assert model.num_faulty_nodes == 0
        assert model.remove_node_fault((3, 2)) is None  # idempotent


# ----------------------------------------------------------------------
# recovery experiment (acceptance: re-stabilization after the burst)
# ----------------------------------------------------------------------
class TestRecoveryExperiment:
    def test_skew_returns_to_fault_free_levels_within_bounded_pulses(self):
        from repro.experiments.config import ExperimentConfig

        experiment = recovery.run(
            config=ExperimentConfig(layers=12, width=8, runs=3, seed=5),
            burst_sizes=(1, 2),
            num_pulses=9,
            inject_pulse=2,
            heal_pulse=4,
        )
        for point in experiment.points:
            # Every run re-stabilizes, and within a tight bound (far below the
            # worst-case L + 1 pulses of Theorem 2).
            assert np.all(np.isfinite(point.recovery)), (
                f"f={point.num_faults}: some run never returned to fault-free "
                f"skew levels ({point.recovery})"
            )
            assert float(np.max(point.recovery)) <= 3.0
            # The burst was actually disruptive in at least one run, so the
            # recovery claim is not vacuous.
            assert np.any(point.violated_during)

    def test_render_mentions_grid_and_pulses(self):
        from repro.experiments.config import ExperimentConfig

        experiment = recovery.run(
            config=ExperimentConfig(layers=10, width=8, runs=2, seed=3),
            burst_sizes=(1,),
            num_pulses=8,
        )
        text = experiment.render()
        assert "Recovery from transient fault bursts" in text
        assert "10x8" in text

    def test_spec_validation(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(layers=10, width=8, runs=1)
        with pytest.raises(ValueError, match="inject_pulse"):
            recovery.burst_recovery_spec(config, 1, 5, inject_pulse=4, heal_pulse=3,
                                         run_index=0, seed_salt=0)
        with pytest.raises(ValueError, match="burst sizes"):
            recovery.run(config=config, burst_sizes=(0,), num_pulses=6)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestAdversaryCli:
    def test_engines_json_reports_schedule_capability(self, capsys):
        import json as json_module

        from repro.cli import main

        assert main(["engines", "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["des"]["supports_fault_schedules"] is True
        assert by_name["solver"]["supports_fault_schedules"] is False

    def test_adversary_list_validate_preview(self, tmp_path, capsys):
        import json as json_module

        from repro.cli import main

        assert main(["adversary", "list"]) == 0
        assert "burst" in capsys.readouterr().out

        path = tmp_path / "schedule.json"
        path.write_text(
            json_module.dumps(
                FaultSchedule.burst(time=30.0, count=2, duration=60.0).to_json_dict()
            )
        )
        assert main(["adversary", "validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(
            ["adversary", "preview", str(path), "--layers", "8", "--width", "6", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "inject byzantine fault" in out
        assert "heal node" in out

    def test_adversary_validate_rejects_bad_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text('{"schema": "hex-repro/fault-schedule/v1", "directives": [{"kind": "explode", "time": 1}]}')
        assert main(["adversary", "validate", str(path)]) == 2
        assert "unknown directive kind" in capsys.readouterr().err

    def test_adversary_actions_require_file(self, capsys):
        from repro.cli import main

        assert main(["adversary", "validate"]) == 2
        assert "requires a schedule FILE" in capsys.readouterr().err

    def test_sweep_fault_schedule_flag(self, tmp_path, capsys):
        import json as json_module

        from repro.cli import main

        path = tmp_path / "schedule.json"
        s = separation(layers=8, width=6)
        path.write_text(
            json_module.dumps(
                FaultSchedule.burst(time=1.5 * s, count=1, duration=s).to_json_dict()
            )
        )
        out_path = tmp_path / "records.jsonl"
        assert main(
            [
                "sweep", "--engine", "des", "--layers", "8", "--width", "6",
                "--runs", "2", "--fault-schedule", str(path),
                "--quiet", "--out", str(out_path),
            ]
        ) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert "fault_schedule" in lines[0]
