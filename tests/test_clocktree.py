"""Tests for the clock-tree baseline substrate and the HEX comparison."""

from __future__ import annotations

import pytest

from repro.clocktree.comparison import compare_scaling
from repro.clocktree.delays import TreeDelayConfig, nominal_element_delays, sample_element_delays
from repro.clocktree.faults import robustness_report, sinks_lost_by_fault, subtree_sink_counts
from repro.clocktree.htree import build_htree
from repro.clocktree.simulation import sink_arrival_times, tree_skew_report


class TestHTreeStructure:
    @pytest.mark.parametrize("levels", [1, 2, 3, 4])
    def test_sink_count_is_4_to_the_k(self, levels):
        tree = build_htree(levels)
        assert tree.num_sinks == 4**levels
        assert tree.depth() == levels

    def test_node_count(self):
        tree = build_htree(3)
        # 1 + 4 + 16 + 64 internal+leaf nodes.
        assert tree.num_nodes == 1 + 4 + 16 + 64

    def test_equal_root_to_sink_wire_length(self):
        """The defining property of an H-tree: all root-to-sink paths have equal length."""
        tree = build_htree(3, span=8.0)
        lengths = {round(tree.root_to_sink_wire_length(s), 9) for s in tree.sink_indices()}
        assert len(lengths) == 1

    def test_top_level_segment_is_longest_and_scales(self):
        small = build_htree(2, span=4.0)
        large = build_htree(4, span=16.0)
        assert large.max_segment_length() > small.max_segment_length()
        # The longest segment is a top-level arm: half of a quadrant diagonal.
        assert large.max_segment_length() == pytest.approx(8.0)

    def test_sinks_form_a_regular_grid(self):
        tree = build_htree(3)
        grid = tree.sink_grid()
        side = 2**3
        assert len(grid) == side * side
        assert set(grid) == {(r, c) for r in range(side) for c in range(side)}

    def test_path_to_root(self):
        tree = build_htree(2)
        sink = tree.sink_indices()[0]
        path = tree.path_to_root(sink)
        assert path[-1] == 0
        assert len(path) == 3  # sink, level-1 buffer, root

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_htree(0)
        with pytest.raises(ValueError):
            build_htree(2, span=0.0)


class TestTreeDelays:
    def test_nominal_delays(self):
        tree = build_htree(2, span=4.0)
        config = TreeDelayConfig(wire_delay_per_unit=2.0, buffer_delay=0.5, relative_variation=0.0)
        delays = nominal_element_delays(tree, config)
        assert len(delays) == tree.num_nodes - 1
        node = tree.node(1)
        assert delays[1] == pytest.approx(2.0 * node.wire_length + 0.5)

    def test_sampled_delays_within_variation(self, rng):
        tree = build_htree(2, span=4.0)
        config = TreeDelayConfig(wire_delay_per_unit=2.0, buffer_delay=0.5, relative_variation=0.1)
        sampled = sample_element_delays(tree, config, rng=rng)
        nominal = nominal_element_delays(tree, config)
        for index, value in sampled.items():
            assert 0.9 * nominal[index] - 1e-9 <= value <= 1.1 * nominal[index] + 1e-9

    def test_zero_variation_matches_nominal(self, rng):
        tree = build_htree(2)
        config = TreeDelayConfig(relative_variation=0.0)
        assert sample_element_delays(tree, config, rng=rng) == pytest.approx(
            nominal_element_delays(tree, config)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TreeDelayConfig(wire_delay_per_unit=0.0)
        with pytest.raises(ValueError):
            TreeDelayConfig(relative_variation=1.5)
        with pytest.raises(ValueError):
            TreeDelayConfig(buffer_delay=-1.0)


class TestTreeSkew:
    def test_zero_variation_means_zero_skew(self, rng):
        tree = build_htree(3, span=8.0)
        config = TreeDelayConfig(relative_variation=0.0)
        report = tree_skew_report(tree, config, rng=rng)
        assert report.global_skew == pytest.approx(0.0)
        assert report.max_neighbor_skew == pytest.approx(0.0)

    def test_arrival_times_are_path_sums(self, rng):
        tree = build_htree(2, span=4.0)
        config = TreeDelayConfig()
        delays = sample_element_delays(tree, config, rng=rng)
        arrivals = sink_arrival_times(tree, delays)
        sink = tree.sink_indices()[5]
        expected = sum(delays[i] for i in tree.path_to_root(sink) if i != 0)
        assert arrivals[sink] == pytest.approx(expected)

    def test_variation_creates_neighbor_skew_that_grows_with_size(self, rng):
        config = TreeDelayConfig(wire_delay_per_unit=8.0, relative_variation=0.1)
        small = tree_skew_report(build_htree(2, span=4.0), config, seed=1)
        large = tree_skew_report(build_htree(4, span=16.0), config, seed=1)
        assert large.max_neighbor_skew > small.max_neighbor_skew
        assert large.max_neighbor_disjoint_path > small.max_neighbor_disjoint_path

    def test_disjoint_path_of_cross_subtree_neighbours_is_large(self):
        tree = build_htree(3, span=8.0)
        config = TreeDelayConfig(relative_variation=0.0)
        report = tree_skew_report(tree, config, seed=0)
        # Adjacent sinks served by different top-level subtrees share only the
        # root, so the disjoint part is nearly twice the root-to-sink length.
        full_path = tree.root_to_sink_wire_length(tree.sink_indices()[0])
        assert report.max_neighbor_disjoint_path == pytest.approx(2 * full_path)


class TestTreeFaults:
    def test_subtree_counts(self):
        tree = build_htree(2)
        counts = subtree_sink_counts(tree)
        assert counts[0] == 16
        level1 = [n.index for n in tree.nodes() if n.level == 1]
        assert all(counts[i] == 4 for i in level1)

    def test_sinks_lost(self):
        tree = build_htree(3)
        assert sinks_lost_by_fault(tree, 0) == 64
        level1 = [n.index for n in tree.nodes() if n.level == 1][0]
        assert sinks_lost_by_fault(tree, level1) == 16
        with pytest.raises(ValueError):
            sinks_lost_by_fault(tree, 10_000)

    def test_robustness_report(self):
        tree = build_htree(3)
        report = robustness_report(tree)
        assert report.num_sinks == 64
        assert report.worst_case_lost == 64
        assert report.worst_case_internal_lost == 16
        assert not report.single_fault_tolerated
        assert 1.0 < report.expected_lost < 64.0


class TestScalingComparison:
    def test_shapes_of_title_claim(self):
        rows = compare_scaling(tree_levels=(2, 3, 4), runs_per_size=3, seed=1)
        assert [row.num_endpoints for row in rows] == [16, 64, 256]
        # HEX wire length is constant; the tree's grows with sqrt(n).
        assert all(row.hex_max_wire_length == 1.0 for row in rows)
        tree_wires = [row.tree_max_wire_length for row in rows]
        assert tree_wires[1] == pytest.approx(2 * tree_wires[0])
        assert tree_wires[2] == pytest.approx(2 * tree_wires[1])
        # The tree loses a quarter of the die to its worst internal fault; HEX
        # loses one node.
        assert all(row.tree_worst_internal_fault_loss == row.num_endpoints // 4 for row in rows)
        assert all(row.hex_single_fault_loss == 1 for row in rows)
        # HEX's expected fault tolerance grows with sqrt(n).
        assert rows[-1].hex_expected_faults_tolerated > rows[0].hex_expected_faults_tolerated

    def test_tree_neighbor_skew_eventually_exceeds_hex_bound(self):
        rows = compare_scaling(tree_levels=(2, 5), runs_per_size=3, seed=1)
        assert rows[-1].tree_max_neighbor_skew > rows[-1].hex_neighbor_skew_bound
        # ... which is the crossover the title refers to.
        assert rows[0].tree_max_neighbor_skew < rows[-1].tree_max_neighbor_skew
