"""Smoke and shape tests for the per-table / per-figure experiment harness.

These run every experiment on a small configuration and assert the *shape* of
the paper's findings (orderings, locality, bound compliance), not absolute
numbers -- the full-scale comparison lives in the benchmark harness and
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clocksource.scenarios import SCENARIOS, Scenario
from repro.experiments import EXPERIMENTS, load_experiment
from repro.experiments import (
    clocktree_comparison,
    fig05,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig17,
    fig18,
    table1,
    table2,
    table3,
    theorem1,
)
from repro.experiments.config import ExperimentConfig
from repro.faults.models import FaultType


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    """A small but non-trivial configuration shared by the smoke tests."""
    return ExperimentConfig(layers=20, width=10, runs=4, num_pulses=5, seed=99)


class TestRegistry:
    def test_all_experiments_importable(self):
        for name in EXPERIMENTS:
            module = load_experiment(name)
            assert callable(module.run)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            load_experiment("table99")


class TestTables:
    def test_table1_rows_and_ordering(self, config):
        result = table1.run(config)
        rows = result.rows()
        assert len(rows) == 4
        stats = result.statistics
        # Scenario (iv) has by far the largest average intra-layer skew.
        assert stats[Scenario.RAMP].intra_avg > stats[Scenario.ZERO].intra_avg
        # Inter-layer skews have the >= d- bias in scenarios (i)-(iii).
        for scenario in (Scenario.ZERO, Scenario.UNIFORM_DMIN, Scenario.UNIFORM_DMAX):
            assert stats[scenario].inter_min >= config.timing.d_min - 1e-6
        # Rendering includes both measured and paper rows.
        text = result.render()
        assert "measured" in text and "paper" in text

    def test_table2_faults_increase_max_skew(self, config):
        clean = table1.run(config)
        faulty = table2.run(config)
        for scenario in SCENARIOS:
            assert (
                faulty.statistics[scenario].intra_max
                >= clean.statistics[scenario].intra_max - 1e-9
            )
        # A Byzantine node can trigger its neighbours early: the minimum
        # inter-layer skew may drop below d- (as in the paper's Table 2).
        assert faulty.statistics[Scenario.UNIFORM_DMAX].inter_min <= config.timing.d_min + 1e-6

    def test_table3_matches_paper_for_paper_sigma(self, config):
        result = table3.run(config, runs=2)
        for scenario in SCENARIOS:
            derived = result.from_paper_sigma[scenario].as_row()
            paper = table3.PAPER_TABLE3[scenario]
            for key in ("T_link_min", "T_link_max", "T_sleep_min", "T_sleep_max"):
                assert derived[key] == pytest.approx(paper[key], abs=0.2), (scenario, key)
        # The measured-sigma derivation produces valid, ordered timeouts.
        for scenario in SCENARIOS:
            timeouts = result.from_measured_sigma[scenario]
            assert timeouts.t_link_min < timeouts.t_link_max < timeouts.t_sleep_min


class TestWaveFigures:
    def test_fig08_wave_is_even(self, config):
        result = fig08.run(config)
        summary = result.summary()
        assert summary["layer0_spread"] == 0.0
        assert summary["max_intra_layer_skew"] < config.timing.d_max + 1e-9
        assert config.timing.d_min <= summary["per_layer_time"] <= config.timing.d_max
        assert len(result.rows(truncate_layers=5)) == 6 * config.width

    def test_fig09_smooths_initial_ramp(self, config):
        result = fig09.run(config)
        smoothing = result.smoothing_summary()
        # The ramp reaches (W/2) d+ of initial layer-0 skew ...
        assert smoothing["initial_layer0_skew"] >= (config.width // 2) * config.timing.d_max - 1e-9
        # ... which the grid smooths out above the Lemma 3 horizon.
        assert smoothing["max_skew_above_horizon"] < smoothing["max_skew_below_horizon"]
        assert smoothing["max_skew_above_horizon"] <= config.timing.d_max + config.timing.epsilon

    def test_fig10_vs_fig11_tail_shapes(self, config):
        from repro.analysis.histograms import tail_fraction

        zero = fig10.run(config)
        ramp = fig11.run(config)
        # Scenario (i) is concentrated: hardly any intra-layer skew above d+
        # and little mass beyond d-.
        assert zero.summary()["intra_frac_above_dmax"] < 0.01
        assert tail_fraction(zero.intra_values, config.timing.d_min) < 0.02
        # Scenario (iv) has the extra cluster near the end of the tail (close
        # to d+) that the paper describes.
        assert tail_fraction(ramp.intra_values, config.timing.d_min) > 0.1
        assert tail_fraction(ramp.intra_values, config.timing.epsilon) > tail_fraction(
            zero.intra_values, config.timing.epsilon
        )
        assert ramp.intra.total == zero.intra.total

    def test_fig12_per_layer_smoothing(self, config):
        result = fig12.run(config)
        ramp_series = result.series[Scenario.RAMP]
        early_max = ramp_series["max"][0]
        late_max = ramp_series["max"][-1]
        assert late_max < early_max
        # Scenario (iv) smooths out within about W - 2 layers (Lemma 3).
        assert result.smoothing_layer(Scenario.RAMP, tolerance=1.0) <= 2 * config.width
        # Scenario (iii) is flat from the start: its max series stays near d+ + eps.
        flat = result.series[Scenario.UNIFORM_DMAX]["max"]
        assert np.nanmax(flat) <= 2 * config.timing.d_max


class TestFaultFigures:
    def test_fig13_fault_locality(self, config):
        result = fig13.run(config)
        summary = result.summary()
        assert summary["max_skew_at_distance_1"] >= summary["max_skew_at_distance_ge_3"] - 1e-9
        assert summary["max_intra_skew"] >= summary["max_skew_at_distance_ge_3"]

    def test_fig14_five_faults_do_not_break_propagation(self, config):
        result = fig14.run(config)
        assert result.fault_model.num_faulty_nodes == 5
        assert result.summary()["all_correct_triggered"] == 1.0

    def test_fig15_growth_and_locality(self, config):
        result = fig15.run(config, fault_counts=(0, 1, 3))
        # Skews grow with f ...
        assert result.stats(3, hops=0).intra_max >= result.stats(0, hops=0).intra_max - 1e-9
        # ... far slower than the worst-case allowance of ~5 f d+ ...
        growth = result.max_skew_growth(hops=0)
        assert growth < 5 * 3 * config.timing.d_max
        # ... and discarding the 1-hop out-neighbourhood removes most of it.
        assert result.max_skew_growth(hops=1) <= result.max_skew_growth(hops=0) + 1e-9

    def test_fig17_summary_shape(self):
        result = fig17.run()
        summary = result.summary()
        assert summary["max_intra_skew_in_dmax"] >= 3.0
        assert summary["intra_minus_inter_in_dmax"] == pytest.approx(1.0, abs=0.5)


class TestWorstCaseAndBounds:
    def test_fig05_focus_skew_exceeds_typical(self, config):
        result = fig05.run()
        summary = result.summary()
        assert summary["focus_skew"] > 2 * result.construction.timing.d_max
        assert summary["focus_skew"] <= summary["lemma4_bound"] + 1e-9

    def test_theorem1_bounds_hold(self, config):
        result = theorem1.run(config, runs=3)
        assert result.holds()
        summary = result.summary()
        assert summary["observed_intra_max_scenario_i"] < summary["theorem1_bound_quoted_in_paper"]

    def test_clocktree_comparison_shape(self):
        result = clocktree_comparison.run(tree_levels=(2, 4), runs_per_size=2, seed=1)
        assert result.wire_length_growth() == pytest.approx(4.0)
        assert "tree" in result.render()


class TestStabilizationFigures:
    def test_fig18_conservative_bound_stabilizes_fast(self):
        config = ExperimentConfig(layers=12, width=8, runs=3, num_pulses=5, seed=5)
        sweep = fig18.run(
            config,
            fault_counts=(0, 2),
            choices=(0, 3),
            fault_types=(FaultType.BYZANTINE,),
        )
        conservative = sweep.point(0, 0, FaultType.BYZANTINE)
        assert conservative.num_stabilized == conservative.num_runs
        assert conservative.average <= 2.5
        # The aggressive bound (C = 3) cannot stabilize faster than the
        # conservative one.
        aggressive = sweep.point(2, 3, FaultType.BYZANTINE)
        if aggressive.num_stabilized:
            assert aggressive.average >= conservative.average - 1e-9
        rows = sweep.rows(FaultType.BYZANTINE)
        assert len(rows) == 4
        assert "Stabilization" in sweep.render()


class TestCLI:
    def test_list_and_simulate(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "fig15" in output

        assert main([
            "simulate", "--layers", "8", "--width", "6", "--scenario", "iii",
            "--faults", "1", "--runs", "2", "--seed", "3",
        ]) == 0
        output = capsys.readouterr().out
        assert "intra_max" in output

    def test_run_single_experiment(self, capsys):
        from repro.cli import main

        assert main(["run", "fig17"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 17" in output

    def test_no_command_prints_help(self, capsys):
        from repro.cli import main

        assert main([]) == 1


class TestAblation:
    def test_fault_type_ablation_shape(self, config):
        from repro.experiments import ablation_faulttype

        result = ablation_faulttype.run(config, num_faults=2)
        stats = result.statistics
        assert stats["fail_silent"].intra_max >= stats["fault_free"].intra_max - 1e-9
        assert stats["byzantine"].intra_max >= stats["fail_silent"].intra_max - 0.5
        assert result.byzantine_excess_over_fail_silent() >= -0.5
        assert "ablation" in result.render().lower()
