"""Command-line interface: ``python -m repro`` / ``hex-repro``.

Subcommands
-----------
``list``
    List all reproducible experiments (tables and figures).
``engines``
    List the registered execution engines and their capabilities
    (``--json`` for machine-readable output).
``topologies``
    List the registered grid topologies with node/link counts on a
    reference grid, their Condition-1 fault capacity and which engines
    support each (``--json`` for machine-readable output).
``run <experiment> [...]``
    Run one experiment and print its text report; ``all`` runs every one.
``simulate [...]``
    Run a one-off single-pulse simulation and print its skew statistics
    (a quick way to explore grid sizes / scenarios / fault counts).
``sweep [...]``
    Run a declarative parameter-sweep campaign (grid sizes x scenarios x
    fault counts x engines x delay models x fault schedules), serially or on
    a worker pool, with an optional resumable on-disk result cache.
``adversary <list|validate|preview> [...]``
    Work with dynamic fault schedules: list the built-in generator families,
    validate a schedule JSON file, or preview its materialized action
    timeline on a concrete grid and seed.
``bench [...]``
    Run the unified benchmark suites (``repro.bench``), emit the
    schema-versioned ``BENCH_*.json`` artifacts, and optionally gate
    against committed baselines (``--compare`` / ``--tolerance``); the
    regression gate's exit codes are 0 (pass), 1 (regression) and 3
    (missing/incomparable baseline).
``soak [...]``
    Long-horizon streaming soak run (``repro.experiments.soak``): millions
    of pulses under continuous per-epoch fault churn, with bounded-memory
    streaming telemetry and resumable ``hex-repro/soak/v1`` checkpoints.
``trace summarize <file>``
    Summarize an observability artifact -- a ``hex-repro/trace/v1`` JSONL
    trace, a ``hex-repro/metrics/v1`` snapshot or a ``hex-repro/soak/v1``
    checkpoint -- written with ``--trace`` / ``--metrics-out`` / ``--store``.
    ``--by-worker`` adds the per-worker rollup table of a merged
    parallel-campaign trace.
``trace merge <file>``
    Fold the ``<stem>-worker-<pid>.jsonl`` shards of a parallel campaign into
    one ordered trace (``repro.obs.merge``).  Normally automatic at campaign
    end; the verb re-runs the merge for shards left behind by an interrupted
    run (it is idempotent on already-merged traces).

Observability (``repro.obs``) is off by default; ``--trace FILE`` records
nested spans (plus per-event DES capture with ``--trace-events``) and
``--metrics-out FILE`` snapshots the counters/gauges/timers of the command.
Both cross process boundaries: under ``--workers N`` each pool worker traces
into its own shard (merged into FILE at exit) and its engine-level counters
fan back in under ``worker.*`` provenance.  Enabling either never changes
results: instrumentation reads state, it never draws randomness.  A global
``-v`` raises log verbosity; ``--version`` reports the installed package
version.

Examples
--------
::

    hex-repro --version
    hex-repro list
    hex-repro engines --json
    hex-repro topologies --json
    hex-repro run table1 --runs 50 --workers 8
    hex-repro run recovery --quick
    hex-repro run topology-scaling --quick
    hex-repro simulate --layers 30 --width 16 --scenario iv --faults 2 --seed 7
    hex-repro simulate --engine des --runs 5
    hex-repro simulate --topology torus --runs 5
    hex-repro sweep --layers 20,50 --scenarios i,iii --faults 0,1,2 \\
        --runs 25 --workers 4 --out sweep.jsonl
    hex-repro sweep --engine solver,des,clocktree --runs 10
    hex-repro sweep --topology cylinder,torus,patch --runs 10
    hex-repro sweep --engine des --fault-schedule burst.json --runs 10
    hex-repro sweep --spec campaign.json --workers 8 --store .hex-campaigns --resume
    hex-repro adversary list
    hex-repro adversary validate burst.json
    hex-repro adversary preview burst.json --layers 20 --width 10 --seed 7
    hex-repro bench --list
    hex-repro bench --quick --suite batch
    hex-repro bench --quick --out bench-out \\
        --compare benchmarks/baselines --tolerance 25
    hex-repro bench --quick --suite campaign --metrics --metrics-out bench-metrics.json
    hex-repro sweep --runs 5 --trace sweep-trace.jsonl --metrics-out sweep-metrics.json
    hex-repro simulate --engine des --runs 2 --trace run.jsonl --trace-events
    hex-repro sweep --runs 5 --workers 2 --trace par-trace.jsonl --metrics-out par-metrics.json
    hex-repro trace summarize sweep-trace.jsonl
    hex-repro trace summarize sweep-metrics.json --json
    hex-repro trace summarize sweep-trace.jsonl --top 5
    hex-repro trace merge par-trace.jsonl --expected-shards 2
    hex-repro trace summarize par-trace.jsonl --by-worker
    hex-repro soak --quick --store soak-artifacts
    hex-repro soak --layers 10 --width 6 --pulses 1000000 --store soak-artifacts --resume
    hex-repro trace summarize soak-artifacts/soak-<key>.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.adversary.schedule import BUILTIN_GENERATORS, FaultSchedule
from repro.analysis.skew import SkewStatistics
from repro.campaign.records import pooled_statistics, stabilization_times
from repro.campaign.runner import CampaignResult, CampaignRunner
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.clocksource.scenarios import scenario_label
from repro.core.topology import HexGrid
from repro.engines import available_engines, get_engine
from repro.engines.base import DELAY_MODELS
from repro.experiments import EXPERIMENTS, load_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_kv, format_table
from repro.experiments.single_pulse import run_scenario_set
from repro.faults.models import FaultType
from repro.topologies import (
    available_topologies,
    build_topology,
    condition1_fault_capacity,
    get_topology,
)

__all__ = ["main", "build_parser"]

#: Default directory of the ``sweep`` result cache.
DEFAULT_STORE_DIR = ".hex-campaigns"

_LOGGER = obs.get_logger("cli")


def _version() -> str:
    """The installed package version (``pyproject.toml`` metadata).

    Falls back to ``repro.__version__`` for source-tree (PYTHONPATH) use
    where no distribution metadata exists.
    """
    try:
        from importlib.metadata import version

        return version("hex-repro")
    except Exception:
        import repro

        return repro.__version__


def _int_list(text: str) -> List[int]:
    """Parse a comma-separated integer list (``"0,1,2"``)."""
    try:
        return [int(item) for item in text.split(",") if item.strip() != ""]
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}") from error


def _str_list(text: str) -> List[str]:
    """Parse a comma-separated string list (``"i,iii"``)."""
    return [item.strip() for item in text.split(",") if item.strip() != ""]


def _topology_list(text: str) -> List[str]:
    """Parse a comma-separated topology-spec list.

    Topology specs themselves use commas between parameters
    (``degraded:nodes=2,seed=3``), so a bare ``key=value`` segment binds to
    the preceding spec instead of starting a new one:
    ``"cylinder,degraded:nodes=2,seed=3"`` is two specs, not three.
    """
    result: List[str] = []
    for item in _str_list(text):
        if result and "=" in item and ":" not in item:
            result[-1] = f"{result[-1]},{item}"
        else:
            result.append(item)
    return result


def _add_observability_flags(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` / ``--metrics-out`` flags (repro.obs)."""
    group = subparser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a hex-repro/trace/v1 JSONL span trace of this command "
        "(summarize with 'hex-repro trace summarize FILE')",
    )
    group.add_argument(
        "--trace-events",
        action="store_true",
        help="also capture every DES simulation event into the trace "
        "(requires --trace; meant for single-run forensics)",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a hex-repro/metrics/v1 snapshot of the command's "
        "counters/gauges/timers",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="hex-repro",
        description="Reproduce the HEX clock-distribution paper (Dolev et al., SPAA'13/JCSS'16).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise log verbosity (repeatable; default shows info, -v shows debug)",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list all reproducible experiments")

    engines_parser = subparsers.add_parser(
        "engines", help="list the registered execution engines and their capabilities"
    )
    engines_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (one capability record per engine)",
    )

    topologies_parser = subparsers.add_parser(
        "topologies", help="list the registered grid topologies and which engines support each"
    )
    topologies_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (one record per topology family)",
    )
    topologies_parser.add_argument(
        "--layers", type=int, default=10, help="reference grid length L for the counts"
    )
    topologies_parser.add_argument(
        "--width", type=int, default=8, help="reference grid width W for the counts"
    )

    check_parser = subparsers.add_parser(
        "check",
        help="run the contract checks (layering, determinism, content keys, schemas)",
    )
    check_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the hex-repro/check-findings/v1 document instead of text",
    )
    check_parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable); skips the stale-waiver pass",
    )
    check_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list the registered rules and exit",
    )
    check_parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="package directory to scan (default: the installed repro package)",
    )
    check_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the JSON findings document to this path",
    )

    adversary_parser = subparsers.add_parser(
        "adversary", help="list, validate or preview dynamic fault schedules"
    )
    adversary_parser.add_argument(
        "action",
        choices=("list", "validate", "preview"),
        help="list built-in generators, validate a schedule file, or preview its timeline",
    )
    adversary_parser.add_argument(
        "file",
        nargs="?",
        default=None,
        metavar="FILE",
        help="fault-schedule JSON file (required for validate/preview)",
    )
    adversary_parser.add_argument(
        "--layers", type=int, default=20, help="preview grid length L"
    )
    adversary_parser.add_argument(
        "--width", type=int, default=10, help="preview grid width W"
    )
    adversary_parser.add_argument(
        "--seed", type=int, default=0, help="preview materialization seed"
    )

    bench_parser = subparsers.add_parser(
        "bench", help="run the unified benchmark suites and gate against baselines"
    )
    bench_parser.add_argument(
        "--list", action="store_true", help="list the registered suites and cases"
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: fewer Monte Carlo runs per data point",
    )
    bench_parser.add_argument(
        "--suite",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this suite (repeatable; default: all registered suites)",
    )
    bench_parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="Monte Carlo runs per data point (the HEX_BENCH_RUNS knob)",
    )
    bench_parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory for the BENCH_*.json files "
        "(default: $BENCH_OUT, then the current directory)",
    )
    bench_parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline BENCH JSON file or directory to gate medians against "
        "(exit 1 on regression, 3 on missing baseline)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=25.0,
        metavar="PCT",
        help="tolerated median slowdown in percent (default: 25)",
    )
    bench_parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the cases' scientific shape checks (timing only)",
    )
    bench_parser.add_argument(
        "--metrics",
        action="store_true",
        help="record repro.obs counter deltas alongside each case's times "
        "(slightly perturbs timings; keep off for gated --compare runs)",
    )
    bench_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the aggregated hex-repro/metrics/v1 snapshot of the "
        "bench run (implies --metrics)",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="work with observability artifacts (traces, metrics snapshots)"
    )
    trace_parser.add_argument(
        "action",
        choices=("summarize", "merge"),
        help="summarize a trace/metrics file, or merge worker trace shards "
        "of a parallel campaign into one ordered trace",
    )
    trace_parser.add_argument(
        "file", metavar="FILE", help="hex-repro/trace/v1 JSONL or hex-repro/metrics/v1 JSON"
    )
    trace_parser.add_argument(
        "--json", action="store_true", help="machine-readable summary output"
    )
    trace_parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show only the N span names with the largest total time "
        "(trace summaries only)",
    )
    trace_parser.add_argument(
        "--by-worker",
        action="store_true",
        help="add the per-worker rollup table of a merged multi-shard trace "
        "(trace summaries only)",
    )
    trace_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the merged trace here instead of replacing FILE in place "
        "(trace merge only)",
    )
    trace_parser.add_argument(
        "--keep-shards",
        action="store_true",
        help="leave absorbed worker shard files on disk after merging "
        "(trace merge only)",
    )
    trace_parser.add_argument(
        "--expected-shards",
        type=int,
        default=None,
        metavar="N",
        help="warn if fewer than N worker shards are found "
        "(trace merge only)",
    )

    soak_parser = subparsers.add_parser(
        "soak",
        help="long-horizon streaming soak run: bounded-memory telemetry under "
        "continuous fault churn",
    )
    soak_parser.add_argument(
        "--layers", type=int, default=10, help="grid length L (default: 10)"
    )
    soak_parser.add_argument(
        "--width", type=int, default=6, help="grid width W (default: 6)"
    )
    soak_parser.add_argument(
        "--pulses",
        type=int,
        default=1_000_000,
        help="total pulses to soak through (default: 1000000)",
    )
    soak_parser.add_argument(
        "--pulses-per-epoch",
        type=int,
        default=512,
        help="pulses per epoch; bounds peak memory (default: 512)",
    )
    soak_parser.add_argument(
        "--faults",
        type=int,
        default=2,
        help="faults injected (and healed) per epoch; 0 disables churn",
    )
    soak_parser.add_argument(
        "--fault-type",
        choices=tuple(ft.value for ft in (FaultType.BYZANTINE, FaultType.FAIL_SILENT)),
        default=FaultType.BYZANTINE.value,
        help="fault type of the per-epoch burst",
    )
    soak_parser.add_argument(
        "--heal-fraction",
        type=float,
        default=0.6,
        help="epoch-span fraction at which the burst heals (default: 0.6)",
    )
    soak_parser.add_argument("--seed", type=int, default=2013, help="base seed")
    soak_parser.add_argument(
        "--epsilon",
        type=float,
        default=0.005,
        help="quantile-sketch rank-error bound (default: 0.005)",
    )
    soak_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized preset: 10000 pulses on a 5x4 grid, 1 fault per epoch "
        "(explicit flags still win)",
    )
    soak_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="checkpoint directory (hex-repro/soak/v1 artifacts; no "
        "checkpoints without it)",
    )
    soak_parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the spec's checkpoint in --store when one exists",
    )
    soak_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="EPOCHS",
        help="checkpoint period in epochs (default: a quarter of the run)",
    )
    soak_parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-epoch progress lines"
    )
    soak_parser.add_argument(
        "--json", action="store_true", help="machine-readable result output"
    )
    _add_observability_flags(soak_parser)

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (see 'list'), or 'all'")
    run_parser.add_argument("--runs", type=int, default=None, help="runs per data point")
    run_parser.add_argument("--seed", type=int, default=None, help="base seed")
    run_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for campaign-backed experiments"
    )
    run_parser.add_argument(
        "--quick", action="store_true", help="use the small quick configuration (20x10 grid)"
    )
    run_parser.add_argument(
        "--paper", action="store_true", help="use the full paper-scale configuration (250 runs)"
    )
    _add_observability_flags(run_parser)

    sim_parser = subparsers.add_parser("simulate", help="one-off single-pulse simulation")
    sim_parser.add_argument("--layers", type=int, default=50, help="grid length L")
    sim_parser.add_argument("--width", type=int, default=20, help="grid width W")
    sim_parser.add_argument(
        "--scenario", default="i", help="layer-0 scenario: i, ii, iii, iv (or zero/ramp/...)"
    )
    sim_parser.add_argument("--faults", type=int, default=0, help="number of Byzantine nodes")
    sim_parser.add_argument(
        "--fail-silent", action="store_true", help="use fail-silent instead of Byzantine faults"
    )
    sim_parser.add_argument("--runs", type=int, default=10, help="number of runs")
    sim_parser.add_argument("--seed", type=int, default=1, help="base seed")
    sim_parser.add_argument(
        "--engine",
        choices=available_engines(),
        default="solver",
        help="execution engine (see 'hex-repro engines')",
    )
    sim_parser.add_argument(
        "--topology",
        default="cylinder",
        help="grid topology spec (see 'hex-repro topologies'), e.g. torus or "
        "degraded:nodes=3,seed=7",
    )
    sim_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for the run set"
    )
    _add_observability_flags(sim_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="parameter-sweep / Monte Carlo campaign over the simulation entry points"
    )
    sweep_parser.add_argument(
        "--spec", default=None, metavar="FILE", help="campaign spec JSON file (overrides the grid flags)"
    )
    sweep_parser.add_argument(
        "--name", default="sweep", help="campaign name (cache shard identity and report title)"
    )
    sweep_parser.add_argument(
        "--layers", type=_int_list, default=[50], help="comma-separated grid lengths L"
    )
    sweep_parser.add_argument(
        "--width", type=_int_list, default=[20], help="comma-separated grid widths W"
    )
    sweep_parser.add_argument(
        "--scenarios", type=_str_list, default=["i"], help="comma-separated scenarios (i,ii,iii,iv)"
    )
    sweep_parser.add_argument(
        "--faults", type=_int_list, default=[0], help="comma-separated fault counts"
    )
    sweep_parser.add_argument(
        "--fault-type",
        choices=tuple(ft.value for ft in (FaultType.BYZANTINE, FaultType.FAIL_SILENT)),
        default=FaultType.BYZANTINE.value,
        help="fault type for faulty runs",
    )
    sweep_parser.add_argument(
        "--engine",
        type=_str_list,
        default=["solver"],
        help="comma-separated engines (see 'hex-repro engines')",
    )
    sweep_parser.add_argument(
        "--delay-model",
        type=_str_list,
        default=["default"],
        help=f"comma-separated delay models / adversaries ({','.join(DELAY_MODELS)})",
    )
    sweep_parser.add_argument(
        "--topology",
        type=_topology_list,
        default=["cylinder"],
        help="comma-separated topology specs swept as a campaign axis "
        "(see 'hex-repro topologies'); key=value parameters bind to the "
        "preceding spec, e.g. cylinder,degraded:nodes=2,seed=3",
    )
    sweep_parser.add_argument(
        "--fault-schedule",
        default=None,
        metavar="FILE",
        help=(
            "fault-schedule JSON file swept as a campaign axis (a top-level list "
            "sweeps several schedules; requires --engine des)"
        ),
    )
    sweep_parser.add_argument("--runs", type=int, default=10, help="Monte Carlo runs per point")
    sweep_parser.add_argument("--seed", type=int, default=2013, help="base seed")
    sweep_parser.add_argument("--salt", type=int, default=0, help="seed salt of the sweep cell")
    sweep_parser.add_argument("--workers", type=int, default=1, help="worker processes")
    sweep_parser.add_argument(
        "--out", default=None, metavar="FILE", help="write canonical record JSONL to this file"
    )
    sweep_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=f"result-cache directory (default with --resume: {DEFAULT_STORE_DIR})",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true", help="reuse cached records instead of re-simulating"
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress the progress line and summary"
    )
    _add_observability_flags(sweep_parser)
    return parser


@contextlib.contextmanager
def _observability(args: argparse.Namespace):
    """Enable ``repro.obs`` for one command when its flags ask for it.

    Yields the :class:`repro.obs.ObsSession` (or ``None`` when every flag is
    off -- the zero-overhead default).  The metrics snapshot is written when
    the command body finishes, even on error, so a crashed sweep still
    leaves its artifacts behind.
    """
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace is None and metrics_out is None:
        if getattr(args, "trace_events", False):
            raise ValueError("--trace-events requires --trace FILE")
        yield None
        return
    if getattr(args, "trace_events", False) and trace is None:
        raise ValueError("--trace-events requires --trace FILE")
    session = obs.enable(
        metrics=True,
        trace=trace,
        des_events=getattr(args, "trace_events", False),
    )
    try:
        yield session
    finally:
        if metrics_out is not None:
            session.write_metrics(metrics_out)
        obs.disable()
        for label, path in (("trace", trace), ("metrics", metrics_out)):
            if path is not None:
                _LOGGER.info("%s -> %s (hex-repro trace summarize %s)", label, path, path)


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    if getattr(args, "paper", False):
        config = ExperimentConfig.paper()
    elif getattr(args, "quick", False):
        config = ExperimentConfig.quick()
    else:
        config = ExperimentConfig()
    # Compare against None explicitly: 0 is a *given* (invalid) value that must
    # surface a validation error, not silently fall back to the default.
    if getattr(args, "runs", None) is not None:
        config = config.with_runs(args.runs)
    if getattr(args, "seed", None) is not None:
        config = config.with_seed(args.seed)
    return config


def _run_experiment(name: str, args: argparse.Namespace) -> str:
    try:
        module = load_experiment(name)
    except KeyError as error:
        # Surface as a user-input error (main presents ValueError cleanly).
        raise ValueError(error.args[0]) from None
    config = _experiment_config(args)
    # Experiments differ slightly in their run() signatures; pass what they accept.
    import inspect

    signature = inspect.signature(module.run)
    kwargs = {}
    if "config" in signature.parameters:
        kwargs["config"] = config
    if "runs" in signature.parameters and args.runs is not None:
        kwargs["runs"] = args.runs
    if getattr(args, "workers", 1) != 1:
        if "workers" in signature.parameters:
            kwargs["workers"] = args.workers
        else:
            _LOGGER.warning("note: %s does not support --workers; running serially", name)
    result = module.run(**kwargs)
    render = getattr(result, "render", None)
    if callable(render):
        return render()
    return repr(result)


def _cmd_list() -> int:
    print("Available experiments:")
    for name in sorted(EXPERIMENTS):
        module = load_experiment(name)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:10s} {summary}")
    print()
    print("Execution engines: " + ", ".join(available_engines()) + " (see 'hex-repro engines')")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        payload = [
            {"name": name, **get_engine(name).capabilities.to_json_dict()}
            for name in available_engines()
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("Registered execution engines:")
    for name in available_engines():
        capabilities = get_engine(name).capabilities
        print(f"  {name:10s} [{capabilities.summary()}]  {capabilities.description}")
    return 0


def _cmd_topologies(args: argparse.Namespace) -> int:
    layers, width = args.layers, args.width
    entries = []
    for name in available_topologies():
        family = get_topology(name)
        entry = {
            "name": name,
            "description": family.description,
            "min_layers": family.min_layers,
            "min_width": family.min_width,
            "params": dict(family.param_defaults),
            "engines": [
                engine
                for engine in available_engines()
                if get_engine(engine).capabilities.supports_topology(name)
            ],
        }
        try:
            grid = build_topology(name, layers, width)
            entry.update(
                reference_grid=f"{layers}x{width}",
                num_nodes=int(getattr(grid, "num_present_nodes", grid.num_nodes)),
                num_links=int(grid.num_links()),
                condition1_fault_capacity=int(condition1_fault_capacity(grid)),
            )
        except ValueError as error:
            entry["error"] = str(error)
        entries.append(entry)
    if getattr(args, "json", False):
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    print(f"Registered grid topologies (counts on a {layers}x{width} reference grid):")
    for entry in entries:
        print(f"  {entry['name']:10s} {entry['description']}")
        if "error" in entry:
            print(f"  {'':10s}   not buildable at {layers}x{width}: {entry['error']}")
        else:
            print(
                f"  {'':10s}   {entry['num_nodes']} nodes, {entry['num_links']} links, "
                f"Condition-1 capacity >= {entry['condition1_fault_capacity']}, "
                f"engines: {', '.join(entry['engines'])}"
            )
        if entry["params"]:
            params = ", ".join(f"{key}={value}" for key, value in sorted(entry["params"].items()))
            print(f"  {'':10s}   parameters (defaults): {params}")
    print()
    print(
        "Topology specs are 'family' or 'family:key=value,...' strings, e.g. "
        "'torus' or 'degraded:base=patch,nodes=3,links=2,seed=7'."
    )
    return 0


def _load_schedule_axis(path: str) -> tuple:
    """Load one schedule (object) or several (top-level list) from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, list):
        if not payload:
            raise ValueError(f"{path}: schedule list must not be empty")
        return tuple(FaultSchedule.from_json_dict(item) for item in payload)
    return (FaultSchedule.from_json_dict(payload),)


def _cmd_adversary(args: argparse.Namespace) -> int:
    if args.action == "list":
        print("Built-in fault-schedule generators (repro.adversary.FaultSchedule):")
        for name, (_factory, description, example) in sorted(BUILTIN_GENERATORS.items()):
            print(f"  {name:18s} {description}")
            print(f"  {'':18s}   e.g. FaultSchedule.{name}({_format_kwargs(example)})")
        print()
        print(
            "Schedule files are JSON: "
            '{"schema": "hex-repro/fault-schedule/v1", "label": "...", '
            '"directives": [{"kind": "burst", "time": 100.0, "count": 3, ...}, ...]}'
        )
        print("Directive kinds: inject, heal, crash, flip_behavior, burst, cluster,")
        print("intermittent_link, mobile.  See repro.adversary.schedule for fields.")
        return 0

    if args.file is None:
        raise ValueError(f"'adversary {args.action}' requires a schedule FILE argument")
    schedules = _load_schedule_axis(args.file)
    for index, schedule in enumerate(schedules):
        label = schedule.label or f"#{index}"
        print(
            f"schedule {label}: {len(schedule.directives)} directive(s), "
            f"key {schedule.key(16)}"
        )
        if args.action == "preview":
            grid = HexGrid(layers=args.layers, width=args.width)
            adversary = schedule.materialize(
                grid, np.random.default_rng(args.seed)
            )
            print(
                f"  materialized on a {args.layers}x{args.width} grid "
                f"(seed {args.seed}): {adversary.num_actions} action(s)"
            )
            for line in adversary.describe():
                print(f"  {line}")
    if args.action == "validate":
        print(f"{args.file}: OK")
    return 0


def _format_kwargs(example: dict) -> str:
    return ", ".join(f"{key}={value!r}" for key, value in example.items())


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: loading the suites pulls in the whole experiments
    # layer, which the other subcommands do not need.
    from repro import bench

    bench.load_builtin_suites()
    if args.list:
        print("Registered benchmark suites:")
        for suite in bench.available_suites():
            names = ", ".join(case.name for case in bench.cases_in_suite(suite))
            print(f"  {suite:10s} {names}")
        return 0

    settings = bench.BenchSettings.from_env(quick=args.quick)
    if args.runs is not None:
        import dataclasses

        settings = dataclasses.replace(settings, runs=args.runs)
    out_dir = bench.bench_output_dir(args.out)
    with_metrics = args.metrics or args.metrics_out is not None
    session = obs.enable(metrics=True) if with_metrics else None
    try:
        payloads = bench.run_suites(
            suites=args.suite,
            settings=settings,
            out=str(out_dir),
            check=not args.no_check,
            log=_LOGGER.info,
        )
    finally:
        if session is not None:
            if args.metrics_out is not None:
                session.write_metrics(args.metrics_out)
            obs.disable()
    print(
        f"{len(payloads)} suite(s) in {settings.mode} mode -> "
        f"{out_dir / 'BENCH_suite.json'}"
    )
    if args.metrics_out is not None:
        print(f"metrics -> {args.metrics_out}")
    if args.compare is None:
        return 0
    baseline = bench.load_baseline(args.compare)
    if args.suite:
        # An explicit --suite selection is a deliberate subset: compare only
        # the selected suites instead of flagging the rest as missing.
        baseline = {suite: payload for suite, payload in baseline.items() if suite in args.suite}
    report = bench.compare_payloads(payloads, baseline, tolerance_pct=args.tolerance)
    print(report.render())
    return report.exit_code()


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str]
    if args.experiment.lower() == "all":
        names = sorted(EXPERIMENTS)
    else:
        names = [args.experiment]
    with _observability(args):
        for name in names:
            print(f"=== {name} ===")
            print(_run_experiment(name, args))
            print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        layers=args.layers, width=args.width, runs=args.runs, seed=args.seed
    )
    fault_type = FaultType.FAIL_SILENT if args.fail_silent else FaultType.BYZANTINE
    with _observability(args):
        run_set = run_scenario_set(
            config,
            args.scenario,
            num_faults=args.faults,
            fault_type=fault_type,
            engine=args.engine,
            topology=args.topology,
            workers=args.workers,
        )
    stats: SkewStatistics = run_set.statistics()
    header = (
        f"{args.runs} runs on a {args.layers}x{args.width} {run_set.topology} grid, "
        f"scenario {scenario_label(args.scenario)}, "
        f"{args.faults} {fault_type.value} fault(s), engine {args.engine}"
    )
    print(format_kv(stats.as_row(), title=header))
    return 0


#: Sweep flags that conflict with --spec, with their argparse defaults.
_SPEC_EXCLUSIVE_FLAGS = {
    "--name": ("name", "sweep"),
    "--layers": ("layers", [50]),
    "--width": ("width", [20]),
    "--scenarios": ("scenarios", ["i"]),
    "--faults": ("faults", [0]),
    "--fault-type": ("fault_type", FaultType.BYZANTINE.value),
    "--engine": ("engine", ["solver"]),
    "--delay-model": ("delay_model", ["default"]),
    "--fault-schedule": ("fault_schedule", None),
    "--topology": ("topology", ["cylinder"]),
    "--runs": ("runs", 10),
    "--seed": ("seed", 2013),
    "--salt": ("salt", 0),
}


def _sweep_spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec is not None:
        # The spec file is authoritative; reject grid flags rather than
        # silently ignoring them (e.g. --spec f.json --runs 250).
        overridden = [
            flag
            for flag, (attr, default) in _SPEC_EXCLUSIVE_FLAGS.items()
            if getattr(args, attr) != default
        ]
        if overridden:
            raise ValueError(
                f"--spec is exclusive with {', '.join(overridden)}; "
                "edit the spec file instead"
            )
        return CampaignSpec.from_file(args.spec)
    for engine in args.engine:
        # Fail before the campaign is built so a typo surfaces as a one-line
        # CLI error listing the registered engines.
        get_engine(engine)
    schedule_axis = (
        _load_schedule_axis(args.fault_schedule)
        if args.fault_schedule is not None
        else (None,)
    )
    cell = SweepSpec(
        layers=tuple(args.layers),
        width=tuple(args.width),
        scenario=tuple(args.scenarios),
        num_faults=tuple(args.faults),
        fault_type=args.fault_type,
        engine=tuple(args.engine),
        delay_model=tuple(args.delay_model),
        fault_schedule=schedule_axis,
        topology=tuple(args.topology),
        runs=args.runs,
        seed_salt=args.salt,
    )
    return CampaignSpec(name=args.name, seed=args.seed, cells=(cell,))


def _render_sweep_summary(result: CampaignResult) -> str:
    """Per-point summary table of a finished campaign."""
    single_rows: List[List[object]] = []
    multi_rows: List[List[object]] = []
    for (cell_index, point_index), records in result.grouped().items():
        params = records[0].params
        label = [
            cell_index,
            point_index,
            f"{params['layers']}x{params['width']}",
            params.get("topology", "cylinder"),
            scenario_label(params["scenario"]),
            params["num_faults"],
            params.get("fault_type") or "-",
            params["engine"],
            len(records),
        ]
        if records[0].kind == "single_pulse" and records[0].trigger_times is not None:
            row = pooled_statistics(records).as_row()
            single_rows.append(
                label
                + [row["intra_avg"], row["intra_q95"], row["intra_max"], row["inter_max"]]
            )
        elif records[0].kind == "multi_pulse":
            times = stabilization_times(records)
            finite = times[np.isfinite(times)]
            multi_rows.append(
                label
                + [
                    float(finite.mean()) if finite.size else float("nan"),
                    int(finite.size),
                ]
            )
        else:  # summary-only records (keep_times=False)
            single_rows.append(label + [float("nan")] * 4)
    parts: List[str] = []
    if single_rows:
        headers = [
            "cell", "pt", "grid", "topology", "scenario", "f", "fault_type", "engine", "runs",
            "intra_avg", "intra_q95", "intra_max", "inter_max",
        ]
        parts.append(format_table(headers, single_rows, title=f"Campaign {result.spec.name}"))
    if multi_rows:
        headers = [
            "cell", "pt", "grid", "topology", "scenario", "f", "fault_type", "engine", "runs",
            "stab_avg", "stabilized",
        ]
        parts.append(
            format_table(headers, multi_rows, title=f"Campaign {result.spec.name} (stabilization)")
        )
    return "\n\n".join(parts)


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _sweep_spec_from_args(args)
    store = args.store
    if store is None and args.resume:
        store = DEFAULT_STORE_DIR
    runner = CampaignRunner(
        spec,
        workers=args.workers,
        store=store,
        resume=args.resume,
        progress=not args.quiet,
    )
    with _observability(args):
        result = runner.run()

    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            for record in result.records:
                handle.write(record.canonical_json() + "\n")

    if not args.quiet:
        print(_render_sweep_summary(result))
        print()
        print(
            f"{spec.num_tasks} tasks: {result.executed} simulated, "
            f"{result.cached} from cache, {result.wall_time_s:.2f}s wall time"
            + (f", records -> {args.out}" if args.out is not None else "")
        )
        times = result.wall_time_summary()
        print(
            f"task wall time: total {times['task_total_s']:.2f}s, "
            f"median {times['task_median_s'] * 1e3:.1f}ms, "
            f"p95 {times['task_p95_s'] * 1e3:.1f}ms, "
            f"{times['tasks_per_s']:.1f} tasks/s"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.action == "merge":
        from repro.obs.merge import merge_trace

        report = merge_trace(
            args.file,
            out=args.out,
            expected_shards=args.expected_shards,
            keep_shards=args.keep_shards,
        )
        for message in report.warnings:
            print(f"warning: {message}", file=sys.stderr)
        print(report.summary_line())
        return 0
    from repro.obs.summary import render_summary, summarize_file, summary_to_json

    summary = summarize_file(args.file)
    if args.json:
        print(summary_to_json(summary))
    else:
        print(render_summary(summary, top=args.top, by_worker=args.by_worker))
    return 0


#: The ``soak --quick`` preset, applied only to flags still at their
#: argparse defaults (an explicit flag always wins, mirroring the
#: ``--spec``-exclusivity convention of ``sweep``).
_SOAK_QUICK_PRESET = {
    "layers": (10, 5),
    "width": (6, 4),
    "pulses": (1_000_000, 10_000),
    "pulses_per_epoch": (512, 500),
    "faults": (2, 1),
}


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.experiments.soak import SoakSpec, run_soak

    if args.quick:
        for attr, (default, quick_value) in _SOAK_QUICK_PRESET.items():
            if getattr(args, attr) == default:
                setattr(args, attr, quick_value)
    spec = SoakSpec(
        layers=args.layers,
        width=args.width,
        num_pulses=args.pulses,
        pulses_per_epoch=args.pulses_per_epoch,
        faults=args.faults,
        fault_type=args.fault_type,
        heal_fraction=args.heal_fraction,
        epsilon=args.epsilon,
        seed=args.seed,
    )

    def progress(stats) -> None:
        print(
            f"  epoch {int(stats['epoch'])}/{int(stats['epochs'])}: "
            f"{int(stats['pulses'])} pulses, {stats['pulses_per_s']:.0f}/s, "
            f"skew p50 {stats['skew_p50']:.3g} p95 {stats['skew_p95']:.3g}, "
            f"{int(stats['recoveries'])} recoveries, "
            f"rss {stats['rss_bytes'] / 1e6:.0f}MB",
            flush=True,
        )

    with _observability(args):
        result = run_soak(
            spec,
            store=args.store,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            progress=None if (args.quiet or args.json) else progress,
        )
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        print("\n".join(result.render()))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.checks import available_rules, load_builtin_rules, run_checks

    load_builtin_rules()
    if args.list_rules:
        for rule in available_rules():
            waiver = f"allow-{rule.waiver}" if rule.waiver else "(not waivable)"
            print(f"{rule.id}  {rule.name:28s} {rule.severity:8s} {waiver}")
            if rule.doc:
                print(f"      {rule.doc}")
        return 0
    report = run_checks(
        root=Path(args.root) if args.root else None,
        rule_ids=args.rule,
    )
    document = json_module.dumps(report.to_json_dict(), sort_keys=True, indent=2)
    if args.out:
        out_path = Path(args.out)
        if out_path.parent != Path(""):
            out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(document + "\n", encoding="utf-8")
    if args.json:
        print(document)
    else:
        print(report.render())
    return report.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    obs.configure_logging(args.verbose)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "engines":
            return _cmd_engines(args)
        if args.command == "topologies":
            return _cmd_topologies(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "adversary":
            return _cmd_adversary(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "soak":
            return _cmd_soak(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except (ValueError, FileNotFoundError) as error:
        # Domain validation (bad scenario, runs=0, workers=0, unknown
        # experiment, missing or malformed spec file): present as a CLI
        # error, not a traceback.  Other exception types are internal bugs
        # and keep their traceback.
        print(f"{parser.prog}: error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Stdout consumer (e.g. `| head`) closed early; exit quietly like
        # other well-behaved CLIs.  Detach stdout so the interpreter's
        # shutdown flush does not raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
