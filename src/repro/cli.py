"""Command-line interface: ``python -m repro`` / ``hex-repro``.

Subcommands
-----------
``list``
    List all reproducible experiments (tables and figures).
``run <experiment> [...]``
    Run one experiment and print its text report; ``all`` runs every one.
``simulate [...]``
    Run a one-off single-pulse simulation and print its skew statistics
    (a quick way to explore grid sizes / scenarios / fault counts).

Examples
--------
::

    hex-repro list
    hex-repro run table1 --runs 50
    hex-repro run fig15 --quick
    hex-repro simulate --layers 30 --width 16 --scenario iv --faults 2 --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.skew import SkewStatistics
from repro.clocksource.scenarios import scenario_label, scenario_layer0_times
from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid
from repro.experiments import EXPERIMENTS, load_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_kv
from repro.experiments.single_pulse import run_scenario_set
from repro.faults.models import FaultType

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="hex-repro",
        description="Reproduce the HEX clock-distribution paper (Dolev et al., SPAA'13/JCSS'16).",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list all reproducible experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (see 'list'), or 'all'")
    run_parser.add_argument("--runs", type=int, default=None, help="runs per data point")
    run_parser.add_argument("--seed", type=int, default=None, help="base seed")
    run_parser.add_argument(
        "--quick", action="store_true", help="use the small quick configuration (20x10 grid)"
    )
    run_parser.add_argument(
        "--paper", action="store_true", help="use the full paper-scale configuration (250 runs)"
    )

    sim_parser = subparsers.add_parser("simulate", help="one-off single-pulse simulation")
    sim_parser.add_argument("--layers", type=int, default=50, help="grid length L")
    sim_parser.add_argument("--width", type=int, default=20, help="grid width W")
    sim_parser.add_argument(
        "--scenario", default="i", help="layer-0 scenario: i, ii, iii, iv (or zero/ramp/...)"
    )
    sim_parser.add_argument("--faults", type=int, default=0, help="number of Byzantine nodes")
    sim_parser.add_argument(
        "--fail-silent", action="store_true", help="use fail-silent instead of Byzantine faults"
    )
    sim_parser.add_argument("--runs", type=int, default=10, help="number of runs")
    sim_parser.add_argument("--seed", type=int, default=1, help="base seed")
    return parser


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    if getattr(args, "paper", False):
        config = ExperimentConfig.paper()
    elif getattr(args, "quick", False):
        config = ExperimentConfig.quick()
    else:
        config = ExperimentConfig()
    if getattr(args, "runs", None):
        config = config.with_runs(args.runs)
    if getattr(args, "seed", None) is not None:
        config = config.with_seed(args.seed)
    return config


def _run_experiment(name: str, args: argparse.Namespace) -> str:
    module = load_experiment(name)
    config = _experiment_config(args)
    # Experiments differ slightly in their run() signatures; pass what they accept.
    import inspect

    signature = inspect.signature(module.run)
    kwargs = {}
    if "config" in signature.parameters:
        kwargs["config"] = config
    if "runs" in signature.parameters and args.runs is not None:
        kwargs["runs"] = args.runs
    result = module.run(**kwargs)
    render = getattr(result, "render", None)
    if callable(render):
        return render()
    return repr(result)


def _cmd_list() -> int:
    print("Available experiments:")
    for name in sorted(EXPERIMENTS):
        module = load_experiment(name)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:10s} {summary}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str]
    if args.experiment.lower() == "all":
        names = sorted(EXPERIMENTS)
    else:
        names = [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        print(_run_experiment(name, args))
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        layers=args.layers, width=args.width, runs=args.runs, seed=args.seed
    )
    fault_type = FaultType.FAIL_SILENT if args.fail_silent else FaultType.BYZANTINE
    run_set = run_scenario_set(
        config,
        args.scenario,
        num_faults=args.faults,
        fault_type=fault_type,
    )
    stats: SkewStatistics = run_set.statistics()
    header = (
        f"{args.runs} runs on a {args.layers}x{args.width} grid, "
        f"scenario {scenario_label(args.scenario)}, "
        f"{args.faults} {fault_type.value} fault(s)"
    )
    print(format_kv(stats.as_row(), title=header))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
