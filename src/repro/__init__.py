"""HEX: Byzantine fault-tolerant, self-stabilizing clock distribution on hexagonal grids.

This package is a faithful, laptop-scale reproduction of

    Dolev, Fuegger, Lenzen, Perner, Schmid:
    "HEX: Scaling honeycombs is easier than scaling clock trees",
    SPAA 2013 / Journal of Computer and System Sciences 82 (2016) 929-956.

The package is organised as a set of subsystems (see ``DESIGN.md`` at the
repository root for the full inventory):

``repro.core``
    The paper's contribution: the cylindric hexagonal grid topology, the HEX
    pulse-forwarding algorithm (Algorithm 1 / Fig. 7 state machines), the
    analytic single-pulse solver, causal/zig-zag path machinery
    (Definitions 1-2), the worst-case skew bounds (Lemmas 3-5, Corollary 1,
    Theorems 1-2) and deterministic worst-case constructions (Figs. 5 and 17).

``repro.topologies``
    Pluggable grid shapes behind one protocol, spec grammar and registry:
    the paper's ``cylinder``, a boundary-free ``torus``, an open-boundary
    ``patch`` and ``degraded`` grids with seeded punctured nodes / severed
    links -- all sweepable through ``RunSpec.topology`` and the campaign
    ``topology`` axis.

``repro.simulation``
    A discrete-event simulator replacing the paper's ModelSim/VHDL testbed.

``repro.engines``
    The unified execution API: the ``Engine`` protocol, the JSON-serializable
    ``RunSpec`` run description, the unified ``RunResult`` and the registry of
    backends (``solver``, ``des``, ``clocktree``).

``repro.clocksource``
    Layer-0 pulse generation: the four skew scenarios of Table 1 and a
    multi-pulse synchronized source with pulse separation ``S`` and drift.

``repro.faults``
    Fault injection: Byzantine (per-link constant-0/constant-1), fail-silent
    and crash faults, plus Condition 1 (fault separation) placement.

``repro.adversary``
    Dynamic adversaries: declarative, JSON-round-trippable fault schedules
    (timed inject/heal/crash/flip events; burst, cluster, intermittent-link
    and mobile-fault generators), delay adversaries within ``[d-, d+]``, and
    the materialized runtime actions the DES engine executes -- the workload
    layer behind the paper's self-stabilization claims.

``repro.analysis``
    Skew statistics, histograms, stabilization-time estimation and
    fault-locality analysis (the paper's Haskell post-processing).

``repro.clocktree``
    The baseline of the title: an H-tree clock distribution model used for the
    HEX-vs-clock-tree scaling comparison.

``repro.multiplication`` and ``repro.embedding``
    The Section 5 extensions: frequency multiplication and physical embedding
    (flattened cylinder and doubling-layer topologies).

``repro.campaign``
    Parallel sweep and Monte Carlo campaign orchestration: declarative
    :class:`~repro.campaign.spec.CampaignSpec` grids, deterministic per-run
    seed derivation, a ``multiprocessing`` runner, flat JSON run records and
    a resumable content-addressed on-disk cache.

``repro.experiments``
    One module per table/figure of the evaluation section, each of which
    regenerates the corresponding rows/series on top of ``repro.campaign``.

Quickstart
----------
The one entry point for execution is the engine registry: describe the run as
a :class:`~repro.engines.base.RunSpec` and hand it to a registered engine
(``solver`` / ``des`` / ``clocktree`` / ``array``):

>>> from repro.engines import RunSpec, get_engine
>>> spec = RunSpec(layers=10, width=8, scenario="zero", entropy=1)
>>> result = get_engine("solver").run(spec)
>>> result.trigger_times.shape
(11, 8)
"""

from __future__ import annotations

from repro.analysis.skew import SkewStatistics, inter_layer_skews, intra_layer_skews
from repro.core.bounds import (
    corollary1_intra_layer_bound,
    lemma3_skew_potential_bound,
    lemma4_intra_layer_bound,
    lemma5_pulse_skew_bound,
    theorem1_intra_layer_bound,
)
from repro.core.parameters import TimeoutConfig, TimingConfig, condition2_timeouts
from repro.core.pulse_solver import PulseSolution, solve_single_pulse
from repro.core.topology import Direction, HexGrid, LinkId, NodeId
from repro.engines import (
    Engine,
    EngineCapabilities,
    RunResult,
    RunSpec,
    available_engines,
    get_engine,
    register_engine,
)
from repro.faults.models import FaultModel, FaultType
from repro.faults.placement import check_condition1, place_faults
from repro.simulation.runner import (
    MultiPulseResult,
    SinglePulseResult,
    simulate_multi_pulse,
    simulate_single_pulse,
)
from repro.topologies import (
    Topology,
    available_topologies,
    build_topology,
    get_topology,
    register_topology,
)

__version__ = "1.0.0"

__all__ = [
    "HexGrid",
    "NodeId",
    "LinkId",
    "Direction",
    "TimingConfig",
    "TimeoutConfig",
    "condition2_timeouts",
    "solve_single_pulse",
    "PulseSolution",
    "theorem1_intra_layer_bound",
    "lemma3_skew_potential_bound",
    "lemma4_intra_layer_bound",
    "corollary1_intra_layer_bound",
    "lemma5_pulse_skew_bound",
    "simulate_single_pulse",
    "simulate_multi_pulse",
    "SinglePulseResult",
    "MultiPulseResult",
    "Engine",
    "EngineCapabilities",
    "RunSpec",
    "RunResult",
    "available_engines",
    "get_engine",
    "register_engine",
    "SkewStatistics",
    "intra_layer_skews",
    "inter_layer_skews",
    "FaultModel",
    "FaultType",
    "place_faults",
    "check_condition1",
    "Topology",
    "available_topologies",
    "build_topology",
    "get_topology",
    "register_topology",
    "__version__",
]
