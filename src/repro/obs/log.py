"""Logging setup for the ``repro`` namespace.

Every module that wants to emit diagnostics uses
``logging.getLogger("repro.<area>")``; :func:`configure_logging` is the single
entry point that attaches a stderr handler to the ``repro`` root logger.  The
CLI calls it once, early in ``main``, with the count of ``-v`` flags.

Verbosity mapping:

* ``0`` (default) -- INFO and above, formatted as bare messages.  The notes
  and progress lines that previously went through bare
  ``print(..., file=sys.stderr)`` are INFO/WARNING records, so the default
  CLI experience is unchanged.
* ``1+`` (``-v``) -- DEBUG, with ``LEVEL logger:`` prefixes.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging", "get_logger"]

#: Name of the namespace root logger.
ROOT_LOGGER = "repro"

_LEVELS = {0: logging.INFO}


def get_logger(area: str = "") -> logging.Logger:
    """The ``repro``-namespaced logger for ``area`` (e.g. ``"cli"``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{area}" if area else ROOT_LOGGER)


def configure_logging(verbosity: int = 0, stream: Optional[TextIO] = None) -> logging.Logger:
    """Attach (or reconfigure) the stderr handler of the ``repro`` logger.

    Idempotent: calling again replaces the handler installed by a previous
    call instead of stacking duplicates, so tests and repeated CLI entry are
    safe.  Returns the configured root logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(_LEVELS.get(verbosity, logging.DEBUG))
    # Messages must not escape into an application's root logger config.
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_handler = True  # type: ignore[attr-defined]
    if verbosity >= 1:
        formatter = logging.Formatter("%(levelname)s %(name)s: %(message)s")
    else:
        formatter = logging.Formatter("%(message)s")
    handler.setFormatter(formatter)
    logger.addHandler(handler)
    return logger
