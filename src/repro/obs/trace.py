"""Span-style tracing with a JSONL file sink.

A trace file is newline-delimited JSON carrying the ``hex-repro/trace/v1``
schema.  The first line is a header record; every following line is either a
``span`` (a timed region, written when the span closes) or an ``event`` (a
point-in-time record, e.g. one DES event when per-run event capture is on)::

    {"type": "header", "schema": "hex-repro/trace/v1", "schema_version": 1}
    {"type": "span", "name": "engine.run", "span_id": 3, "parent_id": 2, ...}
    {"type": "event", "name": "des.event", "span_id": 3, ...}

Spans nest: :meth:`Tracer.span` pushes onto a per-tracer stack, so a span
opened inside ``campaign.run`` records that span's id as its ``parent_id``.
Durations come from ``time.perf_counter``; the wall-clock anchor of the whole
trace is irrelevant, so ``start_s`` values are offsets from tracer creation.

Like the metrics registry, the tracer only *reads* program state -- it never
draws randomness and never mutates anything in the deterministic core.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from repro.checks.schemas import schema

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TraceSink",
    "Tracer",
    "load_trace",
    "load_trace_records",
]

#: Schema tag carried in the header line of a trace file.
TRACE_SCHEMA = schema("trace")

#: Version number of the trace schema.
TRACE_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


class TraceSink:
    """Buffered JSONL writer for trace records.

    The header line is written eagerly on construction so that even an empty
    (or crashed) run leaves a parseable, schema-identified file behind.
    ``header_extra`` fields are merged into the header record; worker shards
    of a parallel campaign use them to carry their trace id, pid and the
    orchestrator span they hang under (see :mod:`repro.obs.context`).
    """

    def __init__(
        self,
        path: Union[str, Path],
        header_extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        header: Dict[str, Any] = {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "schema_version": TRACE_SCHEMA_VERSION,
        }
        if header_extra:
            header.update({key: _jsonable(value) for key, value in header_extra.items()})
        self.write(header)

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a JSON line (no-op after :meth:`close`)."""
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Span:
    """One open span; records itself to the sink when closed."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "depth", "start", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = time.perf_counter()
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach extra attributes to the span before it closes."""
        self.attrs.update(attrs)


class Tracer:
    """Produces nested spans and point events, writing them to a sink.

    ``origin`` overrides the timeline anchor: by default ``start_s`` values
    are offsets from tracer creation, but worker tracers of a parallel
    campaign are anchored at the *parent's* origin so every shard shares one
    timeline (``time.perf_counter`` is ``CLOCK_MONOTONIC`` on Linux --
    comparable across processes on one machine).  ``id_offset`` namespaces
    span ids (workers use ``pid * 1_000_000``) so shard ids never collide
    before the merge renumbers them.
    """

    def __init__(
        self,
        sink: TraceSink,
        origin: Optional[float] = None,
        id_offset: int = 0,
    ) -> None:
        self.sink = sink
        self._ids = itertools.count(1 + id_offset)
        self._stack: List[_Span] = []
        self._origin = time.perf_counter() if origin is None else float(origin)
        self.num_spans = 0
        self.num_events = 0

    @property
    def origin(self) -> float:
        """The ``time.perf_counter`` value all ``start_s`` offsets anchor to."""
        return self._origin

    @property
    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span, or ``None`` at top level."""
        return self._stack[-1].span_id if self._stack else None

    def start_span(self, name: str, **attrs: Any) -> _Span:
        """Open a span nested under the current one; pair with :meth:`end_span`."""
        span = _Span(
            tracer=self,
            name=name,
            span_id=next(self._ids),
            parent_id=self.current_span_id,
            depth=len(self._stack),
            attrs={key: _jsonable(value) for key, value in attrs.items()},
        )
        self._stack.append(span)
        return span

    def end_span(self, span: _Span) -> None:
        """Close ``span`` (and any spans left open inside it) and record it."""
        end = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            record = {
                "type": "span",
                "name": top.name,
                "span_id": top.span_id,
                "parent_id": top.parent_id,
                "depth": top.depth,
                "start_s": top.start - self._origin,
                "duration_s": end - top.start,
            }
            if top.attrs:
                record["attrs"] = top.attrs
            self.sink.write(record)
            self.num_spans += 1
            if top is span:
                break

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event attached to the current span."""
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "span_id": self.current_span_id,
            "time_s": time.perf_counter() - self._origin,
        }
        if attrs:
            record["attrs"] = {key: _jsonable(value) for key, value in attrs.items()}
        self.sink.write(record)
        self.num_events += 1

    def close(self) -> None:
        """Close any spans still open, then close the sink."""
        while self._stack:
            self.end_span(self._stack[-1])
        self.sink.close()


def load_trace(
    path: Union[str, Path]
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse a ``hex-repro/trace/v1`` JSONL file into ``(header, records)``.

    The header line is validated and returned separately (merged traces carry
    provenance fields -- ``merged``, ``num_shards``, ``workers`` -- that
    shard-aware consumers need).

    Raises
    ------
    ValueError
        If the file is empty or the header does not carry the expected schema.
    """
    path = Path(path)
    records: List[Dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number + 1}: invalid JSON: {error}") from error
            records.append(record)
    if not records:
        raise ValueError(f"{path}: empty trace file")
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: not a trace file (expected schema {TRACE_SCHEMA!r} header, "
            f"got {header.get('schema')!r})"
        )
    return header, records[1:]


def load_trace_records(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a ``hex-repro/trace/v1`` JSONL file into a list of records.

    The header line is validated and excluded from the returned list; use
    :func:`load_trace` when the header's provenance fields matter.
    """
    return load_trace(path)[1]
