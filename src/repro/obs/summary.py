"""Offline summarization of trace, metrics and soak artifacts.

Backs the ``hex-repro trace summarize <file>`` verb: given a path, sniff
whether it is a ``hex-repro/metrics/v1`` JSON snapshot, a
``hex-repro/trace/v1`` JSONL trace or a ``hex-repro/soak/v1`` checkpoint,
aggregate it, and render a short human-readable report (or a JSON document
with ``--json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.checks.schemas import schema
from repro.obs.metrics import METRICS_SCHEMA, load_metrics, timer_stats
from repro.obs.trace import TRACE_SCHEMA, load_trace
from repro.stream import StreamSummary

__all__ = ["summarize_file", "render_summary"]

_SOAK_SCHEMA = schema("soak")


def summarize_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Summarize a metrics/trace/soak artifact into one JSON-ready dict.

    The result always carries ``"file"`` and ``"format"`` (``"metrics"``,
    ``"trace"`` or ``"soak"``) keys.

    Raises
    ------
    ValueError
        If the file is not one of the recognized artifact formats.
    FileNotFoundError
        If the file does not exist.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such file: {path}")
    head = ""
    with path.open("r", encoding="utf-8") as handle:
        head = handle.read(4096)
    if TRACE_SCHEMA in head.partition("\n")[0]:
        return _summarize_trace(path)
    if METRICS_SCHEMA in head:
        return _summarize_metrics(path)
    if _SOAK_SCHEMA in head:
        return _summarize_soak(path)
    # Canonical JSON sorts keys, so a soak checkpoint with large sketch
    # states may carry its "schema" key beyond the sniffed head -- fall back
    # to parsing the whole document once before giving up.
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        payload = None
    if isinstance(payload, dict) and payload.get("schema") == _SOAK_SCHEMA:
        return _summarize_soak(path, payload=payload)
    raise ValueError(
        f"{path}: unrecognized artifact (expected a {METRICS_SCHEMA!r} snapshot, "
        f"a {TRACE_SCHEMA!r} trace or a {_SOAK_SCHEMA!r} checkpoint)"
    )


def _summarize_soak(path: Path, payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    if payload is None:
        payload = json.loads(path.read_text(encoding="utf-8"))
    skew = StreamSummary.from_json_dict(payload["skew"]).stats()
    recovery = StreamSummary.from_json_dict(payload["recovery_s"]).stats()
    return {
        "file": str(path),
        "format": "soak",
        "schema": payload["schema"],
        "spec": payload.get("spec", {}),
        "epochs_completed": int(payload.get("epochs_completed", 0)),
        "pulses_completed": int(payload.get("pulses_completed", 0)),
        "faults_injected": int(payload.get("faults_injected", 0)),
        "faults_healed": int(payload.get("faults_healed", 0)),
        "recoveries": int(payload.get("recoveries", 0)),
        "pulses_per_s": float(payload.get("pulses_per_s", 0.0)),
        "rss_bytes": int(payload.get("rss_bytes", 0)),
        "wall_time_s": float(payload.get("wall_time_s", 0.0)),
        "skew": skew,
        "recovery_s": recovery,
    }


def _summarize_metrics(path: Path) -> Dict[str, Any]:
    payload = load_metrics(path)
    return {
        "file": str(path),
        "format": "metrics",
        "schema": payload["schema"],
        "counters": payload.get("counters", {}),
        "gauges": payload.get("gauges", {}),
        "timers": payload.get("timers", {}),
    }


#: Span names counted as "tasks" in per-worker rollups of merged traces.
_TASK_SPAN_NAMES = ("campaign.task", "campaign.task_batch")


def _summarize_trace(path: Path) -> Dict[str, Any]:
    header, records = load_trace(path)
    spans: Dict[str, Dict[str, Any]] = {}
    event_counts: Dict[str, int] = {}
    des_kinds: Dict[str, int] = {}
    workers: Dict[int, Dict[str, Any]] = {}
    max_depth = 0
    total_span_time = 0.0
    num_spans = 0
    for record in records:
        kind = record.get("type")
        if kind == "span":
            num_spans += 1
            max_depth = max(max_depth, int(record.get("depth", 0)))
            name = record.get("name", "?")
            duration = float(record.get("duration_s", 0.0))
            bucket = spans.setdefault(name, {"values": [], "count": 0, "total": 0.0})
            bucket["count"] += 1
            bucket["total"] += duration
            bucket["values"].append(duration)
            if record.get("depth", 0) == 0:
                total_span_time += duration
            worker = record.get("worker")
            if worker is not None:
                rollup = workers.setdefault(
                    int(worker),
                    {"spans": 0, "tasks": 0, "task_values": [], "max_rss_bytes": 0},
                )
                rollup["spans"] += 1
                rss = (record.get("attrs") or {}).get("max_rss_bytes")
                if isinstance(rss, (int, float)):
                    rollup["max_rss_bytes"] = max(rollup["max_rss_bytes"], int(rss))
                if name in _TASK_SPAN_NAMES:
                    rollup["tasks"] += 1
                    rollup["task_values"].append(duration)
        elif kind == "event":
            name = record.get("name", "?")
            event_counts[name] = event_counts.get(name, 0) + 1
            if name == "des.event":
                des_kind = (record.get("attrs") or {}).get("kind", "?")
                des_kinds[des_kind] = des_kinds.get(des_kind, 0) + 1
    by_worker: Dict[str, Dict[str, Any]] = {}
    for pid in sorted(workers):
        rollup = workers[pid]
        values = rollup.pop("task_values")
        stats = timer_stats(values, len(values), sum(values))
        by_worker[str(pid)] = {
            "spans": rollup["spans"],
            "tasks": rollup["tasks"],
            "task_total_s": stats["total_s"],
            "task_median_s": stats.get("median_s", 0.0),
            "max_rss_bytes": rollup["max_rss_bytes"],
        }
    return {
        "file": str(path),
        "format": "trace",
        "schema": TRACE_SCHEMA,
        "merged": bool(header.get("merged")),
        "num_shards": int(header.get("num_shards", 0)),
        "num_spans": num_spans,
        "num_events": sum(event_counts.values()),
        "max_depth": max_depth,
        "top_level_time_s": total_span_time,
        "spans": {
            name: timer_stats(bucket["values"], bucket["count"], bucket["total"])
            for name, bucket in sorted(spans.items())
        },
        "events": dict(sorted(event_counts.items())),
        "des_event_kinds": dict(sorted(des_kinds.items())),
        "workers": by_worker,
    }


def render_summary(
    summary: Dict[str, Any], top: Optional[int] = None, by_worker: bool = False
) -> str:
    """Format a :func:`summarize_file` result as a human-readable report.

    ``top`` truncates the per-name span table of trace summaries to the
    ``top`` names with the largest total time (the rest are folded into one
    "... and K more" line); metrics and soak reports ignore it.  ``by_worker``
    adds the per-worker rollup table of a merged multi-shard trace (tasks,
    total/median task time, peak RSS per worker pid).
    """
    lines: List[str] = []
    if summary["format"] == "soak":
        spec = summary["spec"]
        lines.append(f"soak checkpoint {summary['file']} ({summary['schema']})")
        lines.append(
            f"  grid {spec.get('layers', '?')}x{spec.get('width', '?')}, "
            f"seed {spec.get('seed', '?')}: "
            f"{summary['pulses_completed']} pulses over "
            f"{summary['epochs_completed']} epochs"
        )
        lines.append(
            f"  throughput {summary['pulses_per_s']:.0f} pulses/s, "
            f"wall {summary['wall_time_s']:.1f}s, "
            f"rss {summary['rss_bytes'] / 1e6:.1f}MB"
        )
        lines.append(
            f"  faults: {summary['faults_injected']} injected, "
            f"{summary['faults_healed']} healed, "
            f"{summary['recoveries']} recoveries"
        )
        skew = summary["skew"]
        lines.append(
            f"  skew ({int(skew['count'])} pulses): mean {skew['mean']:.4g}  "
            f"p50 {skew['p50']:.4g}  p95 {skew['p95']:.4g}  max {skew['max']:.4g}"
        )
        recovery = summary["recovery_s"]
        if recovery["count"]:
            lines.append(
                f"  recovery ({int(recovery['count'])} heals): "
                f"mean {recovery['mean']:.4g}  p50 {recovery['p50']:.4g}  "
                f"p95 {recovery['p95']:.4g}  max {recovery['max']:.4g}"
            )
        return "\n".join(lines)
    if summary["format"] == "metrics":
        lines.append(f"metrics snapshot {summary['file']} ({summary['schema']})")
        counters = summary["counters"]
        if counters:
            lines.append("  counters:")
            for name, value in counters.items():
                lines.append(f"    {name:<40} {_fmt_number(value)}")
        gauges = summary["gauges"]
        if gauges:
            lines.append("  gauges:")
            for name, value in gauges.items():
                lines.append(f"    {name:<40} {value:.4g}")
        timers = summary["timers"]
        if timers:
            lines.append("  timers:")
            for name, stats in timers.items():
                lines.append(
                    f"    {name:<40} n={int(stats.get('count', 0))}"
                    f" total={stats.get('total_s', 0.0):.4f}s"
                    f" mean={stats.get('mean_s', 0.0) * 1e3:.3f}ms"
                    f" p95={stats.get('p95_s', 0.0) * 1e3:.3f}ms"
                )
        if not (counters or gauges or timers):
            lines.append("  (empty)")
    else:
        lines.append(f"trace {summary['file']} ({summary['schema']})")
        lines.append(
            f"  {summary['num_spans']} spans (max depth {summary['max_depth']}), "
            f"{summary['num_events']} events, "
            f"top-level time {summary['top_level_time_s']:.4f}s"
        )
        workers = summary.get("workers") or {}
        if summary.get("merged"):
            pids = ", ".join(sorted(workers)) or "?"
            lines.append(
                f"  merged from {summary.get('num_shards', len(workers))} "
                f"worker shard(s) (pids: {pids})"
            )
        if by_worker and workers:
            lines.append("  by worker:")
            lines.append(
                f"    {'pid':<10} {'spans':>6} {'tasks':>6} "
                f"{'task total':>12} {'task median':>12} {'peak rss':>10}"
            )
            for pid, rollup in workers.items():
                lines.append(
                    f"    {pid:<10} {rollup['spans']:>6} {rollup['tasks']:>6} "
                    f"{rollup['task_total_s']:>11.4f}s "
                    f"{rollup['task_median_s'] * 1e3:>10.3f}ms "
                    f"{rollup['max_rss_bytes'] / 1e6:>8.1f}MB"
                )
        if summary["spans"]:
            items = list(summary["spans"].items())
            omitted = 0
            if top is not None and top >= 0 and len(items) > top:
                items.sort(key=lambda pair: pair[1].get("total_s", 0.0), reverse=True)
                omitted = len(items) - top
                items = items[:top]
            lines.append("  spans by name:")
            for name, stats in items:
                lines.append(
                    f"    {name:<40} n={int(stats.get('count', 0))}"
                    f" total={stats.get('total_s', 0.0):.4f}s"
                    f" mean={stats.get('mean_s', 0.0) * 1e3:.3f}ms"
                    f" p95={stats.get('p95_s', 0.0) * 1e3:.3f}ms"
                )
            if omitted:
                lines.append(f"    ... and {omitted} more")
        if summary["events"]:
            lines.append("  events by name:")
            for name, count in summary["events"].items():
                lines.append(f"    {name:<40} {count}")
        if summary["des_event_kinds"]:
            lines.append("  DES event kinds:")
            for kind, count in summary["des_event_kinds"].items():
                lines.append(f"    {kind:<40} {count}")
    return "\n".join(lines)


def _fmt_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def summary_to_json(summary: Dict[str, Any]) -> str:
    """Serialize a summary dict as stable, indented JSON."""
    return json.dumps(summary, indent=2, sort_keys=True)
