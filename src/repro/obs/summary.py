"""Offline summarization of trace and metrics artifacts.

Backs the ``hex-repro trace summarize <file>`` verb: given a path, sniff
whether it is a ``hex-repro/metrics/v1`` JSON snapshot or a
``hex-repro/trace/v1`` JSONL trace, aggregate it, and render a short
human-readable report (or a JSON document with ``--json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.metrics import METRICS_SCHEMA, load_metrics, timer_stats
from repro.obs.trace import TRACE_SCHEMA, load_trace_records

__all__ = ["summarize_file", "render_summary"]


def summarize_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Summarize a metrics snapshot or a trace file into one JSON-ready dict.

    The result always carries ``"file"`` and ``"format"`` (``"metrics"`` or
    ``"trace"``) keys.

    Raises
    ------
    ValueError
        If the file is neither a metrics snapshot nor a trace file.
    FileNotFoundError
        If the file does not exist.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such file: {path}")
    head = ""
    with path.open("r", encoding="utf-8") as handle:
        head = handle.read(4096)
    if TRACE_SCHEMA in head.partition("\n")[0]:
        return _summarize_trace(path)
    if METRICS_SCHEMA in head:
        return _summarize_metrics(path)
    raise ValueError(
        f"{path}: unrecognized artifact (expected a {METRICS_SCHEMA!r} snapshot "
        f"or a {TRACE_SCHEMA!r} trace)"
    )


def _summarize_metrics(path: Path) -> Dict[str, Any]:
    payload = load_metrics(path)
    return {
        "file": str(path),
        "format": "metrics",
        "schema": payload["schema"],
        "counters": payload.get("counters", {}),
        "gauges": payload.get("gauges", {}),
        "timers": payload.get("timers", {}),
    }


def _summarize_trace(path: Path) -> Dict[str, Any]:
    records = load_trace_records(path)
    spans: Dict[str, Dict[str, Any]] = {}
    event_counts: Dict[str, int] = {}
    des_kinds: Dict[str, int] = {}
    max_depth = 0
    total_span_time = 0.0
    num_spans = 0
    for record in records:
        kind = record.get("type")
        if kind == "span":
            num_spans += 1
            max_depth = max(max_depth, int(record.get("depth", 0)))
            name = record.get("name", "?")
            duration = float(record.get("duration_s", 0.0))
            bucket = spans.setdefault(name, {"values": [], "count": 0, "total": 0.0})
            bucket["count"] += 1
            bucket["total"] += duration
            bucket["values"].append(duration)
            if record.get("depth", 0) == 0:
                total_span_time += duration
        elif kind == "event":
            name = record.get("name", "?")
            event_counts[name] = event_counts.get(name, 0) + 1
            if name == "des.event":
                des_kind = (record.get("attrs") or {}).get("kind", "?")
                des_kinds[des_kind] = des_kinds.get(des_kind, 0) + 1
    return {
        "file": str(path),
        "format": "trace",
        "schema": TRACE_SCHEMA,
        "num_spans": num_spans,
        "num_events": sum(event_counts.values()),
        "max_depth": max_depth,
        "top_level_time_s": total_span_time,
        "spans": {
            name: timer_stats(bucket["values"], bucket["count"], bucket["total"])
            for name, bucket in sorted(spans.items())
        },
        "events": dict(sorted(event_counts.items())),
        "des_event_kinds": dict(sorted(des_kinds.items())),
    }


def render_summary(summary: Dict[str, Any]) -> str:
    """Format a :func:`summarize_file` result as a human-readable report."""
    lines: List[str] = []
    if summary["format"] == "metrics":
        lines.append(f"metrics snapshot {summary['file']} ({summary['schema']})")
        counters = summary["counters"]
        if counters:
            lines.append("  counters:")
            for name, value in counters.items():
                lines.append(f"    {name:<40} {_fmt_number(value)}")
        gauges = summary["gauges"]
        if gauges:
            lines.append("  gauges:")
            for name, value in gauges.items():
                lines.append(f"    {name:<40} {value:.4g}")
        timers = summary["timers"]
        if timers:
            lines.append("  timers:")
            for name, stats in timers.items():
                lines.append(
                    f"    {name:<40} n={int(stats.get('count', 0))}"
                    f" total={stats.get('total_s', 0.0):.4f}s"
                    f" mean={stats.get('mean_s', 0.0) * 1e3:.3f}ms"
                    f" p95={stats.get('p95_s', 0.0) * 1e3:.3f}ms"
                )
        if not (counters or gauges or timers):
            lines.append("  (empty)")
    else:
        lines.append(f"trace {summary['file']} ({summary['schema']})")
        lines.append(
            f"  {summary['num_spans']} spans (max depth {summary['max_depth']}), "
            f"{summary['num_events']} events, "
            f"top-level time {summary['top_level_time_s']:.4f}s"
        )
        if summary["spans"]:
            lines.append("  spans by name:")
            for name, stats in summary["spans"].items():
                lines.append(
                    f"    {name:<40} n={int(stats.get('count', 0))}"
                    f" total={stats.get('total_s', 0.0):.4f}s"
                    f" mean={stats.get('mean_s', 0.0) * 1e3:.3f}ms"
                    f" p95={stats.get('p95_s', 0.0) * 1e3:.3f}ms"
                )
        if summary["events"]:
            lines.append("  events by name:")
            for name, count in summary["events"].items():
                lines.append(f"    {name:<40} {count}")
        if summary["des_event_kinds"]:
            lines.append("  DES event kinds:")
            for kind, count in summary["des_event_kinds"].items():
                lines.append(f"    {kind:<40} {count}")
    return "\n".join(lines)


def _fmt_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def summary_to_json(summary: Dict[str, Any]) -> str:
    """Serialize a summary dict as stable, indented JSON."""
    return json.dumps(summary, indent=2, sort_keys=True)
