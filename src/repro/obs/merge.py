"""Deterministic merge of worker trace shards into one ordered trace.

A parallel campaign with tracing on leaves one orchestrator trace plus one
``hex-repro/trace/v1`` shard per pool worker
(``<stem>-worker-<pid>.jsonl``, see :mod:`repro.obs.context`).  This module
folds the shards back into a single trace file whose layout is a pure
function of the input files:

1. **Shard order** -- shards merge in sorted filename order (pids sort as
   strings), so the same shard set always merges identically.
2. **Re-parenting** -- each shard's root spans (worker-side ``parent_id`` of
   ``None``) are re-parented under the orchestrator span named in the shard
   header (``parent_span_id``, the parent's ``campaign.run`` span), and all
   shard depths shift below that span's depth.
3. **Id renumbering** -- orchestrator records keep their span ids; shard ids
   (pid-namespaced pre-merge) are renumbered sequentially after the largest
   orchestrator id, in shard order.
4. **Record order** -- the merged body is stably sorted by start time
   (``start_s`` for spans, ``time_s`` for events), so parents precede their
   children and interleaved worker activity reads chronologically.
5. **Provenance** -- every shard record gains a top-level ``worker`` key (the
   worker pid); the merged header gains ``merged: true``, ``num_shards`` and
   ``workers``.

Incomplete inputs never merge silently: a missing shard (fewer found than
``expected_shards``), an unreadable shard, or a shard truncated mid-line
(worker died before closing its sink) each produce an explicit warning in the
returned :class:`MergeReport`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.context import find_trace_shards
from repro.obs.trace import TRACE_SCHEMA, load_trace

__all__ = ["MergeReport", "merge_trace"]


@dataclasses.dataclass
class MergeReport:
    """What one :func:`merge_trace` call did."""

    path: Path
    num_shards: int = 0
    workers: List[int] = dataclasses.field(default_factory=list)
    num_records: int = 0
    warnings: List[str] = dataclasses.field(default_factory=list)
    already_merged: bool = False

    def summary_line(self) -> str:
        """One-line human-readable description of the merge."""
        if self.already_merged and not self.num_shards:
            return f"{self.path}: already merged, no shards to fold in"
        workers = ", ".join(str(pid) for pid in self.workers) or "none"
        return (
            f"{self.path}: merged {self.num_shards} worker shard(s) "
            f"(workers: {workers}), {self.num_records} records"
        )


def _load_shard(
    path: Path,
) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]], List[str]]:
    """Tolerantly parse one shard into ``(header, records, warnings)``.

    A truncated final line (worker killed mid-write) keeps the complete
    records and warns; a missing/invalid header drops the shard with a
    warning.
    """
    warnings: List[str] = []
    records: List[Dict[str, Any]] = []
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as error:
        return None, [], [f"{path}: unreadable worker shard ({error}); dropped from merge"]
    lines = raw.splitlines()
    for line_number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if line_number == len(lines) - 1 and not raw.endswith("\n"):
                warnings.append(
                    f"{path}: truncated worker shard (worker likely died "
                    f"mid-write); kept {len(records)} complete record(s)"
                )
            else:
                warnings.append(
                    f"{path}:{line_number + 1}: invalid JSON in worker shard; "
                    f"dropped from merge"
                )
                return None, [], warnings
            break
    if not records:
        warnings.append(f"{path}: empty worker shard; dropped from merge")
        return None, [], warnings
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != TRACE_SCHEMA:
        warnings.append(
            f"{path}: worker shard missing {TRACE_SCHEMA!r} header; dropped from merge"
        )
        return None, [], warnings
    return header, records[1:], warnings


def _sort_key(record: Dict[str, Any]) -> float:
    """Chronological key: span start or event time (header sorts first)."""
    value = record.get("start_s", record.get("time_s"))
    return float(value) if value is not None else float("-inf")


def merge_trace(
    trace_path: Union[str, Path],
    shard_paths: Optional[Sequence[Union[str, Path]]] = None,
    out: Optional[Union[str, Path]] = None,
    expected_shards: Optional[int] = None,
    keep_shards: bool = False,
) -> MergeReport:
    """Merge worker shards of ``trace_path`` into one ordered trace.

    Parameters
    ----------
    trace_path:
        The orchestrator trace.  Shards are discovered next to it
        (``<stem>-worker-*.jsonl``) unless ``shard_paths`` is given.
    out:
        Where to write the merged trace; defaults to ``trace_path``
        (replaced atomically).
    expected_shards:
        Warn if fewer shards are found (a worker failed to flush).
    keep_shards:
        Leave merged shard files on disk instead of deleting them.

    Merging a trace with no shards present is a no-op (idempotent): rerunning
    ``trace merge`` on an already-merged file reports that and succeeds.
    """
    trace_path = Path(trace_path)
    out = Path(out) if out is not None else trace_path
    header, records = load_trace(trace_path)

    if shard_paths is None:
        shards = find_trace_shards(trace_path)
    else:
        shards = sorted(Path(path) for path in shard_paths)

    report = MergeReport(path=out, already_merged=bool(header.get("merged")))
    already_counted = int(header.get("num_shards", 0))
    if expected_shards is not None and len(shards) + already_counted < expected_shards:
        report.warnings.append(
            f"{trace_path}: expected {expected_shards} worker shard(s), found "
            f"{len(shards)} -- the merged trace is missing worker activity "
            f"(a worker may have died before flushing its shard)"
        )
    if not shards:
        report.num_records = len(records)
        if not report.already_merged and out != trace_path:
            _write_merged(out, header, records)
        return report

    parent_depths = {
        record["span_id"]: int(record.get("depth", 0))
        for record in records
        if record.get("type") == "span" and "span_id" in record
    }
    max_id = max(
        (int(record["span_id"]) for record in records if "span_id" in record and record["span_id"] is not None),
        default=0,
    )
    next_id = max_id + 1
    merged_records = list(records)
    absorbed: List[Path] = []

    for shard_path in shards:
        shard_header, shard_records, shard_warnings = _load_shard(shard_path)
        report.warnings.extend(shard_warnings)
        if shard_header is None:
            continue
        worker = shard_header.get("worker")
        parent_span_id = shard_header.get("parent_span_id")
        depth_shift = parent_depths.get(parent_span_id, -1) + 1
        id_map: Dict[int, int] = {}
        for record in shard_records:
            old_id = record.get("span_id")
            if record.get("type") == "span" and old_id is not None:
                if old_id not in id_map:
                    id_map[old_id] = next_id
                    next_id += 1
                record["span_id"] = id_map[old_id]
                old_parent = record.get("parent_id")
                if old_parent is None:
                    record["parent_id"] = parent_span_id
                else:
                    if old_parent not in id_map:
                        id_map[old_parent] = next_id
                        next_id += 1
                    record["parent_id"] = id_map[old_parent]
                record["depth"] = int(record.get("depth", 0)) + depth_shift
            elif old_id is not None:
                # events reference the span they occurred in
                if old_id not in id_map:
                    id_map[old_id] = next_id
                    next_id += 1
                record["span_id"] = id_map[old_id]
            if worker is not None:
                record["worker"] = worker
            merged_records.append(record)
        report.num_shards += 1
        if worker is not None:
            report.workers.append(int(worker))
        absorbed.append(shard_path)

    merged_records.sort(key=_sort_key)
    merged_header = dict(header)
    merged_header["merged"] = True
    merged_header["num_shards"] = report.num_shards + int(header.get("num_shards", 0))
    merged_header["workers"] = sorted(
        set(int(pid) for pid in header.get("workers", [])) | set(report.workers)
    )
    _write_merged(out, merged_header, merged_records)
    report.num_records = len(merged_records)

    if not keep_shards:
        for shard_path in absorbed:
            try:
                shard_path.unlink()
            except OSError:
                pass
    return report


def _write_merged(
    out: Path, header: Dict[str, Any], records: List[Dict[str, Any]]
) -> None:
    """Atomically write a merged trace (header first, then records)."""
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_name(out.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    os.replace(tmp, out)
