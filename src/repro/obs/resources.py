"""Process resource accounting: CPU time, peak RSS and GC activity.

Everything here *reads* OS bookkeeping (``resource.getrusage``,
``/proc/self/status``, ``gc.get_stats``) -- it never draws randomness and
never touches simulation state, so stamping resource numbers into span
attributes or gauges keeps the obs bit-identity contract intact.

``resource`` is POSIX-only; on platforms without it every helper degrades to
zeros / best-effort fallbacks rather than raising, so instrumented code never
needs its own platform guard.

These call sites are wall-clock-adjacent by nature (CPU time is time), which
is why ``obs.resources`` sits on the D002 determinism-rule allowlist
(:mod:`repro.checks.determinism`): resource numbers are observability output,
never inputs to simulation.
"""

from __future__ import annotations

import gc
from typing import Any, Dict, Optional

try:  # POSIX only; absent on Windows
    import resource as _resource
except ImportError:  # pragma: no cover - exercised only off-POSIX
    _resource = None  # type: ignore[assignment]

__all__ = ["ResourceSnapshot", "snapshot", "delta_attrs", "usage_gauges", "rss_bytes"]

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_MAXRSS_SCALE = 1024


class ResourceSnapshot:
    """Point-in-time CPU/GC reading used to compute per-task deltas."""

    __slots__ = ("cpu_user_s", "cpu_system_s", "gc_collections")

    def __init__(self, cpu_user_s: float, cpu_system_s: float, gc_collections: int) -> None:
        self.cpu_user_s = cpu_user_s
        self.cpu_system_s = cpu_system_s
        self.gc_collections = gc_collections


def _gc_collections() -> int:
    """Total garbage collections across all generations so far."""
    return sum(int(stats.get("collections", 0)) for stats in gc.get_stats())


def snapshot() -> ResourceSnapshot:
    """Current process CPU time and cumulative GC collection count."""
    if _resource is None:
        return ResourceSnapshot(0.0, 0.0, _gc_collections())
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    return ResourceSnapshot(
        cpu_user_s=float(usage.ru_utime),
        cpu_system_s=float(usage.ru_stime),
        gc_collections=_gc_collections(),
    )


def delta_attrs(before: ResourceSnapshot, after: Optional[ResourceSnapshot] = None) -> Dict[str, Any]:
    """Span attributes describing resource use since ``before``.

    Includes the *current* peak RSS (a process-lifetime high-water mark, not
    a delta -- ``getrusage`` offers no per-interval peak).
    """
    if after is None:
        after = snapshot()
    return {
        "cpu_user_s": after.cpu_user_s - before.cpu_user_s,
        "cpu_system_s": after.cpu_system_s - before.cpu_system_s,
        "gc_collections": after.gc_collections - before.gc_collections,
        "max_rss_bytes": max_rss_bytes(),
    }


def usage_gauges(prefix: str) -> Dict[str, float]:
    """Gauge name/value pairs for this process's cumulative resource use."""
    current = snapshot()
    return {
        f"{prefix}.cpu_user_s": current.cpu_user_s,
        f"{prefix}.cpu_system_s": current.cpu_system_s,
        f"{prefix}.gc_collections": float(current.gc_collections),
        f"{prefix}.max_rss_bytes": float(max_rss_bytes()),
    }


def max_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unavailable)."""
    if _resource is None:
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss) * _MAXRSS_SCALE


def rss_bytes() -> int:
    """Current resident set size in bytes (peak RSS fallback, else 0).

    Prefers ``/proc/self/status`` ``VmRSS`` (current, Linux); falls back to
    the ``getrusage`` high-water mark elsewhere.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii", errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    parts = line.split()
                    if len(parts) >= 2 and parts[1].isdigit():
                        return int(parts[1]) * 1024
    except OSError:
        pass
    return max_rss_bytes()
