"""Trace-context propagation into parallel campaign workers.

A :class:`TraceContext` is the picklable capsule the orchestrator hands to
``multiprocessing.Pool`` workers through the pool initializer.  It carries
just enough state for each worker to produce telemetry that the parent can
deterministically fold back in:

* ``trace_id`` / ``parent_span_id`` -- which trace the worker belongs to and
  which orchestrator span (the ``campaign.run`` span) its task spans hang
  under after the merge.
* ``trace_stem`` / ``shard_dir`` -- where the worker writes its own
  ``hex-repro/trace/v1`` JSONL shard: ``<shard_dir>/<trace_stem>-worker-<pid>.jsonl``.
* ``origin`` -- the parent tracer's ``time.perf_counter`` anchor, so worker
  ``start_s`` offsets land on the parent's timeline (``perf_counter`` is
  ``CLOCK_MONOTONIC`` on Linux: comparable across processes on one machine).
* ``metrics`` / ``des_events`` -- which instrumentation the parent had on, so
  workers mirror it.  Worker metrics shards land next to trace shards as
  ``<trace_stem>-worker-<pid>-metrics.json`` (or, when only metrics are on,
  under ``shard_dir`` with ``trace_stem`` as a plain grouping stem).

The dataclass contains only primitives so it pickles under both the ``fork``
and ``spawn`` start methods.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import List, Optional

__all__ = ["TraceContext", "worker_trace_path", "worker_metrics_path",
           "find_trace_shards", "find_metrics_shards"]

#: Span-id namespace stride per worker: worker span ids start at
#: ``pid * SPAN_ID_STRIDE + 1`` so shard ids never collide with the parent's
#: (or each other's) before the merge renumbers them.
SPAN_ID_STRIDE = 1_000_000


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Picklable trace/metrics context passed to pool workers.

    ``trace_stem`` and ``shard_dir`` are always set (metrics-only runs still
    need a shard location); ``tracing`` tells workers whether to open a trace
    shard at all.
    """

    trace_id: str
    trace_stem: str
    shard_dir: str
    origin: float
    parent_span_id: Optional[int] = None
    tracing: bool = False
    metrics: bool = True
    des_events: bool = False


def worker_trace_path(context: TraceContext, pid: int) -> Path:
    """Where worker ``pid`` writes its trace shard."""
    return Path(context.shard_dir) / f"{context.trace_stem}-worker-{pid}.jsonl"


def worker_metrics_path(context: TraceContext, pid: int) -> Path:
    """Where worker ``pid`` writes its raw metrics shard."""
    return Path(context.shard_dir) / f"{context.trace_stem}-worker-{pid}-metrics.json"


def find_trace_shards(trace_path: Path) -> List[Path]:
    """Trace shards belonging to ``trace_path``, in sorted (deterministic) order."""
    stem = trace_path.stem
    return sorted(trace_path.parent.glob(f"{stem}-worker-*.jsonl"))


def find_metrics_shards(shard_dir: Path, trace_stem: str) -> List[Path]:
    """Metrics shards for ``trace_stem``, in sorted (deterministic) order."""
    return sorted(Path(shard_dir).glob(f"{trace_stem}-worker-*-metrics.json"))
