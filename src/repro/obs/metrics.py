"""The metrics registry: counters, gauges and timers with a versioned snapshot.

A :class:`MetricsRegistry` is a plain in-process accumulator.  It never draws
randomness, never touches simulation state and is only ever *written to* by
instrumentation sites that read engine/campaign state -- the observability
contract (see ``DESIGN.md``, "Observability") that keeps enabling metrics
bit-identical to running without them.

Snapshots serialize to the schema-versioned ``hex-repro/metrics/v1`` JSON
document::

    {
      "schema": "hex-repro/metrics/v1",
      "schema_version": 1,
      "counters": {"des.events_processed": 1234.0, ...},
      "gauges":   {"campaign.worker_utilization": 0.87, ...},
      "timers":   {"campaign.task_s": {"count": 60, "total_s": ..., ...}, ...}
    }

``hex-repro trace summarize <file>`` round-trips these documents back into a
human-readable report.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.checks.schemas import schema
from repro.stream.quantiles import interpolated_quantile

__all__ = [
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "WORKER_METRICS_SCHEMA",
    "WORKER_METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "timer_stats",
    "load_worker_metrics",
]

#: Schema tag of a serialized metrics snapshot.
METRICS_SCHEMA = schema("metrics")

#: Version number of the snapshot schema.
METRICS_SCHEMA_VERSION = 1

#: Schema tag of a raw per-worker metrics shard (pool-teardown fan-in).
WORKER_METRICS_SCHEMA = schema("worker-metrics")

#: Version number of the worker-shard schema.
WORKER_METRICS_SCHEMA_VERSION = 1

#: Per-timer cap on retained observations.  ``count``/``total_s`` stay exact
#: beyond the cap; the percentile statistics then describe the first
#: ``_TIMER_VALUE_CAP`` observations (campaigns rarely exceed it).
_TIMER_VALUE_CAP = 100_000


def timer_stats(values: List[float], count: int, total: float) -> Dict[str, float]:
    """Summary statistics of one timer's observations."""
    stats: Dict[str, float] = {
        "count": float(count),
        "total_s": float(total),
        "mean_s": float(total / count) if count else 0.0,
    }
    if values:
        ordered = sorted(values)
        stats["min_s"] = float(ordered[0])
        stats["max_s"] = float(ordered[-1])
        stats["median_s"] = float(interpolated_quantile(ordered, 0.5))
        stats["p95_s"] = float(interpolated_quantile(ordered, 0.95))
    return stats


class _TimerHandle:
    """Context manager recording one timed region into a registry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)


class MetricsRegistry:
    """In-process metrics accumulator (counters, gauges, timers).

    Not thread-safe by design: the campaign layer is process-parallel, not
    thread-parallel, and each process owns (at most) one registry.  Worker
    processes of a parallel campaign each run their own registry and write a
    raw ``hex-repro/worker-metrics/v1`` shard on pool teardown
    (:meth:`write_worker_snapshot`); the parent folds those shards back in
    with ``worker.*`` provenance via :meth:`merge_worker_snapshot`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timer_values: Dict[str, List[float]] = {}
        self._timer_counts: Dict[str, int] = {}
        self._timer_totals: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration observation into timer ``name``."""
        seconds = float(seconds)
        self._timer_counts[name] = self._timer_counts.get(name, 0) + 1
        self._timer_totals[name] = self._timer_totals.get(name, 0.0) + seconds
        values = self._timer_values.setdefault(name, [])
        if len(values) < _TIMER_VALUE_CAP:
            values.append(seconds)

    def time(self, name: str) -> _TimerHandle:
        """Context manager timing a region into timer ``name``."""
        return _TimerHandle(self, name)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        """A copy of all counters (used for before/after deltas)."""
        return dict(self._counters)

    def snapshot(self) -> Dict[str, Any]:
        """The schema-versioned JSON-serializable state of the registry."""
        return {
            "schema": METRICS_SCHEMA,
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "timers": {
                name: timer_stats(
                    self._timer_values.get(name, []),
                    self._timer_counts[name],
                    self._timer_totals[name],
                )
                for name in sorted(self._timer_counts)
            },
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Persist the snapshot as a JSON file; returns the written path."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    # ------------------------------------------------------------------
    # cross-process fan-in (parallel campaign workers)
    # ------------------------------------------------------------------
    def worker_snapshot(self) -> Dict[str, Any]:
        """The raw ``hex-repro/worker-metrics/v1`` shard of this registry.

        Unlike :meth:`snapshot`, timers keep their *raw* retained values (not
        just the computed statistics) so the parent can merge counts, totals
        and percentile inputs exactly -- medians/p95 of the fan-in equal the
        single-process run bit for bit.
        """
        return {
            "schema": WORKER_METRICS_SCHEMA,
            "schema_version": WORKER_METRICS_SCHEMA_VERSION,
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "timers": {
                name: {
                    "count": int(self._timer_counts[name]),
                    "total_s": float(self._timer_totals[name]),
                    "values": list(self._timer_values.get(name, [])),
                }
                for name in sorted(self._timer_counts)
            },
        }

    def write_worker_snapshot(self, path: Union[str, Path]) -> Path:
        """Persist :meth:`worker_snapshot` as a JSON file."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.worker_snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    def merge_worker_snapshot(
        self, payload: Dict[str, Any], prefix: str = "worker."
    ) -> None:
        """Fold one ``hex-repro/worker-metrics/v1`` shard into this registry.

        Every merged name carries ``prefix`` as provenance (so
        ``engine.solver.runs`` counted inside pool workers lands as
        ``worker.engine.solver.runs`` next to the parent's own counters).
        Counters add, gauges keep the last merged shard's value (shards are
        merged in sorted filename order, so the result is deterministic given
        the shard set), and timers merge counts/totals/raw values exactly.
        """
        for name, value in payload.get("counters", {}).items():
            self.inc(prefix + name, value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(prefix + name, value)
        for name, timer in payload.get("timers", {}).items():
            merged = prefix + name
            self._timer_counts[merged] = self._timer_counts.get(merged, 0) + int(
                timer.get("count", 0)
            )
            self._timer_totals[merged] = self._timer_totals.get(merged, 0.0) + float(
                timer.get("total_s", 0.0)
            )
            values = self._timer_values.setdefault(merged, [])
            for value in timer.get("values", []):
                if len(values) >= _TIMER_VALUE_CAP:
                    break
                values.append(float(value))


def load_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a snapshot written by :meth:`MetricsRegistry.write`.

    Raises
    ------
    ValueError
        If the document does not carry the ``hex-repro/metrics/v1`` schema.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"{path}: not a metrics snapshot (expected schema {METRICS_SCHEMA!r}, "
            f"got {payload.get('schema') if isinstance(payload, dict) else type(payload).__name__!r})"
        )
    return payload


def load_worker_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a shard written by :meth:`MetricsRegistry.write_worker_snapshot`.

    Raises
    ------
    ValueError
        If the document does not carry the ``hex-repro/worker-metrics/v1``
        schema.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("schema") != WORKER_METRICS_SCHEMA:
        raise ValueError(
            f"{path}: not a worker metrics shard (expected schema "
            f"{WORKER_METRICS_SCHEMA!r}, "
            f"got {payload.get('schema') if isinstance(payload, dict) else type(payload).__name__!r})"
        )
    return payload


def metrics_delta(
    before: Optional[Dict[str, float]], after: Optional[Dict[str, float]]
) -> Dict[str, float]:
    """Per-counter difference between two :meth:`MetricsRegistry.counters` copies."""
    if not after:
        return {}
    before = before or {}
    delta: Dict[str, float] = {}
    for name in sorted(after):
        change = after[name] - before.get(name, 0.0)
        if change:
            delta[name] = change
    return delta
