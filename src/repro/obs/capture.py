"""Per-run DES introspection: the observer installed on a :class:`HexNetwork`.

:class:`DesRunObserver` is the single hook the simulation core knows about --
``HexNetwork`` carries an ``observer`` attribute that is ``None`` by default
and, when set (by :class:`repro.engines.des.DesEngine` while observability is
enabled), receives three read-only callbacks:

* :meth:`on_event` -- every popped event, classified by type name;
* :meth:`on_firing` -- every node firing (sources and forwarding nodes);
* :meth:`on_adversary` -- every applied adversary action, classified by its
  action class (``InjectFault`` / ``HealNode`` / ...).

Classification is by ``type(...).__name__`` string, so this module imports
nothing from :mod:`repro.simulation` or :mod:`repro.adversary` -- obs sits
beside the deterministic core, never inside it.  The observer only reads the
event payloads; it never mutates network state and never draws randomness,
which is what keeps instrumented runs bit-identical to bare ones.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

__all__ = ["DesRunObserver", "first_firing_matrix_from_events"]

#: ``type(event).__name__`` -> stable event-kind label used in traces/metrics.
_EVENT_KINDS = {
    "SourcePulse": "source_pulse",
    "MessageArrival": "arrival",
    "FlagExpiry": "flag_expiry",
    "WakeUp": "wake_up",
    "AdversaryAction": "adversary",
}

#: Adversary action class name -> counter suffix.
_ADVERSARY_KINDS = {
    "InjectFault": "faults_injected",
    "HealNode": "faults_healed",
    "FlipBehavior": "behavior_flips",
    "SetLinkBehavior": "link_overrides",
}


class DesRunObserver:
    """Collects event counts (and optionally full event records) for one run.

    Parameters
    ----------
    capture_events:
        When true, every callback also appends a JSON-ready dict to
        :attr:`events` (``kind``, ``time`` and kind-specific fields).  Leave
        false to count only -- counting is cheap enough for long soak runs,
        full capture is meant for single-run introspection.
    """

    def __init__(self, capture_events: bool = False) -> None:
        self.capture_events = capture_events
        #: Event-kind -> number of occurrences (includes ``firing``).
        self.counts: Dict[str, int] = {}
        #: Captured event records (empty unless ``capture_events``).
        self.events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # network callbacks (read-only)
    # ------------------------------------------------------------------
    def on_event(self, time: float, event: Any) -> None:
        """Called by the network run loop for every popped event."""
        kind = _EVENT_KINDS.get(type(event).__name__, "other")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if not self.capture_events:
            return
        record: Dict[str, Any] = {"kind": kind, "time": float(time)}
        node = getattr(event, "node", None)
        if node is not None:
            record["node"] = list(node)
        if kind == "source_pulse":
            record["pulse_index"] = event.pulse_index
        elif kind == "arrival":
            record["source"] = list(event.source)
            record["node"] = list(event.destination)
            record["direction"] = event.direction.value
            if event.from_byzantine_high:
                record["byzantine_high"] = True
        elif kind == "flag_expiry":
            record["direction"] = event.direction.value
        self.events.append(record)

    def on_firing(self, node: Any, time: float) -> None:
        """Called whenever a node fires (source pulse or guard-triggered)."""
        self.counts["firing"] = self.counts.get("firing", 0) + 1
        if self.capture_events:
            self.events.append({"kind": "firing", "time": float(time), "node": list(node)})

    def on_adversary(self, time: float, action: Any) -> None:
        """Called after an adversary action body is applied."""
        kind = _ADVERSARY_KINDS.get(type(action).__name__, "other_actions")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self.capture_events:
            describe = getattr(action, "describe", None)
            self.events.append(
                {
                    "kind": "adversary_action",
                    "time": float(time),
                    "action": kind,
                    "detail": describe() if callable(describe) else str(action),
                }
            )


def first_firing_matrix_from_events(
    events: List[Dict[str, Any]], layers: int, width: int
) -> np.ndarray:
    """Reconstruct the first-firing matrix of a run from captured events.

    The counterpart of :meth:`HexNetwork.first_firing_matrix` for offline
    analysis of a ``--trace`` file: nodes that never fired carry ``+inf``
    (faulty/absent nodes cannot be distinguished here and also carry ``inf``).
    The result plugs directly into :func:`repro.analysis.traces.save_trace`.
    """
    times = np.full((layers + 1, width), np.inf, dtype=float)
    for event in events:
        if event.get("kind") != "firing":
            continue
        layer, column = event["node"]
        if 0 <= layer <= layers and 0 <= column < width:
            times[layer, column] = min(times[layer, column], event["time"])
    return times
