"""``repro.obs``: zero-overhead-by-default observability.

The subsystem is a strict no-op unless explicitly enabled: module state starts
as ``None``, every public helper is guarded by one ``is None`` check, and no
instrumentation site in the deterministic core imports anything from here
(the DES hook is dependency-injected, see :mod:`repro.obs.capture`).

Three facilities share one on/off switch:

* **metrics** -- a process-global :class:`~repro.obs.metrics.MetricsRegistry`
  fed by counters/gauges/timers at instrumentation sites;
* **tracing** -- a :class:`~repro.obs.trace.Tracer` writing nested spans and
  point events to a ``hex-repro/trace/v1`` JSONL file;
* **DES event capture** -- per-run :class:`~repro.obs.capture.DesRunObserver`
  instances recording every simulation event into the trace.

The hard contract (test-enforced, see ``tests/test_obs.py``): enabling or
disabling any of these never changes content keys, seed streams or canonical
records.  Instrumentation *reads* state; it never draws randomness and never
mutates the simulation.

Typical programmatic use::

    from repro import obs

    with obs.observed(trace="run.jsonl", des_events=True) as session:
        result = runner.run()
    session.registry.write("metrics.json")

State crosses process boundaries through :mod:`repro.obs.context`: when the
parent has observability on, :func:`fork_context` captures a picklable
:class:`TraceContext` that the campaign runner passes through the pool
initializer.  Each worker then runs its own registry and (when tracing is on)
writes its own pid-suffixed trace shard; on pool teardown workers flush raw
metrics shards, the parent folds them back in with ``worker.*`` provenance
(:func:`absorb_worker_shards`), and the trace shards are deterministically
merged into the parent trace when it closes (:mod:`repro.obs.merge`).
"""

from __future__ import annotations

import os as _os
import shutil as _shutil
import tempfile as _tempfile
import time as _time
import warnings as _warnings
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

from repro.obs import resources
from repro.obs.capture import DesRunObserver, first_firing_matrix_from_events
from repro.obs.context import (
    SPAN_ID_STRIDE,
    TraceContext,
    find_metrics_shards,
    worker_metrics_path,
    worker_trace_path,
)
from repro.obs.log import configure_logging, get_logger
from repro.obs.merge import MergeReport, merge_trace
from repro.obs.metrics import (
    METRICS_SCHEMA,
    METRICS_SCHEMA_VERSION,
    WORKER_METRICS_SCHEMA,
    WORKER_METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    load_metrics,
    load_worker_metrics,
    metrics_delta,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceSink,
    load_trace,
    load_trace_records,
)

__all__ = [
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "WORKER_METRICS_SCHEMA",
    "WORKER_METRICS_SCHEMA_VERSION",
    "DesRunObserver",
    "MergeReport",
    "MetricsRegistry",
    "TraceContext",
    "Tracer",
    "TraceSink",
    "ObsSession",
    "configure_logging",
    "get_logger",
    "enable",
    "disable",
    "worker_init",
    "fork_context",
    "absorb_worker_shards",
    "observed",
    "enabled",
    "metrics_enabled",
    "tracing_enabled",
    "des_events_enabled",
    "registry",
    "tracer",
    "span",
    "event",
    "inc",
    "gauge",
    "observe",
    "des_observer",
    "record_des_observer",
    "load_metrics",
    "load_trace",
    "load_trace_records",
    "load_worker_metrics",
    "merge_trace",
    "metrics_delta",
    "resources",
    "first_firing_matrix_from_events",
]

# ----------------------------------------------------------------------
# module-global state (None == disabled == zero overhead)
# ----------------------------------------------------------------------
_registry: Optional[MetricsRegistry] = None
_tracer: Optional[Tracer] = None
_des_events: bool = False
#: Path of the live trace file (needed to locate worker shards at merge time).
_trace_path: Optional[Path] = None
#: Trace merges queued by :func:`absorb_worker_shards`, run when the parent
#: tracer closes (the parent trace must be complete before worker spans can be
#: re-parented under it).
_pending_merges: List[Tuple[Path, Optional[int]]] = []


class ObsSession:
    """Handle returned by :func:`enable` / :func:`observed`.

    Exposes the live registry/tracer so callers can snapshot metrics or
    inspect trace counters after the observed region ends.
    """

    def __init__(
        self, registry: Optional[MetricsRegistry], tracer: Optional[Tracer]
    ) -> None:
        self.registry = registry
        self.tracer = tracer

    def write_metrics(self, path: Union[str, Path]) -> Optional[Path]:
        """Write the metrics snapshot if metrics are on; returns the path."""
        if self.registry is None:
            return None
        return self.registry.write(path)


def worker_init(context: Optional[TraceContext] = None) -> None:
    """Initialize obs state in a pool worker process.

    Fork-started workers inherit the parent's enabled registry and tracer --
    including the open trace file handle, whose file offset is shared with
    the parent; several processes writing through it would interleave and
    corrupt the JSONL stream.  Workers therefore always drop the inherited
    state *without* closing the handle (a close would flush the worker's copy
    of the parent's unflushed buffer, duplicating lines).

    With a :class:`TraceContext` (parent had obs on), the worker then brings
    up its own session: a fresh registry, and -- when the parent was tracing
    -- a tracer writing this worker's own pid-suffixed shard, anchored at the
    parent's timeline origin with pid-namespaced span ids.  Teardown is
    registered through ``multiprocessing.util.Finalize`` (NOT ``atexit``,
    which pool children skip: they exit via ``os._exit`` after
    ``util._exit_function``, and only the latter runs these finalizers under
    both ``fork`` and ``spawn``): on worker exit the registry is flushed to a
    raw ``hex-repro/worker-metrics/v1`` shard and the trace shard is closed.

    Passed as the ``initializer`` of the campaign runner's multiprocessing
    pool, with :func:`fork_context`'s result as its ``initargs``.
    """
    global _registry, _tracer, _des_events, _trace_path, _pending_merges
    _registry = None
    _tracer = None
    _des_events = False
    _trace_path = None
    _pending_merges = []
    if context is None:
        return
    pid = _os.getpid()
    _registry = MetricsRegistry() if context.metrics else None
    if context.tracing:
        sink = TraceSink(
            worker_trace_path(context, pid),
            header_extra={
                "trace_id": context.trace_id,
                "worker": pid,
                "parent_span_id": context.parent_span_id,
            },
        )
        _tracer = Tracer(sink, origin=context.origin, id_offset=pid * SPAN_ID_STRIDE)
    _des_events = bool(context.des_events)
    from multiprocessing.util import Finalize

    Finalize(None, _worker_teardown, args=(context,), exitpriority=10)


def _worker_teardown(context: TraceContext) -> None:
    """Flush this worker's telemetry shards on process exit (idempotent)."""
    global _registry, _tracer, _des_events
    if _registry is not None:
        try:
            _registry.write_worker_snapshot(worker_metrics_path(context, _os.getpid()))
        except OSError:
            pass
    if _tracer is not None:
        _tracer.close()
    _registry = None
    _tracer = None
    _des_events = False


def fork_context() -> Optional[TraceContext]:
    """The picklable context pool workers need, or ``None`` when obs is off.

    Captured by the campaign runner immediately before creating its pool, so
    ``parent_span_id`` is the orchestrator span the workers' task spans will
    hang under after the merge (normally ``campaign.run``).  When only
    metrics are on, a throwaway shard directory is created for the workers'
    metrics shards; :func:`absorb_worker_shards` removes it.
    """
    if not enabled():
        return None
    tracing = _tracer is not None and _trace_path is not None
    if tracing:
        shard_dir = str(_trace_path.parent) or "."
        stem = _trace_path.stem
        origin = _tracer.origin
        parent_span_id = _tracer.current_span_id
    else:
        shard_dir = _tempfile.mkdtemp(prefix="hex-repro-obs-")
        stem = f"metrics-{_os.getpid()}"
        origin = 0.0
        parent_span_id = None
    return TraceContext(
        trace_id=f"{stem}-{_os.getpid()}",
        trace_stem=stem,
        shard_dir=shard_dir,
        origin=origin,
        parent_span_id=parent_span_id,
        tracing=tracing,
        metrics=_registry is not None,
        des_events=_des_events and tracing,
    )


def absorb_worker_shards(
    context: TraceContext, expected: Optional[int] = None
) -> None:
    """Fold worker telemetry shards back into the parent session.

    Called by the campaign runner after the pool has been ``close()``d and
    ``join()``ed (so every worker's ``Finalize`` teardown has flushed its
    shards).  Metrics shards merge immediately, every name prefixed with
    ``worker.``; trace shards are *queued* and merged when the parent tracer
    closes, because worker spans re-parent under orchestrator spans that are
    only written once the parent trace is complete.

    ``expected`` (the pool's worker count) makes incomplete telemetry loud: a
    missing shard raises a ``RuntimeWarning`` instead of merging silently.
    """
    shard_dir = Path(context.shard_dir)
    if context.metrics:
        shards = find_metrics_shards(shard_dir, context.trace_stem)
        if _registry is not None:
            if expected is not None and len(shards) < expected:
                _warnings.warn(
                    f"expected {expected} worker metrics shard(s) under "
                    f"{shard_dir}, found {len(shards)} -- merged counters are "
                    f"missing worker activity",
                    RuntimeWarning,
                    stacklevel=2,
                )
            for shard in shards:
                try:
                    payload = load_worker_metrics(shard)
                except (OSError, ValueError) as error:
                    _warnings.warn(
                        f"{shard}: unreadable worker metrics shard ({error}); "
                        f"dropped from merge",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                _registry.merge_worker_snapshot(payload)
        for shard in shards:
            try:
                shard.unlink()
            except OSError:
                pass
    if context.tracing and _trace_path is not None:
        entry = (Path(_trace_path), expected)
        if entry not in _pending_merges:
            _pending_merges.append(entry)
    if not context.tracing:
        _shutil.rmtree(shard_dir, ignore_errors=True)


def enable(
    *,
    metrics: bool = True,
    trace: Optional[Union[str, Path]] = None,
    des_events: bool = False,
) -> ObsSession:
    """Turn observability on for this process.

    Parameters
    ----------
    metrics:
        Create a fresh :class:`MetricsRegistry` fed by all ``inc``/``gauge``/
        ``observe`` sites.
    trace:
        Path of a ``hex-repro/trace/v1`` JSONL file; when given, spans and
        events are recorded through a fresh :class:`Tracer`.
    des_events:
        Capture every DES event of every run into the trace (requires
        ``trace``; expensive for large runs, meant for single-run forensics).
        Without a trace file, ``des_events`` still records per-kind counters
        if metrics are on.
    """
    global _registry, _tracer, _des_events, _trace_path
    disable()
    _registry = MetricsRegistry() if metrics else None
    _tracer = Tracer(TraceSink(trace)) if trace is not None else None
    _trace_path = Path(trace) if trace is not None else None
    _des_events = bool(des_events)
    return ObsSession(_registry, _tracer)


def _finalize_tracer() -> None:
    """Close the live tracer, then run any queued worker-shard merges."""
    global _tracer, _pending_merges
    if _tracer is not None:
        _tracer.close()
        _tracer = None
    pending, _pending_merges = _pending_merges, []
    for path, expected in pending:
        try:
            report = merge_trace(path, expected_shards=expected)
        except (OSError, ValueError) as error:
            _warnings.warn(
                f"trace merge failed for {path}: {error}",
                RuntimeWarning,
                stacklevel=3,
            )
            continue
        for message in report.warnings:
            _warnings.warn(message, RuntimeWarning, stacklevel=3)


def disable() -> None:
    """Turn observability off, closing any open trace file (idempotent).

    Closing the trace also merges any worker shards queued by
    :func:`absorb_worker_shards` into it.
    """
    global _registry, _tracer, _des_events, _trace_path
    _finalize_tracer()
    _registry = None
    _tracer = None
    _des_events = False
    _trace_path = None


class observed:
    """Context manager enabling observability for a region, then restoring.

    Restores whatever state was active before (normally: disabled), so nested
    or test use cannot leak an enabled registry into later code.
    """

    def __init__(
        self,
        *,
        metrics: bool = True,
        trace: Optional[Union[str, Path]] = None,
        des_events: bool = False,
    ) -> None:
        self._kwargs = {"metrics": metrics, "trace": trace, "des_events": des_events}
        self._previous: Optional[tuple] = None

    def __enter__(self) -> ObsSession:
        global _registry, _tracer, _des_events, _trace_path, _pending_merges
        self._previous = (_registry, _tracer, _des_events, _trace_path, _pending_merges)
        # Detach (without closing) any outer session before enable() resets:
        # a closed outer tracer must not be restored on exit.
        _registry, _tracer, _des_events, _trace_path = None, None, False, None
        _pending_merges = []
        return enable(**self._kwargs)

    def __exit__(self, *exc_info) -> None:
        global _registry, _tracer, _des_events, _trace_path, _pending_merges
        _finalize_tracer()
        assert self._previous is not None
        _registry, _tracer, _des_events, _trace_path, _pending_merges = self._previous
        self._previous = None


# ----------------------------------------------------------------------
# cheap state queries
# ----------------------------------------------------------------------
def enabled() -> bool:
    """Whether any observability facility is on."""
    return _registry is not None or _tracer is not None


def metrics_enabled() -> bool:
    """Whether the metrics registry is live."""
    return _registry is not None


def tracing_enabled() -> bool:
    """Whether a trace file is being written."""
    return _tracer is not None


def des_events_enabled() -> bool:
    """Whether per-run DES event capture was requested."""
    return _des_events


def registry() -> Optional[MetricsRegistry]:
    """The live registry, or ``None`` when metrics are off."""
    return _registry


def tracer() -> Optional[Tracer]:
    """The live tracer, or ``None`` when tracing is off."""
    return _tracer


# ----------------------------------------------------------------------
# no-op-guarded instrumentation API
# ----------------------------------------------------------------------
class _NullSpan:
    """Shared do-nothing span handle used while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager pairing ``Tracer.start_span`` with a metrics timer."""

    __slots__ = ("_name", "_attrs", "_span", "_timer_start", "_registry")

    def __init__(self, name: str, attrs: dict) -> None:
        self._name = name
        self._attrs = attrs
        self._span = None
        self._registry = _registry
        self._timer_start = 0.0

    def __enter__(self):
        if _tracer is not None:
            self._span = _tracer.start_span(self._name, **self._attrs)
        if self._registry is not None:
            self._timer_start = _time.perf_counter()
        return self._span if self._span is not None else self

    def __exit__(self, *exc_info) -> None:
        if self._registry is not None:
            self._registry.observe(
                f"{self._name}_s", _time.perf_counter() - self._timer_start
            )
        if self._span is not None and _tracer is not None:
            _tracer.end_span(self._span)

    def set(self, **attrs: Any) -> None:
        if self._span is not None:
            self._span.set(**attrs)


def span(name: str, **attrs: Any):
    """A traced + timed region; a shared no-op handle when obs is off.

    Meant for per-run / per-batch granularity (engine runs, campaign tasks),
    NOT for per-event loops -- those go through the dependency-injected
    :class:`DesRunObserver` instead.
    """
    if _tracer is None and _registry is None:
        return _NULL_SPAN
    return _LiveSpan(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point-in-time trace event (no-op without a tracer)."""
    if _tracer is not None:
        _tracer.event(name, **attrs)


def inc(name: str, value: float = 1.0) -> None:
    """Increment a counter (no-op without metrics)."""
    if _registry is not None:
        _registry.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op without metrics)."""
    if _registry is not None:
        _registry.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Record a timer observation (no-op without metrics)."""
    if _registry is not None:
        _registry.observe(name, seconds)


# ----------------------------------------------------------------------
# DES run capture plumbing (used by repro.engines.des)
# ----------------------------------------------------------------------
def des_observer() -> Optional[DesRunObserver]:
    """A fresh per-run observer when obs is on, else ``None``.

    The DES engine assigns the result to ``HexNetwork.observer``; a ``None``
    leaves the network's single ``is None`` guard as the only cost.
    """
    if not enabled():
        return None
    return DesRunObserver(capture_events=_des_events and _tracer is not None)


def record_des_observer(
    observer: Optional[DesRunObserver],
    *,
    events_scheduled: int = 0,
    events_processed: int = 0,
) -> None:
    """Flush one finished run's observer into the registry and tracer.

    ``events_scheduled`` / ``events_processed`` come from the network's
    :class:`~repro.simulation.engine.EventQueue` counters, which are
    maintained unconditionally (they predate obs and cost nothing extra).
    """
    if _registry is not None:
        _registry.inc("des.events_scheduled", events_scheduled)
        _registry.inc("des.events_processed", events_processed)
        if observer is not None:
            for kind, count in sorted(observer.counts.items()):
                _registry.inc(f"des.{kind}", count)
    if _tracer is not None and observer is not None and observer.capture_events:
        for record in observer.events:
            attrs = dict(record)
            kind = attrs.pop("kind")
            _tracer.event("des.event", kind=kind, **attrs)
