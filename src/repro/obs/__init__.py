"""``repro.obs``: zero-overhead-by-default observability.

The subsystem is a strict no-op unless explicitly enabled: module state starts
as ``None``, every public helper is guarded by one ``is None`` check, and no
instrumentation site in the deterministic core imports anything from here
(the DES hook is dependency-injected, see :mod:`repro.obs.capture`).

Three facilities share one on/off switch:

* **metrics** -- a process-global :class:`~repro.obs.metrics.MetricsRegistry`
  fed by counters/gauges/timers at instrumentation sites;
* **tracing** -- a :class:`~repro.obs.trace.Tracer` writing nested spans and
  point events to a ``hex-repro/trace/v1`` JSONL file;
* **DES event capture** -- per-run :class:`~repro.obs.capture.DesRunObserver`
  instances recording every simulation event into the trace.

The hard contract (test-enforced, see ``tests/test_obs.py``): enabling or
disabling any of these never changes content keys, seed streams or canonical
records.  Instrumentation *reads* state; it never draws randomness and never
mutates the simulation.

Typical programmatic use::

    from repro import obs

    with obs.observed(trace="run.jsonl", des_events=True) as session:
        result = runner.run()
    session.registry.write("metrics.json")

State is per-process: worker processes of a parallel campaign run with
observability disabled, and the parent aggregates what the returned records
carry (wall times, skew stats) plus its own spans and counters.
"""

from __future__ import annotations

import time as _time
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.capture import DesRunObserver, first_firing_matrix_from_events
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    METRICS_SCHEMA,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    load_metrics,
    metrics_delta,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceSink,
    load_trace_records,
)

__all__ = [
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "DesRunObserver",
    "MetricsRegistry",
    "Tracer",
    "TraceSink",
    "ObsSession",
    "configure_logging",
    "get_logger",
    "enable",
    "disable",
    "worker_init",
    "observed",
    "enabled",
    "metrics_enabled",
    "tracing_enabled",
    "des_events_enabled",
    "registry",
    "tracer",
    "span",
    "event",
    "inc",
    "gauge",
    "observe",
    "des_observer",
    "record_des_observer",
    "load_metrics",
    "load_trace_records",
    "metrics_delta",
    "first_firing_matrix_from_events",
]

# ----------------------------------------------------------------------
# module-global state (None == disabled == zero overhead)
# ----------------------------------------------------------------------
_registry: Optional[MetricsRegistry] = None
_tracer: Optional[Tracer] = None
_des_events: bool = False


class ObsSession:
    """Handle returned by :func:`enable` / :func:`observed`.

    Exposes the live registry/tracer so callers can snapshot metrics or
    inspect trace counters after the observed region ends.
    """

    def __init__(
        self, registry: Optional[MetricsRegistry], tracer: Optional[Tracer]
    ) -> None:
        self.registry = registry
        self.tracer = tracer

    def write_metrics(self, path: Union[str, Path]) -> Optional[Path]:
        """Write the metrics snapshot if metrics are on; returns the path."""
        if self.registry is None:
            return None
        return self.registry.write(path)


def worker_init() -> None:
    """Reset inherited obs state in a pool worker process.

    Fork-started workers inherit the parent's enabled registry and tracer --
    including the open trace file handle, whose file offset is shared with
    the parent; several processes writing through it would interleave and
    corrupt the JSONL stream.  Workers drop the inherited state *without*
    closing the handle (a close would flush the worker's copy of the
    parent's unflushed buffer, duplicating lines).  Passed as the
    ``initializer`` of the campaign runner's multiprocessing pool.
    """
    global _registry, _tracer, _des_events
    _registry = None
    _tracer = None
    _des_events = False


def enable(
    *,
    metrics: bool = True,
    trace: Optional[Union[str, Path]] = None,
    des_events: bool = False,
) -> ObsSession:
    """Turn observability on for this process.

    Parameters
    ----------
    metrics:
        Create a fresh :class:`MetricsRegistry` fed by all ``inc``/``gauge``/
        ``observe`` sites.
    trace:
        Path of a ``hex-repro/trace/v1`` JSONL file; when given, spans and
        events are recorded through a fresh :class:`Tracer`.
    des_events:
        Capture every DES event of every run into the trace (requires
        ``trace``; expensive for large runs, meant for single-run forensics).
        Without a trace file, ``des_events`` still records per-kind counters
        if metrics are on.
    """
    global _registry, _tracer, _des_events
    disable()
    _registry = MetricsRegistry() if metrics else None
    _tracer = Tracer(TraceSink(trace)) if trace is not None else None
    _des_events = bool(des_events)
    return ObsSession(_registry, _tracer)


def disable() -> None:
    """Turn observability off, closing any open trace file (idempotent)."""
    global _registry, _tracer, _des_events
    if _tracer is not None:
        _tracer.close()
    _registry = None
    _tracer = None
    _des_events = False


class observed:
    """Context manager enabling observability for a region, then restoring.

    Restores whatever state was active before (normally: disabled), so nested
    or test use cannot leak an enabled registry into later code.
    """

    def __init__(
        self,
        *,
        metrics: bool = True,
        trace: Optional[Union[str, Path]] = None,
        des_events: bool = False,
    ) -> None:
        self._kwargs = {"metrics": metrics, "trace": trace, "des_events": des_events}
        self._previous: Optional[tuple] = None

    def __enter__(self) -> ObsSession:
        global _registry, _tracer, _des_events
        self._previous = (_registry, _tracer, _des_events)
        # Detach (without closing) any outer session before enable() resets:
        # a closed outer tracer must not be restored on exit.
        _registry, _tracer, _des_events = None, None, False
        return enable(**self._kwargs)

    def __exit__(self, *exc_info) -> None:
        global _registry, _tracer, _des_events
        if _tracer is not None:
            _tracer.close()
        assert self._previous is not None
        _registry, _tracer, _des_events = self._previous
        self._previous = None


# ----------------------------------------------------------------------
# cheap state queries
# ----------------------------------------------------------------------
def enabled() -> bool:
    """Whether any observability facility is on."""
    return _registry is not None or _tracer is not None


def metrics_enabled() -> bool:
    """Whether the metrics registry is live."""
    return _registry is not None


def tracing_enabled() -> bool:
    """Whether a trace file is being written."""
    return _tracer is not None


def des_events_enabled() -> bool:
    """Whether per-run DES event capture was requested."""
    return _des_events


def registry() -> Optional[MetricsRegistry]:
    """The live registry, or ``None`` when metrics are off."""
    return _registry


def tracer() -> Optional[Tracer]:
    """The live tracer, or ``None`` when tracing is off."""
    return _tracer


# ----------------------------------------------------------------------
# no-op-guarded instrumentation API
# ----------------------------------------------------------------------
class _NullSpan:
    """Shared do-nothing span handle used while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager pairing ``Tracer.start_span`` with a metrics timer."""

    __slots__ = ("_name", "_attrs", "_span", "_timer_start", "_registry")

    def __init__(self, name: str, attrs: dict) -> None:
        self._name = name
        self._attrs = attrs
        self._span = None
        self._registry = _registry
        self._timer_start = 0.0

    def __enter__(self):
        if _tracer is not None:
            self._span = _tracer.start_span(self._name, **self._attrs)
        if self._registry is not None:
            self._timer_start = _time.perf_counter()
        return self._span if self._span is not None else self

    def __exit__(self, *exc_info) -> None:
        if self._registry is not None:
            self._registry.observe(
                f"{self._name}_s", _time.perf_counter() - self._timer_start
            )
        if self._span is not None and _tracer is not None:
            _tracer.end_span(self._span)

    def set(self, **attrs: Any) -> None:
        if self._span is not None:
            self._span.set(**attrs)


def span(name: str, **attrs: Any):
    """A traced + timed region; a shared no-op handle when obs is off.

    Meant for per-run / per-batch granularity (engine runs, campaign tasks),
    NOT for per-event loops -- those go through the dependency-injected
    :class:`DesRunObserver` instead.
    """
    if _tracer is None and _registry is None:
        return _NULL_SPAN
    return _LiveSpan(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point-in-time trace event (no-op without a tracer)."""
    if _tracer is not None:
        _tracer.event(name, **attrs)


def inc(name: str, value: float = 1.0) -> None:
    """Increment a counter (no-op without metrics)."""
    if _registry is not None:
        _registry.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op without metrics)."""
    if _registry is not None:
        _registry.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Record a timer observation (no-op without metrics)."""
    if _registry is not None:
        _registry.observe(name, seconds)


# ----------------------------------------------------------------------
# DES run capture plumbing (used by repro.engines.des)
# ----------------------------------------------------------------------
def des_observer() -> Optional[DesRunObserver]:
    """A fresh per-run observer when obs is on, else ``None``.

    The DES engine assigns the result to ``HexNetwork.observer``; a ``None``
    leaves the network's single ``is None`` guard as the only cost.
    """
    if not enabled():
        return None
    return DesRunObserver(capture_events=_des_events and _tracer is not None)


def record_des_observer(
    observer: Optional[DesRunObserver],
    *,
    events_scheduled: int = 0,
    events_processed: int = 0,
) -> None:
    """Flush one finished run's observer into the registry and tracer.

    ``events_scheduled`` / ``events_processed`` come from the network's
    :class:`~repro.simulation.engine.EventQueue` counters, which are
    maintained unconditionally (they predate obs and cost nothing extra).
    """
    if _registry is not None:
        _registry.inc("des.events_scheduled", events_scheduled)
        _registry.inc("des.events_processed", events_processed)
        if observer is not None:
            for kind, count in sorted(observer.counts.items()):
                _registry.inc(f"des.{kind}", count)
    if _tracer is not None and observer is not None and observer.capture_events:
        for record in observer.events:
            attrs = dict(record)
            kind = attrs.pop("kind")
            _tracer.event("des.event", kind=kind, **attrs)
