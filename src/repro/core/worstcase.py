"""Deterministic worst-case delay constructions (Figs. 5 and 17).

The paper remarks that the worst-case bounds of Lemma 4 / Theorem 1 can be
almost matched by adversarially chosen (but legal) link delays.  Two concrete
constructions are visualised in the paper:

* **Fig. 5** -- a pulse wave that maximises the skew between two adjacent
  columns of the top layer: everything in and left of a "fast" column runs at
  ``d-``, everything right of it runs at ``d+`` and additionally suffers from a
  large initial layer-0 skew, and a barrier of dead (fail-silent) nodes keeps
  the fast and slow halves from short-circuiting around the cylinder.

* **Fig. 17** -- a single Byzantine (here: silent) node under the ramped
  layer-0 scenario (iv) with all delays ``d+``.  Without the fault every
  left-up diagonal would fire simultaneously; the silent node forces its upper
  neighbourhood to be triggered via a detour, generating an intra-layer skew of
  about ``5 d+`` (and an inter-layer skew smaller by ``d+``).

Each construction returns a :class:`WorstCaseConstruction` bundling the grid,
layer-0 times, per-link delay table and fault model, so experiments can run it
through either execution engine and compare the achieved skew against the
analytic bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.parameters import TimingConfig
from repro.core.topology import Direction, HexGrid, NodeId
from repro.faults.models import FaultModel, LinkBehavior, NodeFault
# repro: allow-import[worst-case constructions emit per-link delay tables; TableDelays predates the layering split]
from repro.simulation.links import TableDelays

__all__ = [
    "WorstCaseConstruction",
    "fig5_worst_case_wave",
    "fig17_single_byzantine_worst_case",
]


@dataclass
class WorstCaseConstruction:
    """A fully specified deterministic execution scenario.

    Attributes
    ----------
    name:
        Short identifier (``"fig5"`` / ``"fig17"``).
    grid:
        The HEX grid.
    timing:
        The delay bounds the construction was built for.
    layer0_times:
        Layer-0 firing times (length ``W``).
    delays:
        Per-link delay table.
    fault_model:
        Faults of the construction (dead barrier nodes / the Byzantine node).
    focus_columns:
        The pair of adjacent columns whose top-layer skew the construction
        maximises (``None`` when not applicable).
    focus_node:
        The faulty node of interest (Fig. 17), if any.
    """

    name: str
    grid: HexGrid
    timing: TimingConfig
    layer0_times: np.ndarray
    delays: TableDelays
    fault_model: FaultModel
    focus_columns: Optional[Tuple[int, int]] = None
    focus_node: Optional[NodeId] = None
    #: A fault model containing only the construction's structural elements
    #: (dead barrier columns) but not the adversarial fault itself; used as the
    #: fault-free reference when quantifying the fault's impact (Fig. 17).
    reference_fault_model: Optional[FaultModel] = None


def fig5_worst_case_wave(
    timing: TimingConfig,
    layers: int = 16,
    width: int = 17,
    fast_column: int = 8,
    barrier_column: int = 16,
) -> WorstCaseConstruction:
    """The Fig. 5 construction: maximise the top-layer skew across one column pair.

    Parameters
    ----------
    timing:
        Delay bounds (``d-`` is used left of the split, ``d+`` right of it).
    layers, width:
        Grid dimensions.  The defaults reflect the figure (columns 0..16 with
        the dead barrier in column 16 and the focus on columns 8 and 9).
    fast_column:
        The last "fast" column; the skew of interest is between
        ``fast_column`` and ``fast_column + 1`` at the top layer.
    barrier_column:
        The column whose nodes are declared dead (fail-silent) in every
        forwarding layer, preventing wrap-around short-cuts.

    Notes
    -----
    The construction realises the "torn apart" regime of Lemma 4 (Case 2),
    following the paper's caption: "Nodes in and left of column 8 are
    left-triggered ... with minimal delays of d-.  Nodes in and right of
    column 9 are slow due to large delays of d+ and large initial skews in
    parts of layer 0."

    * Layer-0 nodes in and left of ``fast_column`` fire at time 0; all links
      whose destination lies in or left of ``fast_column`` are fast (``d-``).
      The fast column then fires at the end of a left zig-zag causal path of
      length ``2 l`` (it is left-triggered on every layer), i.e. at about
      ``2 l d-`` on layer ``l``.
    * Layer-0 nodes right of ``fast_column`` (up to the barrier) fire late, at
      ``T0 = L d- + d+``, and all links towards their columns are slow
      (``d+``), so the slow column reaches layer ``l`` only at ``T0 + l d+``.
    * The barrier column is fail-silent in every forwarding layer, preventing
      the fast wave from wrapping around the cylinder and reaching the slow
      side from the right.

    The resulting top-layer skew between the focus columns is about
    ``d+ + L epsilon`` -- an order of magnitude above anything observed under
    random delays (Table 1) -- while staying below the Lemma 4 bound evaluated
    with the construction's layer-0 skew potential.
    """
    if not 0 < fast_column < barrier_column:
        raise ValueError("need 0 < fast_column < barrier_column")
    if barrier_column >= width:
        raise ValueError("barrier_column must lie inside the grid")
    grid = HexGrid(layers=layers, width=width)

    late_start = layers * timing.d_min + timing.d_max
    layer0_times = np.zeros(width, dtype=float)
    for column in range(fast_column + 1, barrier_column + 1):
        layer0_times[column] = late_start

    delays = TableDelays({}, default=timing.d_max)
    for source, destination in grid.links():
        if destination[1] <= fast_column and source[1] <= fast_column + 1:
            delays.set(source, destination, timing.d_min)

    fault_model = FaultModel(grid)
    for layer in range(1, layers + 1):
        fault_model.add_node_fault(NodeFault.fail_silent(grid, (layer, barrier_column)))

    return WorstCaseConstruction(
        name="fig5",
        grid=grid,
        timing=timing,
        layer0_times=layer0_times,
        delays=delays,
        fault_model=fault_model,
        focus_columns=(fast_column, fast_column + 1),
    )


def fig17_single_byzantine_worst_case(
    timing: TimingConfig,
    layers: int = 12,
    width: int = 20,
    fault_layer: int = 6,
    fault_column: Optional[int] = None,
    barrier_column: Optional[int] = None,
) -> WorstCaseConstruction:
    """The Fig. 17 construction: one silent node under ramped layer-0 times.

    All link delays are ``d+`` and layer-0 firing times increase from left to
    right by ``d+`` per hop (the rising half of scenario (iv)); in the absence
    of faults every left-up diagonal fires simultaneously.  A single silent
    node then forces its upper-left neighbourhood onto a detour, producing an
    intra-layer skew of roughly ``5 d+`` between nodes above the fault and an
    inter-layer skew smaller by ``d+``.

    Parameters
    ----------
    fault_layer, fault_column:
        Position of the faulty node.  It must sit far enough from the grid
        boundaries for the detour to unfold; the default places it mid-grid.
    barrier_column:
        A column made fail-silent in every forwarding layer to stop the
        "early" wave that the monotone layer-0 ramp creates at the cylinder's
        wrap-around (between the latest and the earliest source) from reaching
        the fault's neighbourhood.  Defaults to the column diametrically
        opposite the fault.
    """
    grid = HexGrid(layers=layers, width=width)
    if fault_column is None:
        fault_column = width // 2
    if barrier_column is None:
        barrier_column = (fault_column + width // 2) % width
    if not 1 <= fault_layer < layers - 1:
        raise ValueError("fault_layer must leave at least one layer above and below")
    if abs(barrier_column - fault_column) < 3:
        raise ValueError("barrier_column must be well separated from the fault column")

    # Rising ramp: the left-most column fires first.  (Only the rising half of
    # scenario (iv) matters for the construction; using a monotone ramp keeps
    # the wrap-around column out of the picture.)
    layer0_times = np.arange(width, dtype=float) * timing.d_max

    delays = TableDelays({}, default=timing.d_max)

    # Barrier-only reference model (the construction's "fault-free" baseline).
    reference = FaultModel(grid)
    for layer in range(1, layers + 1):
        reference.add_node_fault(NodeFault.fail_silent(grid, (layer, barrier_column)))

    fault_model = FaultModel(grid)
    for layer in range(1, layers + 1):
        fault_model.add_node_fault(NodeFault.fail_silent(grid, (layer, barrier_column)))
    # The adversarial behaviour that tears the fault's upper neighbours apart:
    # trigger the "early" side (left / upper-left) immediately via stuck-at-1
    # outputs, stay silent towards the "late" side (right / upper-right), so
    # the upper-right neighbour has to wait for a detour via its right
    # neighbour while the upper-left neighbour is centrally triggered early.
    fault_node = (fault_layer, fault_column)
    behaviors = {}
    for direction, destination in grid.out_neighbors(fault_node).items():
        if direction in (Direction.LEFT, Direction.UPPER_LEFT):
            behaviors[destination] = LinkBehavior.CONSTANT_ONE
        else:
            behaviors[destination] = LinkBehavior.CONSTANT_ZERO
    fault_model.add_node_fault(NodeFault.byzantine(grid, fault_node, behaviors=behaviors))

    return WorstCaseConstruction(
        name="fig17",
        grid=grid,
        timing=timing,
        layer0_times=layer0_times,
        delays=delays,
        fault_model=fault_model,
        focus_node=(fault_layer, fault_column),
        reference_fault_model=reference,
    )
