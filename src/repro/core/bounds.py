"""Worst-case skew bounds and parameter formulas of Section 3.

Every analytic result of the paper's skew and resilience analysis is available
as a plain function so that experiments and tests can compare measured skews
against the corresponding guarantee:

============================  ====================================================
Paper statement               Function
============================  ====================================================
Definition 3 (skew potential) :func:`skew_potential` (on a vector of layer times)
Lemma 3                       :func:`lemma3_skew_potential_bound`
Lemma 4                       :func:`lemma4_intra_layer_bound`
Corollary 1                   :func:`corollary1_intra_layer_bound`
Theorem 1 (intra-layer)       :func:`theorem1_intra_layer_bound`,
                              :func:`theorem1_uniform_bound`
Theorem 1 (inter-layer)       :func:`theorem1_inter_layer_bounds`
Lemma 5                       :func:`lemma5_pulse_skew_bound`,
                              :func:`lemma5_triggering_window`
Theorem 2                     :func:`theorem2_stabilization_pulses`
Section 4.4 / Figs. 18-19     :func:`stable_skew_choice` (the ``C`` parameter)
============================  ====================================================

The quantity ``lambda_0 = floor(l d- / d+)`` and the identity
``l - lambda_0 = ceil(l epsilon / d+)`` (Eq. (4)) come from
:func:`repro.core.parameters.lambda0`.

A note on the constant quoted in Section 4.2: the paper states that Theorem 1
bounds the maximum intra-layer skew by 21.63 ns for scenarios (i)/(ii) with
the default parameters.  Evaluating the theorem's displayed formula
``d+ + ceil(W eps / d+) eps`` yields 11.3 ns; the quoted 21.63 ns corresponds to
``2 d+ + 2 W eps^2 / d+``, the closed form of the earlier conference version.
Both are provided (:func:`theorem1_uniform_bound` and
:func:`paper_quoted_theorem1_value`) and the discrepancy is recorded in
EXPERIMENTS.md; all simulated skews stay far below either value.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.core.parameters import TimingConfig

__all__ = [
    "skew_potential",
    "lemma3_skew_potential_bound",
    "lemma4_intra_layer_bound",
    "corollary1_intra_layer_bound",
    "theorem1_uniform_bound",
    "theorem1_intra_layer_bound",
    "theorem1_inter_layer_bounds",
    "paper_quoted_theorem1_value",
    "lemma5_pulse_skew_bound",
    "lemma5_triggering_window",
    "theorem2_stabilization_pulses",
    "stable_skew_choice",
]


# ----------------------------------------------------------------------
# Definition 3
# ----------------------------------------------------------------------
def skew_potential(layer_times: Sequence[float], d_min: float) -> float:
    """The skew potential ``Delta_l`` of a layer (Definition 3 (ii)).

    ``Delta_l = max_{i,j} { t_{l,i} - t_{l,j} - |i - j|_W d- }`` where
    ``|i - j|_W`` is the cyclic column distance.  The result is always
    non-negative (the case ``i = j`` contributes 0).

    ``nan`` entries (faulty nodes) are ignored; if fewer than one finite entry
    remains the potential is 0 by convention.
    """
    times = np.asarray(layer_times, dtype=float)
    width = times.shape[0]
    finite = np.isfinite(times)
    if not np.any(finite):
        return 0.0
    columns = np.arange(width)
    # Pairwise cyclic distances and pairwise time differences, vectorized.
    diff = np.subtract.outer(times, times)  # diff[i, j] = t_i - t_j
    raw = np.abs(np.subtract.outer(columns, columns))
    cyc = np.minimum(raw, width - raw)
    potential = diff - cyc * d_min
    potential = np.where(np.isfinite(potential), potential, -np.inf)
    return float(max(0.0, np.max(potential)))


# ----------------------------------------------------------------------
# Lemma 3
# ----------------------------------------------------------------------
def lemma3_skew_potential_bound(timing: TimingConfig, width: int) -> float:
    """Lemma 3: for ``W > 2`` and all layers ``l >= W - 2``, ``Delta_l <= 2 (W - 2) eps``.

    The bound holds regardless of the layer-0 skew potential, which is what
    makes HEX tolerate arbitrary layer-0 skews at the cost of "losing" the
    first ``W - 2`` layers.
    """
    if width <= 2:
        raise ValueError(f"Lemma 3 requires W > 2, got {width}")
    return 2.0 * (width - 2) * timing.epsilon


# ----------------------------------------------------------------------
# Lemma 4
# ----------------------------------------------------------------------
def lemma4_intra_layer_bound(
    timing: TimingConfig,
    layer: int,
    base_layer: int = 0,
    base_skew_potential: float = 0.0,
) -> float:
    """Lemma 4: ``|t_{l,i} - t_{l,i+1}| <= d+ + ceil((l - l0) eps / d+) eps + Delta_{l0}``.

    Parameters
    ----------
    layer:
        The layer ``l`` of the two neighbouring nodes.
    base_layer:
        The reference layer ``l0 < l`` whose skew potential is known.
    base_skew_potential:
        ``Delta_{l0}``, the skew potential of the reference layer.
    """
    if layer <= base_layer:
        raise ValueError(f"layer ({layer}) must exceed base_layer ({base_layer})")
    if base_skew_potential < 0:
        raise ValueError("skew potential cannot be negative")
    depth = layer - base_layer
    ceil_term = math.ceil(depth * timing.epsilon / timing.d_max)
    return timing.d_max + ceil_term * timing.epsilon + base_skew_potential


# ----------------------------------------------------------------------
# Corollary 1
# ----------------------------------------------------------------------
def corollary1_intra_layer_bound(
    timing: TimingConfig,
    width: int,
    skew_potential_w_below: float,
) -> float:
    """Corollary 1: width-aware refinement of Lemma 4 for layers ``l >= W``.

    ``|t_{l,i} - t_{l,i+1}| <= max( d+ + ceil(W eps / d+) eps,
    Delta_{l-W} + d+ + W eps - d-/2 )``.

    Parameters
    ----------
    width:
        The grid width ``W``.
    skew_potential_w_below:
        ``Delta_{l-W}``, the skew potential of the layer ``W`` layers below.

    Notes
    -----
    The second term of the maximum follows the corollary's proof
    (``t_{l,i+1} <= t_{l,i} + Delta_{l-W} + (l - lambda_0) d+ - d-/2`` with
    ``(l - lambda_0) d+ <= W eps + d+``); the displayed statement writes it as
    ``Delta_{l-W} + d+ - W delta`` with ``delta = d-/2 - eps`` scaled per
    column.  We use the proof's (slightly weaker, unambiguous) form.
    """
    if width < 3:
        raise ValueError(f"width must be at least 3, got {width}")
    if skew_potential_w_below < 0:
        raise ValueError("skew potential cannot be negative")
    first = theorem1_uniform_bound(timing, width)
    second = skew_potential_w_below + timing.d_max + width * timing.epsilon - timing.d_min / 2.0
    return max(first, second)


# ----------------------------------------------------------------------
# Theorem 1
# ----------------------------------------------------------------------
def theorem1_uniform_bound(timing: TimingConfig, width: int) -> float:
    """The uniform Theorem 1 bound ``d+ + ceil(W eps / d+) eps``.

    This bounds the intra-layer skew of every layer when ``Delta_0 = 0`` and,
    in the general case, of every layer ``l >= 2W - 2``.
    """
    if width < 3:
        raise ValueError(f"width must be at least 3, got {width}")
    ceil_term = math.ceil(width * timing.epsilon / timing.d_max)
    return timing.d_max + ceil_term * timing.epsilon


def theorem1_intra_layer_bound(
    timing: TimingConfig,
    width: int,
    layer: int,
    layer0_skew_potential: float = 0.0,
    require_constraint: bool = True,
) -> float:
    """Theorem 1's intra-layer skew bound ``sigma_l`` for a given layer.

    Parameters
    ----------
    width, layer:
        Grid width ``W`` and the layer ``l >= 1`` of interest.
    layer0_skew_potential:
        ``Delta_0``; 0 for perfectly aligned clock sources.
    require_constraint:
        If ``True`` (default), raise when ``eps > d+/7`` -- outside this regime
        the theorem as stated does not apply.

    Returns
    -------
    float
        * ``Delta_0 = 0``: the uniform bound for every layer;
        * otherwise, for ``1 <= l <= 2W - 3``: the Lemma 4 bound
          ``d+ + ceil(l eps / d+) eps + Delta_0``;
        * for ``l >= 2W - 2``: the uniform bound.
    """
    if layer < 1:
        raise ValueError(f"layer must be >= 1, got {layer}")
    if require_constraint and not timing.satisfies_theorem1_constraint:
        raise ValueError(
            f"Theorem 1 requires eps <= d+/7 (eps={timing.epsilon}, d+={timing.d_max})"
        )
    uniform = theorem1_uniform_bound(timing, width)
    if layer0_skew_potential <= 0.0:
        return uniform
    if layer <= 2 * width - 3:
        return lemma4_intra_layer_bound(
            timing, layer, base_layer=0, base_skew_potential=layer0_skew_potential
        )
    return uniform


def theorem1_inter_layer_bounds(
    timing: TimingConfig, sigma_previous_layer: float
) -> Tuple[float, float]:
    """Theorem 1's inter-layer skew window.

    Given the intra-layer skew bound ``sigma_{l-1}`` of the layer below, the
    (signed) inter-layer skew ``t_{l,i} - t_{l-1,i}`` (and w.r.t. the
    lower-right neighbour) lies within ``[d- - sigma_{l-1}, d+ + sigma_{l-1}]``.
    """
    if sigma_previous_layer < 0:
        raise ValueError("sigma of the previous layer cannot be negative")
    return (timing.d_min - sigma_previous_layer, timing.d_max + sigma_previous_layer)


def paper_quoted_theorem1_value(timing: TimingConfig, width: int) -> float:
    """The numeric worst-case value quoted in Section 4.2 (21.63 ns).

    Computed as ``2 d+ + 2 W eps^2 / d+``; see the module docstring for why
    this differs from :func:`theorem1_uniform_bound`.
    """
    return 2.0 * timing.d_max + 2.0 * width * timing.epsilon**2 / timing.d_max


# ----------------------------------------------------------------------
# Lemma 5 (faulty case)
# ----------------------------------------------------------------------
def lemma5_pulse_skew_bound(
    timing: TimingConfig,
    layers: int,
    num_faults: int,
    layer0_spread: float = 0.0,
) -> float:
    """Lemma 5's coarse bound on the skew of a whole pulse.

    With all correct layer-0 nodes firing within ``[t_min, t_max]`` and at most
    ``f`` faulty nodes satisfying Condition 1, the pulse skew is less than
    ``(t_max - t_min) + eps L + f d+``.

    Parameters
    ----------
    layers:
        The grid length ``L``.
    num_faults:
        The number of faults ``f``.
    layer0_spread:
        ``t_max - t_min`` of the layer-0 firing times.
    """
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    if num_faults < 0:
        raise ValueError(f"num_faults must be non-negative, got {num_faults}")
    if layer0_spread < 0:
        raise ValueError(f"layer0_spread must be non-negative, got {layer0_spread}")
    return layer0_spread + timing.epsilon * layers + num_faults * timing.d_max


def lemma5_triggering_window(
    timing: TimingConfig,
    layer: int,
    num_faulty_layers_below: int,
    t_min: float,
    t_max: float,
) -> Tuple[float, float]:
    """Lemma 5's window for the firing times of correct nodes on a layer.

    All correct nodes on layer ``l`` are triggered within
    ``[t_min + l d-, t_max + (l + f_l) d+]``, where ``f_l`` is the number of
    layers ``<= l`` containing a faulty node.
    """
    if layer < 0:
        raise ValueError(f"layer must be non-negative, got {layer}")
    if num_faulty_layers_below < 0:
        raise ValueError("num_faulty_layers_below must be non-negative")
    if t_max < t_min:
        raise ValueError(f"t_max ({t_max}) must be >= t_min ({t_min})")
    lower = t_min + layer * timing.d_min
    upper = t_max + (layer + num_faulty_layers_below) * timing.d_max
    return (lower, upper)


# ----------------------------------------------------------------------
# Theorem 2 (self-stabilization)
# ----------------------------------------------------------------------
def theorem2_stabilization_pulses(layer: int) -> int:
    """Theorem 2's worst-case stabilization bound for a layer.

    Layer ``l`` is stable (with skew at most ``sigma(f)``) in all pulses
    ``k > l``; the whole grid of length ``L`` is therefore stable from pulse
    ``L + 1`` on.  The function returns the first guaranteed-stable pulse
    number ``l + 1``.
    """
    if layer < 0:
        raise ValueError(f"layer must be non-negative, got {layer}")
    return layer + 1


# ----------------------------------------------------------------------
# Section 4.4: the C parameter of the stabilization experiments
# ----------------------------------------------------------------------
def stable_skew_choice(
    choice: int,
    timing: TimingConfig,
    layers: int,
    layer: int,
    num_faults: int,
    layer0_spread: float = 0.0,
) -> float:
    """The per-layer stable-skew bound ``sigma(f, l)`` used in Figs. 18-19.

    The paper evaluates four choices ``C in {0, 1, 2, 3}``:

    * ``C = 0``: the very conservative per-layer Lemma 5 bound
      ``(t_max - t_min) + eps l + f d+``;
    * ``C in {1, 2, 3}``: the aggressive constants ``(4 - C) d+``
      (i.e. ``3 d+``, ``2 d+``, ``1 d+``).
    """
    if choice not in (0, 1, 2, 3):
        raise ValueError(f"C must be one of 0..3, got {choice}")
    if not 0 <= layer <= layers:
        raise ValueError(f"layer {layer} out of range [0, {layers}]")
    if choice == 0:
        return layer0_spread + timing.epsilon * layer + num_faults * timing.d_max
    return (4 - choice) * timing.d_max
