"""The HEX pulse-forwarding algorithm (Algorithm 1) as an executable state machine.

The paper implements each HEX node as two cooperating asynchronous state
machines (Fig. 7):

* the **firing state machine** (Fig. 7a) cycles through
  ``READY -> (guard satisfied) -> FIRING -> SLEEPING -> READY``; the memory
  flags are cleared on the ``SLEEPING -> READY`` transition;
* one **memory-flag state machine per incoming link** (Fig. 7b) that moves from
  ``ready`` to ``memorize`` when a trigger message is received and back to
  ``ready`` after the link timeout ``T_link`` expires (or when the firing state
  machine clears it on wake-up).

The firing guard of Algorithm 1 is: trigger messages memorized from

* the **left and lower-left** neighbours (the node is then *left-triggered*), or
* the **lower-left and lower-right** neighbours (*centrally triggered*), or
* the **lower-right and right** neighbours (*right-triggered*).

:class:`HexNodeAutomaton` models exactly this timed behaviour in an
engine-agnostic way: it never draws random numbers and never touches an event
queue.  Timer durations are supplied by the caller (the discrete-event network
in :mod:`repro.simulation.network`), and state transitions return structured
:class:`FiringRecord` values so that causal analysis (Definition 1) can be
performed on simulation traces.

Since the paper folds the node's switching delay into the end-to-end link delay
bounds, firing is instantaneous here: when the guard becomes satisfied at time
``t`` the node's trigger messages are sent at time ``t``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.topology import GUARD_NAMES, TRIGGER_GUARDS, Direction, NodeId

__all__ = [
    "NodePhase",
    "GuardKind",
    "FiringRecord",
    "HexNodeAutomaton",
    "INCOMING_DIRECTIONS",
]

#: The four incoming directions a forwarding node listens to, in a fixed order
#: (used for deterministic iteration and array layouts).
INCOMING_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.LEFT,
    Direction.LOWER_LEFT,
    Direction.LOWER_RIGHT,
    Direction.RIGHT,
)


class NodePhase(enum.Enum):
    """Phase of the firing state machine of Fig. 7a.

    ``FIRING`` is a transient phase in the hardware; in the timed abstraction
    the node passes through it instantaneously, so only ``READY`` and
    ``SLEEPING`` are observable between events.
    """

    READY = "ready"
    SLEEPING = "sleeping"


class GuardKind(enum.IntEnum):
    """Which of the three guards of Algorithm 1 caused a node to fire.

    The integer values index :data:`repro.core.topology.TRIGGER_GUARDS`.
    Following Definition 1 the node is called left-, centrally- or
    right-triggered respectively, and the two links of the satisfied guard are
    the *causal links* of the firing.
    """

    LEFT_TRIGGERED = 0
    CENTRALLY_TRIGGERED = 1
    RIGHT_TRIGGERED = 2

    @property
    def causal_directions(self) -> Tuple[Direction, Direction]:
        """The two incoming directions whose links are causal for this guard."""
        return TRIGGER_GUARDS[int(self)]

    @property
    def label(self) -> str:
        """Short human-readable label (``"left"``, ``"central"``, ``"right"``)."""
        return GUARD_NAMES[int(self)]


@dataclass(frozen=True)
class FiringRecord:
    """A single firing (pulse forwarding) of a HEX node.

    Attributes
    ----------
    node:
        The firing node.
    time:
        The real time at which the node fired (= broadcast its trigger message).
    guard:
        Which guard was satisfied, or ``None`` for layer-0 source pulses and for
        spurious firings forced by an arbitrary initial state.
    memorized:
        Snapshot of which incoming directions were memorized at firing time.
    """

    node: NodeId
    time: float
    guard: Optional[GuardKind]
    memorized: Tuple[Direction, ...] = ()


@dataclass
class HexNodeAutomaton:
    """Executable model of one HEX forwarding node (Algorithm 1 / Fig. 7).

    The automaton is driven by four kinds of stimuli, each supplied with the
    current real time ``now`` by the simulation network:

    * :meth:`receive_trigger` -- a trigger message arrived on an incoming link;
    * :meth:`expire_flag` -- a link timer ran out;
    * :meth:`wake_up` -- the sleep timer ran out;
    * :meth:`try_fire` -- re-evaluate the firing guard (called internally after
      every flag change, and by the network after initialisation).

    The automaton itself never draws timer durations; the caller passes the
    concrete ``T_link``/``T_sleep`` duration drawn for each individual timer
    start, which keeps all randomness under the control of the simulation's
    seeded RNG streams.

    Attributes
    ----------
    node:
        The node's grid coordinates (layer, column).
    phase:
        Current phase of the firing state machine.
    flags:
        ``direction -> expiry time`` for currently memorized trigger messages.
        A direction is memorized iff it is a key of this dict.
    wake_time:
        Absolute time at which the node wakes up (only meaningful while
        sleeping).
    firings:
        Chronological list of all firings of this node in the current run.
    """

    node: NodeId
    phase: NodePhase = NodePhase.READY
    flags: Dict[Direction, float] = field(default_factory=dict)
    wake_time: float = -math.inf
    firings: List[FiringRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------
    def is_memorized(self, direction: Direction) -> bool:
        """Whether a trigger message from ``direction`` is currently memorized."""
        return direction in self.flags

    def memorized_directions(self) -> Tuple[Direction, ...]:
        """The currently memorized incoming directions, in canonical order."""
        return tuple(d for d in INCOMING_DIRECTIONS if d in self.flags)

    def satisfied_guard(self) -> Optional[GuardKind]:
        """The first satisfied guard of Algorithm 1, or ``None``.

        Guards are checked in the fixed order left / central / right; when the
        trigger messages of more than one guard are memorized simultaneously the
        classification is ambiguous in the paper as well, and the simulator
        simply reports the first match (the skew analysis never depends on
        which of several simultaneously-satisfied guards is reported).
        """
        for kind in GuardKind:
            a, b = kind.causal_directions
            if a in self.flags and b in self.flags:
                return kind
        return None

    @property
    def num_firings(self) -> int:
        """Number of firings recorded so far."""
        return len(self.firings)

    # ------------------------------------------------------------------
    # stimuli
    # ------------------------------------------------------------------
    def receive_trigger(
        self, direction: Direction, now: float, link_timeout: float
    ) -> Optional[float]:
        """Process an arriving trigger message.

        Parameters
        ----------
        direction:
            The incoming direction the message arrived on.
        now:
            Current real time.
        link_timeout:
            The concrete duration drawn from ``[T^-_link, T^+_link]`` for this
            memorization (per Fig. 7b a *new* timer is started only when the
            flag transitions from clear to set; messages arriving while the
            flag is already set are absorbed by the set flag and ignored).

        Returns
        -------
        Optional[float]
            The absolute expiry time of the freshly started link timer, or
            ``None`` if the message was absorbed by an already-set flag (in
            which case no new expiry event must be scheduled).
        """
        if direction not in INCOMING_DIRECTIONS:
            raise ValueError(f"{direction} is not an incoming direction")
        if link_timeout <= 0:
            raise ValueError(f"link timeout must be positive, got {link_timeout}")
        if direction in self.flags:
            return None
        expiry = now + link_timeout
        self.flags[direction] = expiry
        return expiry

    def expire_flag(self, direction: Direction, expiry: float) -> bool:
        """Clear a memory flag whose link timer ran out.

        The ``expiry`` timestamp is compared against the currently stored one so
        that stale expiry events (e.g. the flag was cleared on wake-up and set
        again afterwards) are ignored.

        Returns
        -------
        bool
            ``True`` if the flag was actually cleared.
        """
        stored = self.flags.get(direction)
        if stored is not None and math.isclose(stored, expiry, rel_tol=0.0, abs_tol=1e-12):
            del self.flags[direction]
            return True
        return False

    def try_fire(self, now: float, sleep_duration: float) -> Optional[FiringRecord]:
        """Fire if the node is ready and a guard is satisfied.

        Parameters
        ----------
        now:
            Current real time.
        sleep_duration:
            The concrete duration drawn from ``[T^-_sleep, T^+_sleep]`` to be
            used *if* the node fires now (ignored otherwise).

        Returns
        -------
        Optional[FiringRecord]
            The firing record if the node fired, else ``None``.  When a firing
            is returned the caller must broadcast the node's trigger messages
            and schedule a wake-up event at ``self.wake_time``.
        """
        if self.phase is not NodePhase.READY:
            return None
        guard = self.satisfied_guard()
        if guard is None:
            return None
        if sleep_duration <= 0:
            raise ValueError(f"sleep duration must be positive, got {sleep_duration}")
        record = FiringRecord(
            node=self.node,
            time=now,
            guard=guard,
            memorized=self.memorized_directions(),
        )
        self.firings.append(record)
        self.phase = NodePhase.SLEEPING
        self.wake_time = now + sleep_duration
        return record

    def wake_up(self, now: float) -> bool:
        """Wake up from sleeping: clear all memory flags and become ready.

        Stale wake-up events (time not matching :attr:`wake_time`, e.g. after a
        forced re-initialisation) are ignored.

        Returns
        -------
        bool
            ``True`` if the node actually woke up.
        """
        if self.phase is not NodePhase.SLEEPING:
            return False
        if not math.isclose(self.wake_time, now, rel_tol=0.0, abs_tol=1e-9):
            return False
        self.phase = NodePhase.READY
        self.flags.clear()
        self.wake_time = -math.inf
        return True

    # ------------------------------------------------------------------
    # initial-state control (self-stabilization experiments)
    # ------------------------------------------------------------------
    def force_state(
        self,
        phase: NodePhase,
        flags: Optional[Dict[Direction, float]] = None,
        wake_time: float = -math.inf,
    ) -> None:
        """Force an arbitrary internal state (for stabilization experiments).

        Parameters
        ----------
        phase:
            The phase to start in.
        flags:
            Mapping ``direction -> absolute flag-expiry time`` of memory flags
            that are set in the initial state.  Expiry times must lie in the
            future of the simulation start for the flags to have any effect.
        wake_time:
            Absolute wake-up time if starting in the ``SLEEPING`` phase.
        """
        self.phase = phase
        self.flags = dict(flags) if flags else {}
        for direction in self.flags:
            if direction not in INCOMING_DIRECTIONS:
                raise ValueError(f"{direction} is not an incoming direction")
        self.wake_time = wake_time if phase is NodePhase.SLEEPING else -math.inf

    def reset(self) -> None:
        """Reset to the clean initial state (ready, no flags, no history)."""
        self.phase = NodePhase.READY
        self.flags.clear()
        self.wake_time = -math.inf
        self.firings.clear()
