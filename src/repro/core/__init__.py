"""Core HEX machinery: topology, algorithm, analytic solver, bounds, worst cases.

This subpackage contains the paper's primary contribution:

* :mod:`repro.core.topology` -- the cylindric hexagonal grid of Fig. 1.
* :mod:`repro.core.parameters` -- timing parameters and Condition 2.
* :mod:`repro.core.algorithm` -- the HEX node state machines (Algorithm 1 / Fig. 7).
* :mod:`repro.core.pulse_solver` -- the analytic single-pulse trigger-time solver.
* :mod:`repro.core.zigzag` -- causal links and left zig-zag paths (Definitions 1-2).
* :mod:`repro.core.bounds` -- the worst-case skew bounds of Section 3.
* :mod:`repro.core.worstcase` -- deterministic worst-case constructions (Figs. 5, 17).
"""

from repro.core.parameters import TimeoutConfig, TimingConfig, condition2_timeouts
from repro.core.pulse_solver import PulseSolution, solve_single_pulse
from repro.core.topology import Direction, HexGrid, LinkId, NodeId

__all__ = [
    "HexGrid",
    "NodeId",
    "LinkId",
    "Direction",
    "TimingConfig",
    "TimeoutConfig",
    "condition2_timeouts",
    "solve_single_pulse",
    "PulseSolution",
]
