"""The cylindric hexagonal grid topology of the HEX clock-distribution fabric.

The HEX grid (Section 2, Fig. 1 of the paper) is a directed communication graph
``(V, E)`` parameterised by its *length* ``L`` (number of forwarding layers) and
its *width* ``W`` (number of columns).  The node set is

    ``V = { (layer, column) : layer in {0, ..., L}, column in {0, ..., W-1} }``

with column arithmetic taken modulo ``W`` (the grid is a cylinder).  Layer 0
nodes are the synchronized clock sources; nodes in layers 1..L run the HEX
pulse-forwarding algorithm.

For a node ``(l, i)`` with ``l > 0`` the *incoming* links originate at

* its **left** neighbour  ``(l, i-1 mod W)``,
* its **right** neighbour ``(l, i+1 mod W)``,
* its **lower-left** neighbour  ``(l-1, i)``,
* its **lower-right** neighbour ``(l-1, i+1 mod W)``,

and for ``l < L`` the *outgoing* links (besides the intra-layer ones) lead to

* its **upper-left** neighbour  ``(l+1, i-1 mod W)``,
* its **upper-right** neighbour ``(l+1, i)``.

The six neighbours of an interior node form a hexagon, hence the name.

The module exposes :class:`HexGrid`, the single source of truth for neighbour
relations used by the analytic solver, the discrete-event simulator, the fault
placement logic (Condition 1) and the embedding/wire-length studies.  Node
identities are plain ``(layer, column)`` tuples so they can be used as numpy
indices directly (guide idiom: keep the hot data in dense arrays indexed by
``(layer, column)`` rather than in per-node Python objects).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

#: A node identity: ``(layer, column)`` with ``0 <= layer <= L`` and
#: ``0 <= column < W``.
NodeId = Tuple[int, int]

#: A directed link identity: ``(source, destination)`` node pair.
LinkId = Tuple[NodeId, NodeId]


class Direction(enum.Enum):
    """Relative direction of an in- or out-neighbour of a HEX node.

    The names follow the paper's terminology (Fig. 1).  ``LEFT``/``RIGHT`` are
    intra-layer neighbours, ``LOWER_LEFT``/``LOWER_RIGHT`` are the in-neighbours
    on the layer below, and ``UPPER_LEFT``/``UPPER_RIGHT`` are the out-neighbours
    on the layer above.
    """

    LEFT = "left"
    RIGHT = "right"
    LOWER_LEFT = "lower_left"
    LOWER_RIGHT = "lower_right"
    UPPER_LEFT = "upper_left"
    UPPER_RIGHT = "upper_right"

    @property
    def is_incoming(self) -> bool:
        """Whether a neighbour in this direction sends trigger messages to us."""
        return self in (
            Direction.LEFT,
            Direction.RIGHT,
            Direction.LOWER_LEFT,
            Direction.LOWER_RIGHT,
        )

    @property
    def is_outgoing(self) -> bool:
        """Whether we send trigger messages to a neighbour in this direction."""
        return self in (
            Direction.LEFT,
            Direction.RIGHT,
            Direction.UPPER_LEFT,
            Direction.UPPER_RIGHT,
        )

    @property
    def opposite(self) -> "Direction":
        """The direction from the neighbour's point of view.

        If node ``b`` lies in direction ``d`` of node ``a``, then node ``a``
        lies in direction ``d.opposite`` of node ``b``.
        """
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.LEFT: Direction.RIGHT,
    Direction.RIGHT: Direction.LEFT,
    Direction.LOWER_LEFT: Direction.UPPER_RIGHT,
    Direction.LOWER_RIGHT: Direction.UPPER_LEFT,
    Direction.UPPER_LEFT: Direction.LOWER_RIGHT,
    Direction.UPPER_RIGHT: Direction.LOWER_LEFT,
}

#: The three firing guards of Algorithm 1, expressed as pairs of incoming
#: directions.  A node fires as soon as it has memorized trigger messages from
#: both neighbours of at least one of these pairs (Definition 1: the node is
#: then called *left-*, *centrally-* or *right-triggered* respectively).
TRIGGER_GUARDS: Tuple[Tuple[Direction, Direction], ...] = (
    (Direction.LEFT, Direction.LOWER_LEFT),
    (Direction.LOWER_LEFT, Direction.LOWER_RIGHT),
    (Direction.LOWER_RIGHT, Direction.RIGHT),
)

#: Human-readable names of the guards, indexed in the same order as
#: :data:`TRIGGER_GUARDS`.
GUARD_NAMES: Tuple[str, str, str] = ("left", "central", "right")

#: Iteration order of the in-neighbour tables (the historical dict order of
#: the on-the-fly ``in_neighbors`` construction -- part of the
#: reproducibility contract).
_IN_DIRECTION_ORDER: Tuple[Direction, ...] = (
    Direction.LEFT,
    Direction.RIGHT,
    Direction.LOWER_LEFT,
    Direction.LOWER_RIGHT,
)

#: Iteration order of the out-neighbour tables (directions absent at a node
#: are simply skipped, so layer-0 sources list only their upper neighbours).
_OUT_DIRECTION_ORDER: Tuple[Direction, ...] = (
    Direction.LEFT,
    Direction.RIGHT,
    Direction.UPPER_LEFT,
    Direction.UPPER_RIGHT,
)


@dataclass(frozen=True)
class GridDimensions:
    """Dimensions of a HEX grid.

    Attributes
    ----------
    layers:
        The grid length ``L``: layer indices run from 0 (clock sources) to
        ``L`` inclusive, so the grid has ``L + 1`` rows of nodes.
    width:
        The grid width ``W``: number of columns (cyclic).
    """

    layers: int
    width: int

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``(L + 1) * W``."""
        return (self.layers + 1) * self.width

    @property
    def num_forwarding_nodes(self) -> int:
        """Number of nodes running Algorithm 1 (layers 1..L)."""
        return self.layers * self.width


class HexGrid:
    """The cylindric hexagonal grid of Fig. 1.

    Parameters
    ----------
    layers:
        The grid length ``L`` (number of forwarding layers).  Must be >= 1.
    width:
        The grid width ``W`` (number of columns).  Must be >= 3 so that every
        node has four distinct in-neighbours; the paper additionally assumes
        ``W > 2`` for Lemma 3.

    Examples
    --------
    >>> grid = HexGrid(layers=3, width=4)
    >>> grid.num_nodes
    16
    >>> grid.in_neighbors((2, 0))[Direction.LOWER_RIGHT]
    (1, 1)
    >>> grid.out_neighbors((2, 0))[Direction.UPPER_LEFT]
    (3, 3)
    """

    #: Topology family name; the registry key of :mod:`repro.topologies`.
    #: Subclasses (torus, patch, degraded) override this.
    family: str = "cylinder"

    #: Whether the column axis wraps (``False`` for the bounded planar patch).
    #: The analysis layer consults this to drop the non-adjacent wrap-around
    #: skew pair on open-boundary topologies.
    column_wrap: bool = True

    def __init__(self, layers: int, width: int) -> None:
        if layers < 1:
            raise ValueError(f"HEX grid needs at least one forwarding layer, got L={layers}")
        if width < 3:
            raise ValueError(f"HEX grid needs width of at least 3 columns, got W={width}")
        self._dims = GridDimensions(layers=layers, width=width)
        self._all_tables: Optional[Dict[NodeId, Dict[Direction, NodeId]]] = None
        self._in_tables: Optional[Dict[NodeId, Dict[Direction, NodeId]]] = None
        self._out_tables: Optional[Dict[NodeId, Dict[Direction, NodeId]]] = None
        self._link_directions: Optional[Dict[LinkId, Direction]] = None

    # ------------------------------------------------------------------
    # neighbour-table construction (the perf-critical cache)
    # ------------------------------------------------------------------
    def _ensure_tables(self) -> None:
        """Build the neighbour tables on first use.

        Table construction is O(nodes) Python-dict work -- tens of seconds on
        a million-node grid -- while the dense array engine never consults the
        tables at all (its plans are built from vectorized boundary rules).
        Deferring construction to the first accessor call keeps huge grids
        usable for the array paths without slowing the solver/DES paths,
        which build the tables exactly once on their first neighbour query.
        """
        if self._all_tables is None:
            self._build_neighbor_tables()

    def _build_neighbor_tables(self) -> None:
        """Precompute per-node neighbour tables and the link-direction index.

        The DES broadcast loop and the solver's Dijkstra sweep query
        ``in_neighbors`` / ``out_neighbors`` / ``direction_between`` once per
        message; recomputing the wrap arithmetic there dominated the hot
        loops.  The tables are built once (lazily, at the first accessor
        call) from the subclass's :meth:`_raw_neighbor` rule and returned *by
        reference* -- callers must treat the dicts as immutable.  Insertion
        orders are part of the reproducibility contract: in-neighbours
        iterate LEFT, RIGHT, LOWER_LEFT, LOWER_RIGHT and out-neighbours LEFT,
        RIGHT, UPPER_LEFT, UPPER_RIGHT (exactly the historical on-the-fly
        dict orders).
        """
        self._all_tables: Dict[NodeId, Dict[Direction, NodeId]] = {}
        self._in_tables: Dict[NodeId, Dict[Direction, NodeId]] = {}
        self._out_tables: Dict[NodeId, Dict[Direction, NodeId]] = {}
        self._link_directions: Dict[LinkId, Direction] = {}
        for layer in range(self.layers + 1):
            for column in range(self.width):
                node = (layer, column)
                all_neighbors: Dict[Direction, NodeId] = {}
                for direction in Direction:
                    neighbor = self._raw_neighbor(layer, column, direction)
                    if neighbor is not None:
                        all_neighbors[direction] = neighbor
                self._all_tables[node] = all_neighbors
                self._in_tables[node] = {
                    direction: all_neighbors[direction]
                    for direction in _IN_DIRECTION_ORDER
                    if direction in all_neighbors
                }
                self._out_tables[node] = {
                    direction: all_neighbors[direction]
                    for direction in _OUT_DIRECTION_ORDER
                    if direction in all_neighbors
                }
        for node, ins in self._in_tables.items():
            for direction, source in ins.items():
                self._link_directions[(source, node)] = direction

    def _raw_neighbor(self, layer: int, column: int, direction: Direction) -> Optional[NodeId]:
        """The neighbour rule the tables are built from (cylinder semantics).

        Subclasses override this single method to define a different boundary
        condition; ``(layer, column)`` is already canonical.
        """
        if direction is Direction.LEFT:
            if layer == 0:
                return None
            return (layer, self.wrap_column(column - 1))
        if direction is Direction.RIGHT:
            if layer == 0:
                return None
            return (layer, self.wrap_column(column + 1))
        if direction is Direction.LOWER_LEFT:
            if layer == 0:
                return None
            return (layer - 1, column)
        if direction is Direction.LOWER_RIGHT:
            if layer == 0:
                return None
            return (layer - 1, self.wrap_column(column + 1))
        if direction is Direction.UPPER_LEFT:
            if layer == self.layers:
                return None
            return (layer + 1, self.wrap_column(column - 1))
        if direction is Direction.UPPER_RIGHT:
            if layer == self.layers:
                return None
            return (layer + 1, column)
        raise ValueError(f"unknown direction {direction!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def _identity(self) -> Tuple:
        """Equality/hash key: family, dimensions and family-specific extras."""
        return (self.family, self._dims, self._extra_identity())

    def _extra_identity(self) -> Tuple:
        """Family-specific identity extras (e.g. the degraded damage spec)."""
        return ()

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> GridDimensions:
        """The grid dimensions as a :class:`GridDimensions` value."""
        return self._dims

    @property
    def layers(self) -> int:
        """The grid length ``L`` (index of the topmost layer)."""
        return self._dims.layers

    @property
    def width(self) -> int:
        """The grid width ``W`` (number of columns)."""
        return self._dims.width

    @property
    def num_nodes(self) -> int:
        """Total number of nodes, ``(L + 1) * W``."""
        return self._dims.num_nodes

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of a dense per-node array: ``(L + 1, W)``."""
        return (self.layers + 1, self.width)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"HexGrid(layers={self.layers}, width={self.width})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HexGrid):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    # ------------------------------------------------------------------
    # node helpers
    # ------------------------------------------------------------------
    def wrap_column(self, column: int) -> int:
        """Reduce a column index modulo the grid width."""
        return column % self.width

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` denotes a valid grid node (after column wrapping)."""
        layer, column = node
        return 0 <= layer <= self.layers and 0 <= self.wrap_column(column) < self.width

    def validate_node(self, node: NodeId) -> NodeId:
        """Return the canonical (column-wrapped) form of ``node``.

        Raises
        ------
        ValueError
            If the layer index is out of range.
        """
        layer, column = node
        if not 0 <= layer <= self.layers:
            raise ValueError(
                f"layer index {layer} out of range [0, {self.layers}] for {self!r}"
            )
        return (layer, self.wrap_column(column))

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all nodes in (layer, column) lexicographic order."""
        for layer in range(self.layers + 1):
            for column in range(self.width):
                yield (layer, column)

    def layer_nodes(self, layer: int) -> List[NodeId]:
        """All nodes of a given layer, in column order."""
        if not 0 <= layer <= self.layers:
            raise ValueError(f"layer index {layer} out of range [0, {self.layers}]")
        return [(layer, column) for column in range(self.width)]

    def source_nodes(self) -> List[NodeId]:
        """The layer-0 clock-source nodes."""
        return self.layer_nodes(0)

    def forwarding_nodes(self) -> Iterator[NodeId]:
        """Iterate over all nodes running Algorithm 1 (layers 1..L)."""
        for layer in range(1, self.layers + 1):
            for column in range(self.width):
                yield (layer, column)

    def node_index(self, node: NodeId) -> int:
        """Flat index of a node in row-major ``(L + 1, W)`` ordering."""
        layer, column = self.validate_node(node)
        return layer * self.width + column

    def node_from_index(self, index: int) -> NodeId:
        """Inverse of :meth:`node_index`."""
        if not 0 <= index < self.num_nodes:
            raise ValueError(f"flat node index {index} out of range [0, {self.num_nodes})")
        return divmod(index, self.width)

    # ------------------------------------------------------------------
    # neighbour relations
    # ------------------------------------------------------------------
    def neighbor(self, node: NodeId, direction: Direction) -> Optional[NodeId]:
        """The neighbour of ``node`` in a given direction, or ``None`` if absent.

        Layer-0 nodes have no intra-layer or lower neighbours (the paper's graph
        only defines links for nodes with ``layer > 0``); layer-L nodes have no
        upper neighbours (unless the topology wraps the layer axis).
        """
        self._ensure_tables()
        return self._all_tables[self.validate_node(node)].get(direction)

    def in_neighbors(self, node: NodeId) -> Dict[Direction, NodeId]:
        """All in-neighbours of ``node`` keyed by direction.

        For a forwarding node these are exactly the four neighbours whose
        trigger messages Algorithm 1 listens to.  Layer-0 nodes have no
        in-neighbours (they are driven by the clock-source substrate).

        The returned dict is the topology's precomputed table -- treat it as
        immutable.
        """
        self._ensure_tables()
        return self._in_tables[self.validate_node(node)]

    def out_neighbors(self, node: NodeId) -> Dict[Direction, NodeId]:
        """All out-neighbours of ``node`` keyed by direction.

        A forwarding node broadcasts its trigger message to its left, right,
        upper-left and upper-right neighbours.  A layer-0 clock source only
        drives its two upper neighbours.

        The returned dict is the topology's precomputed table -- treat it as
        immutable.
        """
        self._ensure_tables()
        return self._out_tables[self.validate_node(node)]

    def all_neighbors(self, node: NodeId) -> Dict[Direction, NodeId]:
        """All (in- or out-) neighbours of ``node`` keyed by direction.

        The returned dict is the topology's precomputed table -- treat it as
        immutable.
        """
        self._ensure_tables()
        return self._all_tables[self.validate_node(node)]

    def direction_between(self, source: NodeId, destination: NodeId) -> Direction:
        """The direction of ``source`` as seen from ``destination``.

        This is the direction under which ``destination`` files a trigger
        message received from ``source`` (i.e. the memory flag index).

        Raises
        ------
        ValueError
            If there is no link from ``source`` to ``destination``.
        """
        self._ensure_tables()
        destination = self.validate_node(destination)
        source = self.validate_node(source)
        direction = self._link_directions.get((source, destination))
        if direction is None:
            raise ValueError(f"no link from {source} to {destination} in {self!r}")
        return direction

    def links(self) -> Iterator[LinkId]:
        """Iterate over all directed links ``(source, destination)`` of the grid."""
        for node in self.nodes():
            for neighbor in self.out_neighbors(node).values():
                yield (node, neighbor)

    def num_links(self) -> int:
        """Total number of directed links."""
        return sum(1 for _ in self.links())

    def incoming_links(self, node: NodeId) -> List[LinkId]:
        """All directed links ending at ``node``."""
        return [(neighbor, node) for neighbor in self.in_neighbors(node).values()]

    def outgoing_links(self, node: NodeId) -> List[LinkId]:
        """All directed links starting at ``node``."""
        return [(node, neighbor) for neighbor in self.out_neighbors(node).values()]

    # ------------------------------------------------------------------
    # timing margins
    # ------------------------------------------------------------------
    def condition2_extra_hops(self) -> int:
        """Extra ``d+`` hops the Condition 2 timeouts must budget for.

        On the cylinder every node is centrally triggerable, so its two guard
        messages come from the layer below and Lemma 5's skew bound applies
        verbatim (0 extra hops).  Topologies with reduced-degree nodes (the
        patch rim, holes in a degraded grid) force *lateral* triggering,
        where one guard message originates on the node's own layer and
        therefore arrives about one link delay later per structural obstacle
        -- the timeouts (and the simulation horizon) must stretch
        accordingly or correct nodes forget their flags before the partner
        message lands.
        """
        return 0

    # ------------------------------------------------------------------
    # presence
    # ------------------------------------------------------------------
    def presence_mask(self) -> np.ndarray:
        """Boolean array of shape ``(L + 1, W)``: ``True`` where a node exists.

        All-true for the intact topologies; degraded grids mark punctured
        nodes ``False`` so dense matrices can carry ``nan`` at their slots.
        """
        return np.ones(self.shape, dtype=bool)

    def pulse_reachable_mask(self) -> np.ndarray:
        """Nodes a layer-0 pulse wave can structurally trigger.

        Least fixed point of "some firing guard has both in-neighbours
        present, connected and themselves reachable".  On the intact
        topologies this equals the presence mask; on degraded grids, holes
        can *deadlock* nodes above them -- e.g. two punctured nodes one
        column apart leave the pair between them only guards that reference
        each other, so neither can ever bootstrap from the wave.  Such nodes
        are structurally silent (not merely slow), and the stabilization
        criterion excludes them like punctured slots.  Computed once and
        cached; a fresh copy is returned per call.
        """
        cached = getattr(self, "_pulse_reachable_cache", None)
        if cached is None:
            reachable = np.zeros(self.shape, dtype=bool)
            for layer, column in self.source_nodes():
                reachable[layer, column] = True
            forwarding = list(self.forwarding_nodes())
            changed = True
            while changed:
                changed = False
                for node in forwarding:
                    if reachable[node]:
                        continue
                    ins = self.in_neighbors(node)
                    for direction_a, direction_b in TRIGGER_GUARDS:
                        partner_a = ins.get(direction_a)
                        partner_b = ins.get(direction_b)
                        if (
                            partner_a is not None
                            and partner_b is not None
                            and reachable[partner_a]
                            and reachable[partner_b]
                        ):
                            reachable[node] = True
                            changed = True
                            break
            cached = reachable
            self._pulse_reachable_cache = cached
        return cached.copy()

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def cyclic_column_distance(self, i: int, j: int) -> int:
        """The cyclic distance ``|i - j|_W`` of Definition 3."""
        d = (i - j) % self.width
        return min(d, self.width - d)

    def node_distance(self, a: NodeId, b: NodeId) -> int:
        """Cheap structural distance: layer difference plus column distance.

        This is the metric the adversary layer's *cluster* generator uses to
        bound spatial fault correlation; subclasses adapt it to their boundary
        conditions (the torus also wraps the layer axis, the patch drops the
        column wrap via :meth:`cyclic_column_distance`).
        """
        (la, ca) = self.validate_node(a)
        (lb, cb) = self.validate_node(b)
        return abs(la - lb) + self.cyclic_column_distance(ca, cb)

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Undirected hop distance between two nodes in the grid.

        Uses the undirected version of the communication graph, i.e. the
        hexagonal adjacency (intra-layer plus diagonal links), ignoring link
        direction.  Mainly used by the fault-locality analysis and for sanity
        checks; it is computed combinatorially (no graph search needed).
        """
        (la, ca) = self.validate_node(a)
        (lb, cb) = self.validate_node(b)
        if la == lb == 0 and ca != cb:
            # Layer 0 has no intra-layer links: one lateral move must be
            # replaced by an up+down detour through layer 1 (exactly +1).
            return self.cyclic_column_distance(ca, cb) + 1
        dl = lb - la
        if dl < 0:
            # symmetric: swap so that we always walk upwards
            return self.hop_distance(b, a)
        # Moving up one layer changes the column by 0 (upper-right) or -1
        # (upper-left).  After dl upward moves the column can shift by any
        # amount in [-dl, 0]; remaining column distance is covered by
        # intra-layer moves.  Column arithmetic is cyclic.
        best = None
        for shift in range(-dl, 1):
            target = (ca + shift) % self.width
            lateral = self.cyclic_column_distance(target, cb)
            total = dl + lateral
            if best is None or total < best:
                best = total
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.DiGraph":
        """Export the directed communication graph as a :class:`networkx.DiGraph`.

        Node attributes: ``layer``, ``column``.  Edge attribute: ``direction``
        (the :class:`Direction` of the destination as seen from the source,
        i.e. the direction the message travels).
        """
        graph = nx.DiGraph(layers=self.layers, width=self.width)
        for layer, column in self.nodes():
            graph.add_node((layer, column), layer=layer, column=column)
        for node in self.nodes():
            for direction, neighbor in self.out_neighbors(node).items():
                graph.add_edge(node, neighbor, direction=direction.value)
        return graph

    def to_undirected_networkx(self) -> "nx.Graph":
        """Export the undirected communication graph."""
        return self.to_networkx().to_undirected()
