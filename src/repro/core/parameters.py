"""Timing parameters of the HEX system and the Condition 2 timeout computation.

Two dataclasses capture the timed model of Section 2 and the self-stabilization
parameters of Section 3.3:

* :class:`TimingConfig` -- the link-delay bounds ``[d-, d+]`` (and derived
  ``epsilon = d+ - d-``), the maximum clock-drift factor ``theta`` and the grid
  dimensions used by the bound formulas.  The paper's simulations use
  end-to-end delays in ``[7.161, 8.197]`` ns (wire/routing delay in ``[7, 8]``
  ns plus a switching delay in ``[0.161, 0.197]`` ns), which is what
  :meth:`TimingConfig.paper_defaults` returns.

* :class:`TimeoutConfig` -- the algorithm timeouts ``T^-_link, T^+_link,
  T^-_sleep, T^+_sleep`` and the pulse-separation time ``S``.
  :func:`condition2_timeouts` computes them from a stable-skew bound
  ``sigma(f)`` exactly as Condition 2 prescribes:

  .. math::

      T^-_{link}(f)  &= \\sigma(f) + \\varepsilon \\\\
      T^+_{link}(f)  &= \\vartheta\\, T^-_{link}(f) \\\\
      T^-_{sleep}(f) &= 2 T^+_{link}(f) + 2 d^+ \\\\
      T^+_{sleep}(f) &= \\vartheta\\, T^-_{sleep}(f) \\\\
      S(f)           &= T^-_{sleep}(f) + T^+_{sleep}(f) + \\varepsilon L + f d^+

  Footnote 10 of the paper notes that the values actually used in the
  stabilization experiments (Table 3) include a small additive slack accounting
  for the non-zero duration of the trigger signals in the VHDL implementation;
  the optional ``signal_duration`` argument reproduces this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "TimingConfig",
    "TimeoutConfig",
    "condition2_timeouts",
    "lambda0",
    "PAPER_SIGNAL_DURATION_NS",
]

#: Additive slack (in ns) the paper's testbench adds to ``T^-_link`` on top of
#: the Condition 2 value, to account for the non-zero duration of trigger
#: signals in the VHDL implementation (footnote 10).  Reverse-engineered from
#: Table 3: every row satisfies ``T^-_link = sigma + epsilon + 2.464``.
PAPER_SIGNAL_DURATION_NS: float = 2.464


@dataclass(frozen=True)
class TimingConfig:
    """Timed-model parameters of a HEX deployment.

    Attributes
    ----------
    d_min:
        Minimum end-to-end trigger-message delay ``d-`` (time units; the paper
        uses nanoseconds).
    d_max:
        Maximum end-to-end trigger-message delay ``d+``.
    theta:
        Maximum clock-drift factor ``theta >= 1`` of the local timers
        (Condition 2).  The paper's experiments assume ``theta = 1.05``.
    """

    d_min: float
    d_max: float
    theta: float = 1.05

    def __post_init__(self) -> None:
        if self.d_min <= 0:
            raise ValueError(f"d_min must be positive, got {self.d_min}")
        if self.d_max < self.d_min:
            raise ValueError(
                f"d_max ({self.d_max}) must be at least d_min ({self.d_min})"
            )
        if self.theta < 1.0:
            raise ValueError(f"theta must be >= 1, got {self.theta}")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """The delay uncertainty ``epsilon = d+ - d-``."""
        return self.d_max - self.d_min

    @property
    def delay_midpoint(self) -> float:
        """The midpoint of the delay interval, ``(d- + d+) / 2``."""
        return 0.5 * (self.d_min + self.d_max)

    @property
    def satisfies_triangle_constraint(self) -> bool:
        """Whether ``epsilon <= d+ / 2`` (Section 2's triangle-like constraint)."""
        return self.epsilon <= self.d_max / 2.0

    @property
    def satisfies_theorem1_constraint(self) -> bool:
        """Whether ``epsilon <= d+ / 7`` as required by Theorem 1."""
        return self.epsilon <= self.d_max / 7.0

    def lambda0(self, layer: int) -> int:
        """The pivotal layer ``lambda_0 = floor(layer * d- / d+)`` of Lemma 4.

        ``lambda_0`` is the deepest layer a "slow" chain of trigger messages
        (all delays ``d+``) can have reached by the time a "fast" chain (all
        delays ``d-``) has climbed ``layer`` hops.
        """
        return lambda0(layer, self.d_min, self.d_max)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_defaults(cls, theta: float = 1.05) -> "TimingConfig":
        """The delay bounds used throughout Section 4: ``[7.161, 8.197]`` ns.

        These combine the assumed wire/routing delay ``[7, 8]`` ns with the
        switching-delay interval ``[0.161, 0.197]`` ns determined by the
        paper's ModelSim timing analysis of the UMC 90 nm HEX node.
        """
        return cls(d_min=7.161, d_max=8.197, theta=theta)

    @classmethod
    def from_wire_and_switching(
        cls,
        wire_min: float,
        wire_max: float,
        switching_min: float = 0.161,
        switching_max: float = 0.197,
        theta: float = 1.05,
    ) -> "TimingConfig":
        """Combine wire/routing delay bounds with switching-delay bounds.

        The end-to-end delay of a trigger message is the sum of the wire delay
        and the receiving node's switching delay, so the bounds simply add.
        """
        return cls(
            d_min=wire_min + switching_min,
            d_max=wire_max + switching_max,
            theta=theta,
        )

    def with_uncertainty(self, epsilon: float) -> "TimingConfig":
        """A copy with the same ``d+`` but delay uncertainty ``epsilon``."""
        if epsilon < 0 or epsilon >= self.d_max:
            raise ValueError(
                f"epsilon must lie in [0, d_max), got {epsilon} with d_max={self.d_max}"
            )
        return replace(self, d_min=self.d_max - epsilon)

    def scaled(self, factor: float) -> "TimingConfig":
        """A copy with both delay bounds scaled by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(self, d_min=self.d_min * factor, d_max=self.d_max * factor)


def lambda0(layer: int, d_min: float, d_max: float) -> int:
    """Compute ``lambda_0 = floor(layer * d- / d+)`` (Lemma 4, Eq. (4)).

    Parameters
    ----------
    layer:
        The layer ``l`` of interest (non-negative).
    d_min, d_max:
        The link-delay bounds.
    """
    if layer < 0:
        raise ValueError(f"layer must be non-negative, got {layer}")
    return int(math.floor(layer * d_min / d_max))


@dataclass(frozen=True)
class TimeoutConfig:
    """The HEX algorithm timeouts and the pulse-separation time.

    All values are in the same time unit as the :class:`TimingConfig` they were
    derived from (ns for the paper's parameters).

    Attributes
    ----------
    t_link_min, t_link_max:
        Bounds ``[T^-_link, T^+_link]`` on the duration a received trigger
        message is memorized before the memory flag is cleared.
    t_sleep_min, t_sleep_max:
        Bounds ``[T^-_sleep, T^+_sleep]`` on the duration a node sleeps after
        firing before it clears its flags and becomes ready again.
    pulse_separation:
        The minimum pulse-separation time ``S`` that layer-0 clock sources must
        guarantee between the latest generation of pulse ``k`` and the earliest
        generation of pulse ``k + 1``.
    stable_skew:
        The stable-skew bound ``sigma(f)`` the timeouts were derived from
        (informational; used by the stabilization analysis).
    """

    t_link_min: float
    t_link_max: float
    t_sleep_min: float
    t_sleep_max: float
    pulse_separation: float
    stable_skew: float = field(default=float("nan"))

    def __post_init__(self) -> None:
        if self.t_link_min <= 0:
            raise ValueError(f"T^-_link must be positive, got {self.t_link_min}")
        if self.t_link_max < self.t_link_min:
            raise ValueError("T^+_link must be at least T^-_link")
        if self.t_sleep_min <= 0:
            raise ValueError(f"T^-_sleep must be positive, got {self.t_sleep_min}")
        if self.t_sleep_max < self.t_sleep_min:
            raise ValueError("T^+_sleep must be at least T^-_sleep")
        if self.pulse_separation <= 0:
            raise ValueError(f"pulse separation S must be positive, got {self.pulse_separation}")

    def as_row(self) -> dict:
        """The timeout values as a Table 3-style row dictionary."""
        return {
            "sigma": self.stable_skew,
            "T_link_min": self.t_link_min,
            "T_link_max": self.t_link_max,
            "T_sleep_min": self.t_sleep_min,
            "T_sleep_max": self.t_sleep_max,
            "S": self.pulse_separation,
        }


def condition2_timeouts(
    timing: TimingConfig,
    stable_skew: float,
    layers: int,
    num_faults: int = 0,
    signal_duration: float = 0.0,
    theta: Optional[float] = None,
) -> TimeoutConfig:
    """Compute the Condition 2 timeouts from a stable-skew bound.

    Parameters
    ----------
    timing:
        The timed-model parameters (provides ``d+``, ``epsilon`` and the
        default drift factor ``theta``).
    stable_skew:
        The assumed stable skew ``sigma(f)`` between any two correct
        neighbouring nodes once the system has stabilized.
    layers:
        The grid length ``L`` (enters the pulse-separation term
        ``epsilon * L``).
    num_faults:
        The number ``f`` of Byzantine faults the parameters should tolerate
        (enters the pulse-separation term ``f * d+``).
    signal_duration:
        Optional additive slack on ``T^-_link`` accounting for non-zero
        trigger-signal duration (footnote 10); the paper's Table 3 uses about
        :data:`PAPER_SIGNAL_DURATION_NS`.
    theta:
        Override for the drift factor; defaults to ``timing.theta``.

    Returns
    -------
    TimeoutConfig
        The timeouts ``T^-_link, T^+_link, T^-_sleep, T^+_sleep`` and the
        pulse-separation time ``S`` per Condition 2.
    """
    if stable_skew <= 0:
        raise ValueError(f"stable skew must be positive, got {stable_skew}")
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    if num_faults < 0:
        raise ValueError(f"num_faults must be non-negative, got {num_faults}")
    if signal_duration < 0:
        raise ValueError(f"signal_duration must be non-negative, got {signal_duration}")
    drift = timing.theta if theta is None else theta
    if drift < 1.0:
        raise ValueError(f"theta must be >= 1, got {drift}")

    t_link_min = stable_skew + timing.epsilon + signal_duration
    t_link_max = drift * t_link_min
    t_sleep_min = 2.0 * t_link_max + 2.0 * timing.d_max
    t_sleep_max = drift * t_sleep_min
    separation = (
        t_sleep_min + t_sleep_max + timing.epsilon * layers + num_faults * timing.d_max
    )
    return TimeoutConfig(
        t_link_min=t_link_min,
        t_link_max=t_link_max,
        t_sleep_min=t_sleep_min,
        t_sleep_max=t_sleep_max,
        pulse_separation=separation,
        stable_skew=stable_skew,
    )
