"""Causal links and left zig-zag paths (Definitions 1 and 2).

The skew analysis of Section 3.1 rests on backtracing *causal paths* through a
given execution:

* **Definition 1** classifies every firing as left-/centrally-/right-triggered
  according to which guard of Algorithm 1 fired, and calls the two links of the
  satisfied guard *causal*.
* **Definition 2** constructs, for a destination node ``(l, i)`` and a column
  of interest ``i'``, the *left zig-zag path* ``p^{i' -> (l,i)}_left`` composed
  of rightward links ``((l', j-1), (l', j))`` and up-left links
  ``((l'-1, j+1), (l', j))``: starting from ``(l, i)``, if the current origin is
  left-triggered the rightward link is prepended, otherwise the up-left link is
  (it is causal in that case).  The construction terminates when an up-left
  link is added whose origin (a) lies in column ``i'`` while the path has more
  up-left than rightward links (a *triangular* path) or (b) lies in layer 0
  (a *non-triangular* path).

This module implements the construction on a :class:`~repro.core.pulse_solver.
PulseSolution` (or any execution that can report each node's guard), together
with the simple structural facts of Lemma 1 and the triggering-time inequality
of Lemma 2 -- all of which are exercised as executable properties in the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.algorithm import GuardKind
from repro.core.parameters import TimingConfig
from repro.core.pulse_solver import PulseSolution
from repro.core.topology import HexGrid, NodeId

__all__ = ["ZigZagLink", "LeftZigZagPath", "build_left_zigzag_path", "lemma2_upper_bound"]


@dataclass(frozen=True)
class ZigZagLink:
    """One link of a left zig-zag path.

    ``kind`` is ``"rightward"`` for intra-layer links ``((l, j-1), (l, j))`` and
    ``"up_left"`` for diagonal links ``((l-1, j+1), (l, j))``.
    """

    source: NodeId
    destination: NodeId
    kind: str


@dataclass(frozen=True)
class LeftZigZagPath:
    """A left zig-zag path ``p^{i' -> (l, i)}_left`` (Definition 2).

    Attributes
    ----------
    destination:
        The node ``(l, i)`` the path leads to.
    target_column:
        The column of interest ``i'``.
    links:
        The links of the path in causal (origin-to-destination) order; the
        first link starts at :attr:`origin`.
    triangular:
        ``True`` if the construction terminated by reaching column ``i'`` with
        more up-left than rightward links (case (i) of Definition 2), ``False``
        if it terminated in layer 0 (case (ii)).
    """

    destination: NodeId
    target_column: int
    links: Tuple[ZigZagLink, ...]
    triangular: bool

    @property
    def origin(self) -> NodeId:
        """The node the path starts at."""
        if not self.links:
            return self.destination
        return self.links[0].source

    @property
    def length(self) -> int:
        """Number of links."""
        return len(self.links)

    @property
    def num_up_left(self) -> int:
        """Number of up-left links."""
        return sum(1 for link in self.links if link.kind == "up_left")

    @property
    def num_rightward(self) -> int:
        """Number of rightward links."""
        return sum(1 for link in self.links if link.kind == "rightward")

    @property
    def excess_up_left(self) -> int:
        """``r`` = number of up-left links minus number of rightward links."""
        return self.num_up_left - self.num_rightward

    def nodes(self) -> List[NodeId]:
        """All nodes on the path from origin to destination (inclusive)."""
        if not self.links:
            return [self.destination]
        result = [self.links[0].source]
        for link in self.links:
            result.append(link.destination)
        return result

    def is_causal(self, solution: PulseSolution, timing: TimingConfig) -> bool:
        """Check that every link is causal: destination fires >= d- after origin."""
        for link in self.links:
            t_src = solution.trigger_time(link.source)
            t_dst = solution.trigger_time(link.destination)
            if not (t_dst >= t_src + timing.d_min - 1e-9):
                return False
        return True

    def prefix(self, num_links: int) -> "LeftZigZagPath":
        """The path consisting of the *last* ``num_links`` links (same destination).

        In the paper's terminology a "prefix" of a zig-zag path is an initial
        segment of its construction, i.e. a suffix of the origin-to-destination
        link sequence ending at the same destination node.
        """
        if not 0 <= num_links <= self.length:
            raise ValueError(f"prefix length {num_links} out of range [0, {self.length}]")
        links = self.links[self.length - num_links :]
        sub = LeftZigZagPath(
            destination=self.destination,
            target_column=self.target_column,
            links=links,
            triangular=self.triangular,
        )
        return sub


def build_left_zigzag_path(
    solution: PulseSolution,
    destination: NodeId,
    target_column: int,
    max_links: Optional[int] = None,
) -> LeftZigZagPath:
    """Construct the left zig-zag path ``p^{target_column -> destination}_left``.

    The construction follows Definition 2 literally on the given execution:
    starting at ``destination``, repeatedly prepend the rightward link if the
    current origin is left-triggered, and otherwise the up-left link
    (terminating per cases (i)/(ii)).

    Parameters
    ----------
    solution:
        An execution providing each node's guard classification.
    destination:
        The node ``(l, i)`` with ``l > 0``.
    target_column:
        The column of interest ``i'``.
    max_links:
        Safety cap (defaults to ``2 * (L + 1) * W``, far beyond any acyclic
        causal path).

    Raises
    ------
    ValueError
        If the destination lies in layer 0 or has not been triggered, or if a
        node on the path was not triggered (the construction is only defined on
        executions in which the involved nodes fired).
    """
    grid: HexGrid = solution.grid
    destination = grid.validate_node(destination)
    if destination[0] == 0:
        raise ValueError("the destination of a zig-zag path must lie in a layer > 0")
    target_column = grid.wrap_column(target_column)
    if max_links is None:
        max_links = 2 * grid.num_nodes

    links: List[ZigZagLink] = []
    current = destination
    up_left_count = 0
    rightward_count = 0
    triangular = False

    while True:
        layer, column = current
        if layer == 0:
            # Terminated in layer 0 by the previous iteration's bookkeeping.
            break
        guard = solution.guard_kind(current)
        if guard is None:
            raise ValueError(
                f"node {current} was not triggered by a guard; "
                "zig-zag paths are only defined for triggered forwarding nodes"
            )
        if guard is GuardKind.LEFT_TRIGGERED:
            origin = (layer, grid.wrap_column(column - 1))
            links.insert(
                0, ZigZagLink(source=origin, destination=current, kind="rightward")
            )
            rightward_count += 1
            current = origin
        else:
            # Centrally or right-triggered: the up-left link (from the
            # lower-right neighbour) is causal.
            origin = (layer - 1, grid.wrap_column(column + 1))
            links.insert(0, ZigZagLink(source=origin, destination=current, kind="up_left"))
            up_left_count += 1
            current = origin
            if (
                grid.wrap_column(origin[1]) == target_column
                and up_left_count > rightward_count
            ):
                triangular = True
                break
            if origin[0] == 0:
                triangular = False
                break
        if len(links) > max_links:
            raise RuntimeError("zig-zag construction exceeded the safety cap; execution is cyclic?")

    return LeftZigZagPath(
        destination=destination,
        target_column=target_column,
        links=tuple(links),
        triangular=triangular,
    )


def lemma2_upper_bound(
    path: LeftZigZagPath,
    solution: PulseSolution,
    timing: TimingConfig,
) -> float:
    """The Lemma 2 upper bound on the firing time of the path's target column node.

    For a (prefix of a) triangular left zig-zag path starting at ``(l', i')``
    and ending at ``(l, i)`` with ``r > 0`` more up-left than rightward links,
    Lemma 2 states ``t_{l, i'} <= t_{l, i} + r d- + (l - l') eps``.

    Returns that right-hand side (the caller compares it against the measured
    ``t_{l, i'}``).
    """
    if path.excess_up_left <= 0:
        raise ValueError("Lemma 2 applies only to paths with r > 0 excess up-left links")
    end_layer = path.destination[0]
    start_layer = path.origin[0]
    t_end = solution.trigger_time(path.destination)
    return t_end + path.excess_up_left * timing.d_min + (end_layer - start_layer) * timing.epsilon
