"""Analytic single-pulse trigger-time solver.

For the propagation of a *single* pulse wave through the HEX grid -- assuming
constraints (C1) and (C2) of Section 3.1 hold, i.e. all correct nodes start
with cleared memory flags, never forget a memorized message before firing, and
do not sleep while the wave passes -- the firing time of a correct forwarding
node ``v`` is fully determined by the firing times of its in-neighbours and the
link delays:

    ``t_v = min over the three guards {(left, lower-left), (lower-left,
    lower-right), (lower-right, right)} of max(arrival_a, arrival_b)``

where ``arrival_x = t_x + delay(x -> v)`` for a correct in-neighbour ``x``,
``arrival_x = +inf`` for a silent (constant-0 / fail-silent / crashed) link and
``arrival_x = byzantine_high_time`` (default 0, the start of the run) for a
stuck-at-1 Byzantine link, which sets the receiver's memory flag as soon as the
run starts.

Because all link delays are strictly positive this fixed point can be computed
with a Dijkstra-style sweep: firing times are finalized in non-decreasing
order, and every candidate generated from a finalized neighbour is at least
that neighbour's firing time plus ``d-``.  This makes the solver exact and
O(n log n); it is the engine used for the large single-pulse statistical sweeps
(Tables 1-2, Figs. 8-16), while the discrete-event simulator in
:mod:`repro.simulation` handles multi-pulse and stabilization experiments.
The two engines are cross-validated against each other in the test suite.

The solver is deliberately defensive about *who* may fire: layer-0 nodes fire
exactly at the externally supplied times, faulty nodes never fire (their
outgoing links behave according to the fault model instead), and nodes whose
guard is never satisfied keep a firing time of ``+inf``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.algorithm import GuardKind
from repro.core.topology import Direction, HexGrid, NodeId, TRIGGER_GUARDS
from repro.faults.models import FaultModel, LinkBehavior

__all__ = ["LinkDelayProvider", "PulseSolution", "solve_single_pulse"]


class LinkDelayProvider(Protocol):
    """Anything that can report the delay of a directed link.

    The delay models in :mod:`repro.simulation.links` implement this protocol;
    a plain ``dict``-backed adapter or a constant-delay lambda wrapped in a
    small class works just as well for analytic constructions.
    """

    def delay(self, source: NodeId, destination: NodeId) -> float:
        """The end-to-end delay of the directed link ``source -> destination``."""
        ...


@dataclass
class PulseSolution:
    """The result of propagating a single pulse through the grid.

    Attributes
    ----------
    grid:
        The HEX grid the pulse propagated through.
    trigger_times:
        Array of shape ``(L + 1, W)``.  Entry ``[l, i]`` is the firing time of
        node ``(l, i)``; ``+inf`` if the node never fired, ``nan`` if the node
        is faulty (faulty nodes have no meaningful firing time).
    guards:
        Integer array of shape ``(L + 1, W)``; entry is the
        :class:`~repro.core.algorithm.GuardKind` value of the guard that fired
        the node, ``-1`` for layer-0 sources, never-fired and faulty nodes.
    correct_mask:
        Boolean array, ``True`` where the node is correct.
    layer0_times:
        The layer-0 firing times the solution was computed from (length ``W``;
        faulty sources carry ``nan``).
    """

    grid: HexGrid
    trigger_times: np.ndarray
    guards: np.ndarray
    correct_mask: np.ndarray
    layer0_times: np.ndarray

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    def trigger_time(self, node: NodeId) -> float:
        """Firing time of a single node."""
        layer, column = self.grid.validate_node(node)
        return float(self.trigger_times[layer, column])

    def guard_kind(self, node: NodeId) -> Optional[GuardKind]:
        """The guard that fired ``node`` (Definition 1), or ``None``."""
        layer, column = self.grid.validate_node(node)
        value = int(self.guards[layer, column])
        return GuardKind(value) if value >= 0 else None

    def causal_in_neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The in-neighbours on the causal links of ``node`` (Definition 1)."""
        guard = self.guard_kind(node)
        if guard is None:
            return ()
        return tuple(
            self.grid.neighbor(node, direction) for direction in guard.causal_directions
        )

    def all_triggered(self, include_faulty: bool = False) -> bool:
        """Whether every (correct) forwarding node fired."""
        times = self.trigger_times[1:, :]
        mask = self.correct_mask[1:, :]
        if include_faulty:
            return bool(np.all(np.isfinite(times)))
        return bool(np.all(np.isfinite(times[mask])))

    def finite_times(self) -> np.ndarray:
        """Copy of the trigger-time matrix with non-finite entries masked as ``nan``."""
        times = self.trigger_times.copy()
        times[~np.isfinite(times)] = np.nan
        return times


def _arrival_matrix_shape(grid: HexGrid) -> Tuple[int, int, int]:
    return (grid.layers + 1, grid.width, len(TRIGGER_GUARDS) + 1)


def solve_single_pulse(
    grid: HexGrid,
    layer0_times: Sequence[float],
    delays: LinkDelayProvider,
    fault_model: Optional[FaultModel] = None,
    byzantine_high_time: float = 0.0,
) -> PulseSolution:
    """Compute the firing time of every node for a single pulse wave.

    Parameters
    ----------
    grid:
        The HEX grid.
    layer0_times:
        Firing times of the ``W`` layer-0 clock sources (scenario-dependent;
        see :mod:`repro.clocksource.scenarios`).  Faulty layer-0 nodes are
        handled through the fault model; their entry here is ignored.
    delays:
        Link delay provider (see :class:`LinkDelayProvider`).  Only consulted
        for links that behave correctly.
    fault_model:
        Faults to inject; ``None`` means fault-free.
    byzantine_high_time:
        The time at which a stuck-at-1 Byzantine link sets the receiver's
        memory flag.  The paper's testbench drives such links high from the
        start of the run, hence the default of 0.

    Returns
    -------
    PulseSolution
    """
    layer0_times = np.asarray(layer0_times, dtype=float)
    if layer0_times.shape != (grid.width,):
        raise ValueError(
            f"layer0_times must have shape ({grid.width},), got {layer0_times.shape}"
        )
    if fault_model is not None and fault_model.grid != grid:
        raise ValueError("fault model belongs to a different grid")
    faults = fault_model if fault_model is not None else FaultModel.fault_free(grid)

    num_layers, width = grid.layers + 1, grid.width
    trigger_times = np.full((num_layers, width), math.inf, dtype=float)
    guards = np.full((num_layers, width), -1, dtype=np.int8)
    correct_mask = faults.correctness_mask()
    # Structurally absent nodes (punctured slots of a degraded topology) are
    # excluded like faulty nodes: nan trigger time, masked out of statistics.
    presence = grid.presence_mask()
    correct_mask &= presence
    trigger_times[~presence] = math.nan

    # arrivals[node] maps incoming Direction -> arrival time of the trigger
    # message on that link (only for links whose message is already determined).
    arrivals: Dict[NodeId, Dict[Direction, float]] = {
        node: {} for node in grid.forwarding_nodes()
    }

    # Priority queue of firing candidates: (time, layer, column, guard_value).
    heap: List[Tuple[float, int, int, int]] = []
    finalized = np.zeros((num_layers, width), dtype=bool)

    def push_candidates(node: NodeId) -> None:
        """(Re-)evaluate all guards of ``node`` and push completed ones."""
        node_arrivals = arrivals[node]
        layer, column = node
        for guard_value, (dir_a, dir_b) in enumerate(TRIGGER_GUARDS):
            if dir_a in node_arrivals and dir_b in node_arrivals:
                candidate = max(node_arrivals[dir_a], node_arrivals[dir_b])
                heapq.heappush(heap, (candidate, layer, column, guard_value))

    def deliver(source: NodeId, fire_time: float) -> None:
        """Propagate the firing of ``source`` to its correct out-neighbours."""
        for destination in grid.out_neighbors(source).values():
            dest_layer, dest_column = destination
            if dest_layer == 0 or not correct_mask[dest_layer, dest_column]:
                continue
            behavior = faults.link_behavior((source, destination), time=fire_time)
            if behavior is not LinkBehavior.CORRECT:
                # Constant links were already seeded below; silent links deliver
                # nothing.
                continue
            direction = grid.direction_between(source, destination)
            arrival = fire_time + delays.delay(source, destination)
            node_arrivals = arrivals[destination]
            if direction in node_arrivals:
                # A link delivers (at most) one message per pulse under (C2).
                continue
            node_arrivals[direction] = arrival
            push_candidates(destination)

    # ------------------------------------------------------------------
    # seed: Byzantine stuck-at-1 links set the receiver's flag immediately
    # ------------------------------------------------------------------
    for faulty_node in faults.faulty_nodes():
        for destination in grid.out_neighbors(faulty_node).values():
            dest_layer, dest_column = destination
            if dest_layer == 0 or not correct_mask[dest_layer, dest_column]:
                continue
            if faults.link_behavior((faulty_node, destination)) is LinkBehavior.CONSTANT_ONE:
                direction = grid.direction_between(faulty_node, destination)
                arrivals[destination][direction] = byzantine_high_time
    for (source, destination), behavior in (
        (link, faults.link_behavior(link)) for link in faults.faulty_links()
    ):
        dest_layer, dest_column = destination
        if dest_layer == 0 or not correct_mask[dest_layer, dest_column]:
            continue
        if behavior is LinkBehavior.CONSTANT_ONE:
            direction = grid.direction_between(source, destination)
            arrivals[destination][direction] = byzantine_high_time
    for node in grid.forwarding_nodes():
        if arrivals[node]:
            push_candidates(node)

    # ------------------------------------------------------------------
    # seed: layer-0 clock sources
    # ------------------------------------------------------------------
    for column in range(width):
        source = (0, column)
        if not correct_mask[0, column]:
            trigger_times[0, column] = math.nan
            continue
        fire_time = float(layer0_times[column])
        trigger_times[0, column] = fire_time
        finalized[0, column] = True
        deliver(source, fire_time)

    # Faulty forwarding nodes never fire; mark them now.
    for layer, column in faults.faulty_nodes():
        if layer > 0:
            trigger_times[layer, column] = math.nan

    # ------------------------------------------------------------------
    # Dijkstra sweep
    # ------------------------------------------------------------------
    while heap:
        candidate, layer, column, guard_value = heapq.heappop(heap)
        if finalized[layer, column]:
            continue
        finalized[layer, column] = True
        trigger_times[layer, column] = candidate
        guards[layer, column] = guard_value
        deliver((layer, column), candidate)

    layer0_out = trigger_times[0, :].copy()
    return PulseSolution(
        grid=grid,
        trigger_times=trigger_times,
        guards=guards,
        correct_mask=correct_mask,
        layer0_times=layer0_out,
    )
