"""Analytic single-pulse trigger-time solver.

For the propagation of a *single* pulse wave through the HEX grid -- assuming
constraints (C1) and (C2) of Section 3.1 hold, i.e. all correct nodes start
with cleared memory flags, never forget a memorized message before firing, and
do not sleep while the wave passes -- the firing time of a correct forwarding
node ``v`` is fully determined by the firing times of its in-neighbours and the
link delays:

    ``t_v = min over the three guards {(left, lower-left), (lower-left,
    lower-right), (lower-right, right)} of max(arrival_a, arrival_b)``

where ``arrival_x = t_x + delay(x -> v)`` for a correct in-neighbour ``x``,
``arrival_x = +inf`` for a silent (constant-0 / fail-silent / crashed) link and
``arrival_x = byzantine_high_time`` (default 0, the start of the run) for a
stuck-at-1 Byzantine link, which sets the receiver's memory flag as soon as the
run starts.

Because all link delays are strictly positive this fixed point can be computed
with a Dijkstra-style sweep: firing times are finalized in non-decreasing
order, and every candidate generated from a finalized neighbour is at least
that neighbour's firing time plus ``d-``.  This makes the solver exact and
O(n log n); it is the engine used for the large single-pulse statistical sweeps
(Tables 1-2, Figs. 8-16), while the discrete-event simulator in
:mod:`repro.simulation` handles multi-pulse and stabilization experiments.
The two engines are cross-validated against each other in the test suite.

The solver is deliberately defensive about *who* may fire: layer-0 nodes fire
exactly at the externally supplied times, faulty nodes never fire (their
outgoing links behave according to the fault model instead), and nodes whose
guard is never satisfied keep a firing time of ``+inf``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.algorithm import GuardKind
from repro.core.topology import TRIGGER_GUARDS, Direction, HexGrid, NodeId
from repro.faults.models import FaultModel, LinkBehavior

__all__ = [
    "LinkDelayProvider",
    "PulseSolution",
    "SolverPlan",
    "solve_single_pulse",
    "solve_single_pulse_planned",
    "solver_plan",
]


class LinkDelayProvider(Protocol):
    """Anything that can report the delay of a directed link.

    The delay models in :mod:`repro.simulation.links` implement this protocol;
    a plain ``dict``-backed adapter or a constant-delay lambda wrapped in a
    small class works just as well for analytic constructions.
    """

    def delay(self, source: NodeId, destination: NodeId) -> float:
        """The end-to-end delay of the directed link ``source -> destination``."""
        ...


@dataclass
class PulseSolution:
    """The result of propagating a single pulse through the grid.

    Attributes
    ----------
    grid:
        The HEX grid the pulse propagated through.
    trigger_times:
        Array of shape ``(L + 1, W)``.  Entry ``[l, i]`` is the firing time of
        node ``(l, i)``; ``+inf`` if the node never fired, ``nan`` if the node
        is faulty (faulty nodes have no meaningful firing time).
    guards:
        Integer array of shape ``(L + 1, W)``; entry is the
        :class:`~repro.core.algorithm.GuardKind` value of the guard that fired
        the node, ``-1`` for layer-0 sources, never-fired and faulty nodes.
    correct_mask:
        Boolean array, ``True`` where the node is correct.
    layer0_times:
        The layer-0 firing times the solution was computed from (length ``W``;
        faulty sources carry ``nan``).
    work:
        Deterministic work counters of the sweep: ``heap_pushes`` (guards that
        completed, i.e. candidates the *deduplicating* sweep pushes exactly
        once each -- the reference sweep's redundant re-pushes are not
        counted, so the number is identical across both solver paths),
        ``frontier_advances`` (forwarding nodes finalized) and
        ``messages_delivered`` (trigger arrivals that landed, including
        Byzantine stuck-at-1 seeds).  Pure functions of topology, delays and
        faults -- bit-deterministic across runs, machines and solver paths.
    """

    grid: HexGrid
    trigger_times: np.ndarray
    guards: np.ndarray
    correct_mask: np.ndarray
    layer0_times: np.ndarray
    work: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    def trigger_time(self, node: NodeId) -> float:
        """Firing time of a single node."""
        layer, column = self.grid.validate_node(node)
        return float(self.trigger_times[layer, column])

    def guard_kind(self, node: NodeId) -> Optional[GuardKind]:
        """The guard that fired ``node`` (Definition 1), or ``None``."""
        layer, column = self.grid.validate_node(node)
        value = int(self.guards[layer, column])
        return GuardKind(value) if value >= 0 else None

    def causal_in_neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The in-neighbours on the causal links of ``node`` (Definition 1)."""
        guard = self.guard_kind(node)
        if guard is None:
            return ()
        return tuple(
            self.grid.neighbor(node, direction) for direction in guard.causal_directions
        )

    def all_triggered(self, include_faulty: bool = False) -> bool:
        """Whether every (correct) forwarding node fired."""
        times = self.trigger_times[1:, :]
        mask = self.correct_mask[1:, :]
        if include_faulty:
            return bool(np.all(np.isfinite(times)))
        return bool(np.all(np.isfinite(times[mask])))

    def finite_times(self) -> np.ndarray:
        """Copy of the trigger-time matrix with non-finite entries masked as ``nan``."""
        times = self.trigger_times.copy()
        times[~np.isfinite(times)] = np.nan
        return times


def _arrival_matrix_shape(grid: HexGrid) -> Tuple[int, int, int]:
    return (grid.layers + 1, grid.width, len(TRIGGER_GUARDS) + 1)


def solve_single_pulse(
    grid: HexGrid,
    layer0_times: Sequence[float],
    delays: LinkDelayProvider,
    fault_model: Optional[FaultModel] = None,
    byzantine_high_time: float = 0.0,
) -> PulseSolution:
    """Compute the firing time of every node for a single pulse wave.

    Parameters
    ----------
    grid:
        The HEX grid.
    layer0_times:
        Firing times of the ``W`` layer-0 clock sources (scenario-dependent;
        see :mod:`repro.clocksource.scenarios`).  Faulty layer-0 nodes are
        handled through the fault model; their entry here is ignored.
    delays:
        Link delay provider (see :class:`LinkDelayProvider`).  Only consulted
        for links that behave correctly.
    fault_model:
        Faults to inject; ``None`` means fault-free.
    byzantine_high_time:
        The time at which a stuck-at-1 Byzantine link sets the receiver's
        memory flag.  The paper's testbench drives such links high from the
        start of the run, hence the default of 0.

    Returns
    -------
    PulseSolution
    """
    layer0_times = np.asarray(layer0_times, dtype=float)
    if layer0_times.shape != (grid.width,):
        raise ValueError(
            f"layer0_times must have shape ({grid.width},), got {layer0_times.shape}"
        )
    if fault_model is not None and fault_model.grid != grid:
        raise ValueError("fault model belongs to a different grid")
    faults = fault_model if fault_model is not None else FaultModel.fault_free(grid)

    num_layers, width = grid.layers + 1, grid.width
    trigger_times = np.full((num_layers, width), math.inf, dtype=float)
    guards = np.full((num_layers, width), -1, dtype=np.int8)
    correct_mask = faults.correctness_mask()
    # Structurally absent nodes (punctured slots of a degraded topology) are
    # excluded like faulty nodes: nan trigger time, masked out of statistics.
    presence = grid.presence_mask()
    correct_mask &= presence
    trigger_times[~presence] = math.nan

    # arrivals[node] maps incoming Direction -> arrival time of the trigger
    # message on that link (only for links whose message is already determined).
    arrivals: Dict[NodeId, Dict[Direction, float]] = {
        node: {} for node in grid.forwarding_nodes()
    }

    # Priority queue of firing candidates: (time, layer, column, guard_value).
    heap: List[Tuple[float, int, int, int]] = []
    finalized = np.zeros((num_layers, width), dtype=bool)

    def push_candidates(node: NodeId) -> None:
        """(Re-)evaluate all guards of ``node`` and push completed ones."""
        node_arrivals = arrivals[node]
        layer, column = node
        for guard_value, (dir_a, dir_b) in enumerate(TRIGGER_GUARDS):
            if dir_a in node_arrivals and dir_b in node_arrivals:
                candidate = max(node_arrivals[dir_a], node_arrivals[dir_b])
                heapq.heappush(heap, (candidate, layer, column, guard_value))

    def deliver(source: NodeId, fire_time: float) -> None:
        """Propagate the firing of ``source`` to its correct out-neighbours."""
        for destination in grid.out_neighbors(source).values():
            dest_layer, dest_column = destination
            if dest_layer == 0 or not correct_mask[dest_layer, dest_column]:
                continue
            behavior = faults.link_behavior((source, destination), time=fire_time)
            if behavior is not LinkBehavior.CORRECT:
                # Constant links were already seeded below; silent links deliver
                # nothing.
                continue
            direction = grid.direction_between(source, destination)
            arrival = fire_time + delays.delay(source, destination)
            node_arrivals = arrivals[destination]
            if direction in node_arrivals:
                # A link delivers (at most) one message per pulse under (C2).
                continue
            node_arrivals[direction] = arrival
            push_candidates(destination)

    # ------------------------------------------------------------------
    # seed: Byzantine stuck-at-1 links set the receiver's flag immediately
    # ------------------------------------------------------------------
    for faulty_node in faults.faulty_nodes():
        for destination in grid.out_neighbors(faulty_node).values():
            dest_layer, dest_column = destination
            if dest_layer == 0 or not correct_mask[dest_layer, dest_column]:
                continue
            if faults.link_behavior((faulty_node, destination)) is LinkBehavior.CONSTANT_ONE:
                direction = grid.direction_between(faulty_node, destination)
                arrivals[destination][direction] = byzantine_high_time
    for (source, destination), behavior in (
        (link, faults.link_behavior(link)) for link in faults.faulty_links()
    ):
        dest_layer, dest_column = destination
        if dest_layer == 0 or not correct_mask[dest_layer, dest_column]:
            continue
        if behavior is LinkBehavior.CONSTANT_ONE:
            direction = grid.direction_between(source, destination)
            arrivals[destination][direction] = byzantine_high_time
    for node in grid.forwarding_nodes():
        if arrivals[node]:
            push_candidates(node)

    # ------------------------------------------------------------------
    # seed: layer-0 clock sources
    # ------------------------------------------------------------------
    for column in range(width):
        source = (0, column)
        if not correct_mask[0, column]:
            trigger_times[0, column] = math.nan
            continue
        fire_time = float(layer0_times[column])
        trigger_times[0, column] = fire_time
        finalized[0, column] = True
        deliver(source, fire_time)

    # Faulty forwarding nodes never fire; mark them now.
    for layer, column in faults.faulty_nodes():
        if layer > 0:
            trigger_times[layer, column] = math.nan

    # ------------------------------------------------------------------
    # Dijkstra sweep
    # ------------------------------------------------------------------
    while heap:
        candidate, layer, column, guard_value = heapq.heappop(heap)
        if finalized[layer, column]:
            continue
        finalized[layer, column] = True
        trigger_times[layer, column] = candidate
        guards[layer, column] = guard_value
        deliver((layer, column), candidate)

    # Post-hoc work accounting (O(n), outside the sweep -- the hot loop pays
    # nothing).  Counts the *deduplicated* heap traffic so the number matches
    # the planned fast path, which skips the re-pushes this sweep performs.
    messages_delivered = 0
    heap_pushes = 0
    for node_arrivals in arrivals.values():
        messages_delivered += len(node_arrivals)
        for dir_a, dir_b in TRIGGER_GUARDS:
            if dir_a in node_arrivals and dir_b in node_arrivals:
                heap_pushes += 1
    work = {
        "heap_pushes": heap_pushes,
        "frontier_advances": int(finalized[1:, :].sum()),
        "messages_delivered": messages_delivered,
    }

    layer0_out = trigger_times[0, :].copy()
    return PulseSolution(
        grid=grid,
        trigger_times=trigger_times,
        guards=guards,
        correct_mask=correct_mask,
        layer0_times=layer0_out,
        work=work,
    )


# ----------------------------------------------------------------------
# plan-compiled fast path (fault-free runs)
# ----------------------------------------------------------------------
#: Flat indices of the four incoming directions, chosen so that the three
#: guards of :data:`TRIGGER_GUARDS` become the consecutive pairs
#: ``(0, 1), (1, 2), (2, 3)``.
_IN_INDEX = {
    Direction.LEFT: 0,
    Direction.LOWER_LEFT: 1,
    Direction.LOWER_RIGHT: 2,
    Direction.RIGHT: 3,
}


@dataclass(frozen=True)
class SolverPlan:
    """RNG-free scaffolding of :func:`solve_single_pulse_planned`.

    A plan compiles a grid's neighbour tables into flat Python lists indexed
    by the row-major node index, so the sweep's inner loop touches no dicts,
    no ``(layer, column)`` tuples and no :class:`Direction` enums.  Plans
    contain only topology-derived data (no randomness, no per-run state), so
    one plan serves every run on an equal grid; :func:`solver_plan` caches
    them by grid identity.

    Attributes
    ----------
    nodes:
        Node index -> ``(layer, column)`` tuple (the form delay models and
        result matrices expect).
    out_links:
        Node index -> list of ``(dest_index, in_direction_index, dest_layer,
        dest_column)`` tuples, in the exact iteration order of
        ``grid.out_neighbors(node).values()``; destinations on layer 0 or
        structurally absent are excluded (the reference sweep skips them
        before consuming any randomness).
    present_sources:
        The layer-0 columns whose source node is structurally present.
    """

    num_nodes: int
    width: int
    layers: int
    nodes: Tuple[NodeId, ...]
    out_links: Tuple[Tuple[Tuple[int, int, int, int], ...], ...]
    present_sources: Tuple[int, ...]

    @classmethod
    def compile(cls, grid: HexGrid) -> "SolverPlan":
        """Compile the plan of one grid (any registered topology family)."""
        width = grid.width
        presence = grid.presence_mask()
        # Enumerate every row-major slot, including structurally absent ones
        # (``grid.nodes()`` skips holes on degraded grids); absent slots keep
        # an empty link list and are never finalized.
        nodes = tuple(
            (layer, column)
            for layer in range(grid.layers + 1)
            for column in range(width)
        )
        out_links: List[Tuple[Tuple[int, int, int, int], ...]] = []
        for node in nodes:
            layer, column = node
            links: List[Tuple[int, int, int, int]] = []
            if presence[layer, column]:
                for destination in grid.out_neighbors(node).values():
                    dest_layer, dest_column = destination
                    if dest_layer == 0 or not presence[dest_layer, dest_column]:
                        continue
                    direction = grid.direction_between(node, destination)
                    links.append(
                        (
                            dest_layer * width + dest_column,
                            _IN_INDEX[direction],
                            dest_layer,
                            dest_column,
                        )
                    )
            out_links.append(tuple(links))
        present_sources = tuple(
            column for column in range(width) if presence[0, column]
        )
        return cls(
            num_nodes=grid.num_nodes,
            width=width,
            layers=grid.layers,
            nodes=nodes,
            out_links=tuple(out_links),
            present_sources=present_sources,
        )


@lru_cache(maxsize=16)
def solver_plan(grid: HexGrid) -> SolverPlan:
    """The (cached) :class:`SolverPlan` of a grid.

    Grids are immutable and equality-keyed by their identity (family,
    dimensions, damage spec), so equal grids share one compiled plan.
    """
    return SolverPlan.compile(grid)


def solve_single_pulse_planned(
    grid: HexGrid,
    layer0_times: Sequence[float],
    delays: LinkDelayProvider,
    plan: Optional[SolverPlan] = None,
) -> PulseSolution:
    """Fault-free fast path of :func:`solve_single_pulse`.

    Runs the identical Dijkstra sweep -- same candidate tuples, same heap
    discipline, same delivery order, and therefore the *same sequence of
    delay-model queries* -- over the flat arrays of a :class:`SolverPlan`
    instead of the dict-of-tuples bookkeeping of the reference sweep.  For a
    fault-free run the result is bit-identical to
    ``solve_single_pulse(grid, layer0_times, delays)`` (pinned by the engine
    test suite); callers with a non-trivial fault model must use the
    reference solver.

    This is the hot path of ``SolverEngine.run_batch``: the plan is compiled
    once per grid and shared across all runs of a batch.
    """
    layer0 = np.asarray(layer0_times, dtype=float)
    if layer0.shape != (grid.width,):
        raise ValueError(
            f"layer0_times must have shape ({grid.width},), got {layer0.shape}"
        )
    if plan is None:
        plan = solver_plan(grid)

    num_nodes, width = plan.num_nodes, plan.width
    trigger_flat = [math.inf] * num_nodes
    guard_flat = [-1] * num_nodes
    # arrivals[node * 4 + direction_index]; None = no message yet.
    arrivals: List[Optional[float]] = [None] * (num_nodes * 4)
    finalized = bytearray(num_nodes)
    heap: List[Tuple[float, int, int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    out_links = plan.out_links
    node_tuples = plan.nodes
    link_delay = delays.delay

    def deliver(source_index: int, fire_time: float) -> None:
        source = node_tuples[source_index]
        for dest_index, direction, dest_layer, dest_column in out_links[source_index]:
            arrival = fire_time + link_delay(source, node_tuples[dest_index])
            base = dest_index * 4
            arrivals[base + direction] = arrival
            # Push exactly the guards this arrival completes.  The reference
            # sweep re-pushes already-complete guards with unchanged candidate
            # tuples; duplicates never alter the pop order, so skipping them
            # keeps the finalization sequence (and thus the delay-draw order)
            # bit-identical while halving the heap traffic.
            if direction == 0:
                other = arrivals[base + 1]
                if other is not None:
                    push(
                        heap,
                        (
                            arrival if arrival > other else other,
                            dest_layer,
                            dest_column,
                            0,
                        ),
                    )
            elif direction == 1:
                other = arrivals[base]
                if other is not None:
                    push(
                        heap,
                        (
                            arrival if arrival > other else other,
                            dest_layer,
                            dest_column,
                            0,
                        ),
                    )
                other = arrivals[base + 2]
                if other is not None:
                    push(
                        heap,
                        (
                            arrival if arrival > other else other,
                            dest_layer,
                            dest_column,
                            1,
                        ),
                    )
            elif direction == 2:
                other = arrivals[base + 1]
                if other is not None:
                    push(
                        heap,
                        (
                            arrival if arrival > other else other,
                            dest_layer,
                            dest_column,
                            1,
                        ),
                    )
                other = arrivals[base + 3]
                if other is not None:
                    push(
                        heap,
                        (
                            arrival if arrival > other else other,
                            dest_layer,
                            dest_column,
                            2,
                        ),
                    )
            else:
                other = arrivals[base + 2]
                if other is not None:
                    push(
                        heap,
                        (
                            arrival if arrival > other else other,
                            dest_layer,
                            dest_column,
                            2,
                        ),
                    )

    for column in plan.present_sources:
        fire_time = float(layer0[column])
        trigger_flat[column] = fire_time
        finalized[column] = 1
        deliver(column, fire_time)

    while heap:
        candidate, layer, column, guard_value = pop(heap)
        index = layer * width + column
        if finalized[index]:
            continue
        finalized[index] = 1
        trigger_flat[index] = candidate
        guard_flat[index] = guard_value
        deliver(index, candidate)

    # Post-hoc work accounting over the flat arrival slots (O(n), outside the
    # sweep).  A guard counts as one heap push when both of its arrivals
    # landed -- exactly when this path pushed it -- so the numbers equal the
    # reference sweep's deduplicated counts bit for bit.
    messages_delivered = 0
    heap_pushes = 0
    for base in range(0, 4 * num_nodes, 4):
        has_left = arrivals[base] is not None
        has_lower_left = arrivals[base + 1] is not None
        has_lower_right = arrivals[base + 2] is not None
        has_right = arrivals[base + 3] is not None
        messages_delivered += has_left + has_lower_left + has_lower_right + has_right
        heap_pushes += (
            (has_left and has_lower_left)
            + (has_lower_left and has_lower_right)
            + (has_lower_right and has_right)
        )
    work = {
        "heap_pushes": heap_pushes,
        "frontier_advances": sum(finalized) - len(plan.present_sources),
        "messages_delivered": messages_delivered,
    }

    trigger_times = np.array(trigger_flat, dtype=float).reshape(plan.layers + 1, width)
    guards = np.array(guard_flat, dtype=np.int8).reshape(plan.layers + 1, width)
    presence = grid.presence_mask()
    trigger_times[~presence] = math.nan
    correct_mask = presence.copy()
    return PulseSolution(
        grid=grid,
        trigger_times=trigger_times,
        guards=guards,
        correct_mask=correct_mask,
        layer0_times=trigger_times[0, :].copy(),
        work=work,
    )
