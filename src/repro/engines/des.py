"""The discrete-event testbed as an execution engine.

Replaces the paper's ModelSim/VHDL testbench: full node state machines over a
time-ordered event queue, supporting both the single-pulse workload (for
cross-validation against the analytic solver) and the multi-pulse
stabilization workload of Section 4.4.

Draw order (the reproducibility contract, identical to the historical
``execute_task`` bodies):

* single-pulse -- layer-0 firing times, fault placement/behaviour, then link
  delays and timer draws inside the simulation;
* multi-pulse -- fault placement/behaviour, the pulse schedule, then the
  simulation's own draws (initial states, timers, per-message delays).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.adversary.runtime import ScheduledAdversary
from repro.clocksource.generator import PulseScheduleConfig, generate_pulse_schedule
from repro.clocksource.scenarios import Scenario, scenario_layer0_times
from repro.core.bounds import lemma5_pulse_skew_bound
from repro.core.parameters import TimeoutConfig, TimingConfig, condition2_timeouts
from repro.core.topology import HexGrid, NodeId
from repro.engines.base import (
    EngineCapabilities,
    RunResult,
    RunSpec,
    generic_run_batch,
    require_kind,
    require_topology_support,
    validate_layer0,
)
from repro.faults.models import FaultModel
from repro.faults.placement import build_fault_model
from repro.simulation.links import DelayModel, FreshUniformDelays, UniformRandomDelays
from repro.simulation.network import HexNetwork, TimerPolicy

__all__ = [
    "DesEngine",
    "single_pulse_default_timeouts",
    "scenario_layer0_spread",
    "scenario_stabilization_timeouts",
]


def single_pulse_default_timeouts(
    grid: HexGrid,
    timing: TimingConfig,
    num_faults: int = 0,
    layer0_spread: float = 0.0,
    signal_duration: float = 0.0,
) -> TimeoutConfig:
    """Conservative Condition 2 timeouts from the Lemma 5 stable-skew bound.

    This is the "C = 0" parameter choice of the stabilization experiments: the
    stable skew is bounded by Lemma 5 as ``t_max - t_min + epsilon L + f d+``,
    where ``layer0_spread`` plays the role of ``t_max - t_min``.  Topologies
    with laterally-triggered nodes (patch rim, degraded holes) charge their
    :meth:`~repro.core.topology.HexGrid.condition2_extra_hops` margin on top
    -- zero on the cylinder, so its timeouts are unchanged.
    """
    stable_skew = lemma5_pulse_skew_bound(
        timing, grid.layers, num_faults, layer0_spread=layer0_spread
    )
    stable_skew += grid.condition2_extra_hops() * timing.d_max
    return condition2_timeouts(
        timing,
        stable_skew=stable_skew,
        layers=grid.layers,
        num_faults=num_faults,
        signal_duration=signal_duration,
    )


def scenario_layer0_spread(scenario: Scenario, width: int, timing: TimingConfig) -> float:
    """Maximum layer-0 spread of a scenario (the C = 0 bound's ``t_max - t_min``)."""
    return {
        Scenario.ZERO: 0.0,
        Scenario.UNIFORM_DMIN: timing.d_min,
        Scenario.UNIFORM_DMAX: timing.d_max,
        Scenario.RAMP: (width // 2) * timing.d_max,
    }[scenario]


def scenario_stabilization_timeouts(
    scenario: Scenario,
    width: int,
    layers: int,
    num_faults: int,
    timing: TimingConfig,
    extra_hops: int = 0,
) -> TimeoutConfig:
    """Condition 2 timeouts from the conservative Lemma 5 stable-skew bound.

    Mirrors :func:`repro.experiments.stability.scenario_timeouts` without
    depending on the experiments layer.  ``extra_hops`` is the topology's
    lateral-trigger margin (see
    :meth:`~repro.core.topology.HexGrid.condition2_extra_hops`); the default
    of 0 keeps every cylinder caller byte-identical.
    """
    spread = scenario_layer0_spread(scenario, width, timing)
    stable_skew = (
        spread + timing.epsilon * layers + (num_faults + extra_hops) * timing.d_max
    )
    return condition2_timeouts(
        timing, stable_skew=stable_skew, layers=layers, num_faults=num_faults
    )


class DesEngine:
    """The ModelSim-style discrete-event execution semantics."""

    name = "des"
    capabilities = EngineCapabilities(
        kinds=("single_pulse", "multi_pulse"),
        supports_faults=True,
        supports_explicit_inputs=True,
        supports_fault_schedules=True,
        supported_topologies=("*",),
        exactness="tolerance",
        tolerance=1.0,
        description="discrete-event simulation of the full node state machines",
    )

    @staticmethod
    def _materialize_schedule(
        spec: RunSpec,
        grid: HexGrid,
        fault_model: Optional[FaultModel],
        rng: np.random.Generator,
    ) -> Optional[ScheduledAdversary]:
        """Resolve the spec's fault schedule (if any) into concrete actions.

        Draw-order contract: materialization happens immediately *after* the
        static fault model's draws and consumes the generator only when a
        schedule is present, so schedule-free specs keep the historical
        stream bit for bit.
        """
        if spec.fault_schedule is None:
            return None
        exclude = fault_model.faulty_nodes() if fault_model is not None else ()
        return spec.fault_schedule.materialize(grid, rng, exclude=exclude)

    def run(self, spec: RunSpec, rng: Optional[np.random.Generator] = None) -> RunResult:
        """Execute a declarative run (scenario-driven draws)."""
        with obs.span("engine.run", engine=self.name, kind=spec.kind):
            obs.inc("engine.des.runs")
            return self._run(spec, rng)

    def _run(self, spec: RunSpec, rng: Optional[np.random.Generator] = None) -> RunResult:
        require_kind(self, spec)
        require_topology_support(self, spec)
        generator = rng if rng is not None else spec.rng()
        grid = spec.make_grid()
        timing = spec.make_timing()
        timer_policy = TimerPolicy(spec.timer_policy)

        if spec.kind == "single_pulse":
            layer0 = scenario_layer0_times(spec.scenario, grid.width, timing, rng=generator)
            fault_model = build_fault_model(
                grid,
                spec.num_faults,
                spec.make_fault_type(),
                generator,
                fixed_positions=spec.fixed_fault_positions,
            )
            adversary = self._materialize_schedule(spec, grid, fault_model, generator)
            result = self.single_pulse(
                grid,
                timing,
                layer0,
                rng=generator,
                fault_model=fault_model,
                delays=spec.make_delays(timing, generator, kind_default="uniform"),
                timeouts=spec.make_timeouts(),
                timer_policy=timer_policy,
                adversary=adversary,
            )
            result.spec = spec
            return result

        scenario = Scenario(spec.scenario)
        fault_model = build_fault_model(
            grid,
            spec.num_faults,
            spec.make_fault_type(),
            generator,
            fixed_positions=spec.fixed_fault_positions,
        )
        adversary = self._materialize_schedule(spec, grid, fault_model, generator)
        timeouts = spec.make_timeouts()
        if timeouts is None:
            timeouts = scenario_stabilization_timeouts(
                scenario,
                grid.width,
                grid.layers,
                spec.num_faults,
                timing,
                extra_hops=grid.condition2_extra_hops(),
            )
        schedule = generate_pulse_schedule(
            PulseScheduleConfig(
                scenario=scenario,
                num_pulses=spec.num_pulses,
                separation=timeouts.pulse_separation,
            ),
            grid.width,
            timing,
            rng=generator,
        )
        result = self.multi_pulse(
            grid,
            timing,
            timeouts,
            schedule,
            rng=generator,
            fault_model=fault_model,
            delays=spec.make_delays(timing, generator, kind_default="fresh"),
            random_initial_states=spec.random_initial_states,
            timer_policy=timer_policy,
            run_slack=spec.run_slack,
            adversary=adversary,
            initial_states=spec.effective_initial_states(),
        )
        result.spec = spec
        return result

    def run_batch(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Per-spec loop: the event queue offers no cross-run setup to share.

        (The network, its timers and the delay draws are all per-run state;
        only grid construction could be amortized, which is negligible next
        to a full discrete-event simulation.)
        """
        with obs.span("engine.run_batch", engine=self.name, size=len(specs)):
            return generic_run_batch(self, specs)

    def single_pulse(
        self,
        grid: HexGrid,
        timing: TimingConfig,
        layer0_times: Sequence[float],
        *,
        rng: np.random.Generator,
        fault_model: Optional[FaultModel] = None,
        delays: Optional[DelayModel] = None,
        timeouts: Optional[TimeoutConfig] = None,
        timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
        adversary: Optional[ScheduledAdversary] = None,
        observer: Optional[object] = None,
    ) -> RunResult:
        """Propagate one pulse wave through the full state machines.

        ``observer`` replaces the default :func:`repro.obs.des_observer` hook
        with a caller-supplied network observer (duck-typed ``on_event`` /
        ``on_firing`` / ``on_adversary``); the caller then owns whatever the
        observer accumulated -- nothing is recorded into ``repro.obs``.
        """
        layer0 = validate_layer0(grid, layer0_times)
        if delays is None:
            delays = UniformRandomDelays(timing, rng)
        num_faults = fault_model.num_faulty_nodes if fault_model is not None else 0
        if timeouts is None:
            spread = float(np.nanmax(layer0) - np.nanmin(layer0)) if layer0.size else 0.0
            timeouts = single_pulse_default_timeouts(
                grid, timing, num_faults=num_faults, layer0_spread=spread
            )
        network = HexNetwork(
            grid=grid,
            timing=timing,
            timeouts=timeouts,
            delays=delays,
            fault_model=fault_model,
            rng=rng,
            timer_policy=timer_policy,
        )
        custom_observer = observer is not None
        network.observer = observer if custom_observer else obs.des_observer()
        network.initialize()
        if adversary is not None:
            adversary.install(network)
        network.schedule_source_pulses(layer0[np.newaxis, :])
        # Byzantine stuck-at-1 links re-assert themselves forever, so the run
        # must be bounded; by Lemma 5 every correct node that fires at all does
        # so within (L + f) d+ of the last layer-0 firing -- plus the
        # topology's lateral-trigger margin (0 on the cylinder).
        propagation_hops = grid.layers + grid.condition2_extra_hops() + num_faults + 2
        horizon = (
            float(np.nanmax(layer0))
            + propagation_hops * timing.d_max
            + timeouts.t_sleep_max
        )
        if adversary is not None:
            # Cover late schedule events plus one full propagation afterwards.
            horizon = max(
                horizon,
                adversary.last_time
                + propagation_hops * timing.d_max
                + timeouts.t_sleep_max,
            )
        network.run(until=horizon)
        if network.observer is not None and not custom_observer:
            obs.record_des_observer(
                network.observer,
                events_scheduled=network.queue.num_scheduled,
                events_processed=network.queue.num_processed,
            )
        trigger_times = network.first_firing_matrix()
        final_model = self._final_fault_model(network, fault_model, adversary)
        correct_mask = (
            final_model.correctness_mask()
            if final_model is not None
            else np.ones(grid.shape, dtype=bool)
        )
        correct_mask &= grid.presence_mask()
        result = RunResult(
            engine=self.name,
            kind="single_pulse",
            grid=grid,
            timing=timing,
            trigger_times=trigger_times,
            correct_mask=correct_mask,
            layer0_times=layer0.copy(),
            solution=None,
            fault_model=final_model,
            timeouts=timeouts,
        )
        if adversary is not None:
            result.metrics["adversary_actions"] = float(adversary.num_actions)
            result.metrics["adversary_last_time"] = float(adversary.last_time)
        return result

    @staticmethod
    def _final_fault_model(
        network: HexNetwork,
        fault_model: Optional[FaultModel],
        adversary: Optional[ScheduledAdversary],
    ) -> Optional[FaultModel]:
        """The fault model describing the *end-of-run* state.

        Static runs report the caller's model unchanged; schedule-driven runs
        report the network's live (mutated) model, normalised to ``None``
        when every fault has healed -- matching the fault-free convention the
        analysis layer expects.
        """
        if adversary is None:
            return fault_model
        final = network.faults
        if final.num_faulty_nodes == 0 and not final.faulty_links():
            return None
        return final

    def multi_pulse(
        self,
        grid: HexGrid,
        timing: TimingConfig,
        timeouts: TimeoutConfig,
        source_schedule: Union[np.ndarray, Sequence[Sequence[float]]],
        *,
        rng: np.random.Generator,
        fault_model: Optional[FaultModel] = None,
        delays: Optional[DelayModel] = None,
        random_initial_states: bool = True,
        timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
        run_slack: float = 0.0,
        adversary: Optional[ScheduledAdversary] = None,
        initial_states: Optional[str] = None,
        observer: Optional[object] = None,
        collect_firings: bool = True,
    ) -> RunResult:
        """Run the simulator over a whole schedule of layer-0 pulses.

        ``initial_states`` (``"clean"`` / ``"random"`` / ``"adversarial"``)
        overrides the legacy ``random_initial_states`` flag when given;
        ``adversary`` installs a materialized fault schedule whose timed
        actions mutate the fault model mid-run.

        ``observer`` replaces the default :func:`repro.obs.des_observer` hook
        with a caller-supplied network observer (duck-typed ``on_event`` /
        ``on_firing`` / ``on_adversary``) that sees every firing as it
        happens; ``collect_firings=False`` additionally skips building the
        per-node ``firing_times`` dict on the result, so long soak epochs
        whose observer already consumed the stream keep memory bounded.
        """
        schedule = np.atleast_2d(np.asarray(source_schedule, dtype=float))
        if schedule.shape[1] != grid.width:
            raise ValueError(
                f"source_schedule must have {grid.width} columns -- one per layer-0 "
                f"clock source of this width-{grid.width} grid -- got shape "
                f"{schedule.shape}; repro.clocksource.generator.generate_pulse_schedule "
                "produces valid schedules"
            )
        if delays is None:
            delays = FreshUniformDelays(timing, rng)
        if initial_states is None:
            initial_states = "random" if random_initial_states else "clean"

        network = HexNetwork(
            grid=grid,
            timing=timing,
            timeouts=timeouts,
            delays=delays,
            fault_model=fault_model,
            rng=rng,
            timer_policy=timer_policy,
        )
        custom_observer = observer is not None
        network.observer = observer if custom_observer else obs.des_observer()
        network.initialize()
        if adversary is not None:
            adversary.install(network)
        if initial_states == "random":
            network.apply_random_initial_states(rng)
        elif initial_states == "adversarial":
            network.apply_adversarial_initial_states()
        network.schedule_source_pulses(schedule)

        num_faults = fault_model.num_faulty_nodes if fault_model is not None else 0
        propagation_hops = grid.layers + grid.condition2_extra_hops() + num_faults + 2
        horizon = (
            float(np.nanmax(schedule))
            + propagation_hops * timing.d_max
            + timeouts.t_sleep_max
            + run_slack
        )
        if adversary is not None:
            horizon = max(
                horizon,
                adversary.last_time
                + propagation_hops * timing.d_max
                + timeouts.t_sleep_max
                + run_slack,
            )
        network.run(until=horizon)
        if network.observer is not None and not custom_observer:
            obs.record_des_observer(
                network.observer,
                events_scheduled=network.queue.num_scheduled,
                events_processed=network.queue.num_processed,
            )

        final_model = self._final_fault_model(network, fault_model, adversary)
        firing_times: Dict[NodeId, List[float]] = {}
        if collect_firings:
            for node in grid.nodes():
                if final_model is not None and final_model.is_faulty(node):
                    continue
                firing_times[node] = network.firing_times(node)

        result = RunResult(
            engine=self.name,
            kind="multi_pulse",
            grid=grid,
            timing=timing,
            timeouts=timeouts,
            source_schedule=schedule,
            firing_times=firing_times,
            fault_model=final_model,
        )
        if adversary is not None:
            result.metrics["adversary_actions"] = float(adversary.num_actions)
            result.metrics["adversary_last_time"] = float(adversary.last_time)
        return result
