"""Dense numpy-frontier single-pulse engine for very large grids.

The HEX grid is bounded-degree and *regular*: every forwarding node ``(l, i)``
listens to the same four in-directions (``LEFT``, ``RIGHT``, ``LOWER_LEFT``,
``LOWER_RIGHT``) whose source columns follow one fixed column pattern per
direction.  Pulse propagation is therefore a stencil, not a graph problem, and
this engine computes the analytic fixed point

    ``t_v = min over guards {(left, lower-left), (lower-left, lower-right),
    (lower-right, right)} of max(arrival_a, arrival_b)``

with whole-row vectorized relaxation instead of the heap sweep of
:mod:`repro.core.pulse_solver`:

* trigger times live in a dense ``(layers + 1, width)`` float array (``+inf``
  = never fired, ``nan`` = absent node, written only at the end);
* per in-direction, the source values are gathered with one fancy-indexing
  shift (``np.roll``-style modular column patterns on wrapping families,
  masked shifts on open boundaries) and the per-link delays live in a dense
  *delay plane* of the same shape, with **absent links folded in as ``+inf``**
  -- ``finite + inf = inf`` makes a missing link an arrival that never comes,
  so the inner loop needs no boolean masking at all;
* because in-links only ever come from layers ``l`` and ``l - 1`` (all four
  topology families preserve this), the sweep runs bottom-up one layer at a
  time: the lower arrivals are computed once per layer, then the lateral
  guards iterate to their per-layer fixed point (a handful of rounds in
  practice, capped at ``width + 3`` -- lateral chains longer than the ring
  strictly increase with positive delays, so they can never win).

Exactness contract
------------------
Starting from ``+inf`` the relaxation is monotone non-increasing, so it
converges to the *greatest* fixed point -- which, with strictly positive
delays, is the unique fixed point the solver's Dijkstra sweep finalizes.  At
the fixed point every value is produced by the same IEEE ``min`` / ``max`` /
``add`` operations on the same operands as the solver's winning guard, so
whenever both engines see the same per-link delay *values* the results are
**bit-identical** -- which is exactly the fault-free x deterministic-delays
regime declared in the capabilities (``exact_when = ("fault_free",
"deterministic_delays")``; see :data:`~repro.engines.base.
DETERMINISTIC_DELAY_MODELS`).  Random delay models draw lazily *in traversal
order*, so two engines observe different per-link values; there the engine
falls back to the ``tolerance=1.0`` claim: every result lies pointwise inside
the per-spec delay envelope ``[T_lo, T_hi]`` of :func:`delay_envelope`.

Randomness contract (same as the solver): draws come only from the run's
generator, layer-0 scenario first, then the delay model.  Fault injection is
not supported (the dense frontier has no per-link behaviour machinery yet),
so the fault-placement stage -- which draws nothing for fault-free specs --
is skipped without perturbing the stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.adversary.delays import MaxSkewDelays
from repro.clocksource.scenarios import scenario_layer0_times
from repro.core.topology import Direction, HexGrid
from repro.engines.base import (
    EngineCapabilities,
    RunResult,
    RunSpec,
    batch_key,
    require_kind,
    require_schedule_support,
    require_topology_support,
    validate_layer0,
)
from repro.simulation.links import ConstantDelays, DelayModel
from repro.topologies import HexPatch, HexTorus

__all__ = ["ArrayEngine", "ArrayPlan", "array_plan", "delay_envelope"]

#: The four in-directions of a forwarding node, in the canonical table order.
_IN_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.LEFT,
    Direction.RIGHT,
    Direction.LOWER_LEFT,
    Direction.LOWER_RIGHT,
)

#: Source *layer* offset per in-direction (0 = same layer, 1 = layer below).
_LAYER_OFFSET: Dict[Direction, int] = {
    Direction.LEFT: 0,
    Direction.RIGHT: 0,
    Direction.LOWER_LEFT: 1,
    Direction.LOWER_RIGHT: 1,
}

#: Cap on batched cells (``batch x rows x width``) processed per relaxation
#: call; larger grid-sharing groups are chunked to bound peak memory.  The
#: chunking is purely elementwise, so it cannot perturb results.
_MAX_BATCH_CELLS = 16_000_000


def _column_patterns(width: int) -> Dict[Direction, np.ndarray]:
    """Source-column index per destination column, per in-direction.

    These are the cylinder's modular patterns; the open-boundary patch and
    the damaged grid reuse them and mask the missing links as absent (the
    gathered value is then irrelevant -- its delay plane entry is ``+inf``).
    """
    columns = np.arange(width)
    return {
        Direction.LEFT: (columns - 1) % width,
        Direction.RIGHT: (columns + 1) % width,
        Direction.LOWER_LEFT: columns.copy(),
        Direction.LOWER_RIGHT: (columns + 1) % width,
    }


@dataclass(frozen=True)
class ArrayPlan:
    """The grid's stencil, compiled once and reused across runs.

    Attributes
    ----------
    layers, width:
        Grid dimensions (``layers`` forwarding layers, so ``layers + 1`` rows).
    src_col:
        Per in-direction ``(width,)`` int array: source column of the in-link
        into each destination column.  The same pattern applies on every
        forwarding layer (the regularity all four families preserve).
    absent:
        Per in-direction ``(layers + 1, width)`` bool array: ``True`` where
        the in-link does not exist (open boundary, severed link, punctured
        endpoint, or the never-listening source layer 0).
    presence:
        ``(layers + 1, width)`` bool node-presence mask of the topology.
    round_cap:
        Upper bound on lateral relaxation rounds per layer before the engine
        declares divergence (impossible for positive delays; defensive).
    """

    layers: int
    width: int
    src_col: Dict[Direction, np.ndarray]
    absent: Dict[Direction, np.ndarray]
    presence: np.ndarray
    round_cap: int


@lru_cache(maxsize=16)
def array_plan(grid: HexGrid) -> ArrayPlan:
    """Compile the dense-frontier stencil of ``grid`` (cached per grid).

    The three intact families (cylinder, torus, patch) are planned directly
    from their boundary rules without touching the per-node neighbour tables
    (whose construction dominates grid cost at large sizes).  Any other
    :class:`HexGrid` -- notably the damaged :class:`~repro.topologies.
    degraded.DegradedGrid` -- is planned from its (already filtered) tables,
    verifying that every in-link follows the regular column pattern from
    layers ``l`` / ``l - 1``; a topology violating that regularity cannot be
    expressed as this stencil and is rejected with a clean error.
    """
    rows, width = grid.layers + 1, grid.width
    src_col = _column_patterns(width)
    absent = {
        direction: np.ones((rows, width), dtype=bool) for direction in _IN_DIRECTIONS
    }
    if type(grid) in (HexGrid, HexTorus):
        for direction in _IN_DIRECTIONS:
            absent[direction][1:, :] = False
    elif type(grid) is HexPatch:
        for direction in _IN_DIRECTIONS:
            absent[direction][1:, :] = False
        absent[Direction.LEFT][1:, 0] = True
        absent[Direction.RIGHT][1:, width - 1] = True
        absent[Direction.LOWER_RIGHT][1:, width - 1] = True
    else:
        for node in grid.forwarding_nodes():
            layer, column = node
            in_links = grid.in_neighbors(node)
            for direction in _IN_DIRECTIONS:
                source = in_links.get(direction)
                if source is None:
                    continue
                expected = (
                    layer - _LAYER_OFFSET[direction],
                    int(src_col[direction][column]),
                )
                if source != expected:
                    raise ValueError(
                        f"array engine cannot plan {grid!r}: in-link "
                        f"{direction.name} of node {node} comes from {source}, "
                        f"not the regular stencil source {expected}; the dense "
                        "frontier only supports layer-local regular families "
                        "-- run this topology on the 'solver' or 'des' engine"
                    )
                absent[direction][layer, column] = False
    presence = grid.presence_mask().astype(bool)
    return ArrayPlan(
        layers=grid.layers,
        width=width,
        src_col=src_col,
        absent=absent,
        presence=presence,
        round_cap=width + 3,
    )


def _delay_planes(
    plan: ArrayPlan, delays: DelayModel
) -> Dict[Direction, np.ndarray]:
    """Dense per-direction delay planes, with absent links folded in as ``+inf``.

    ``planes[direction][l, i]`` is the delay of the in-link into node
    ``(l, i)`` from ``direction``.  The two deterministic models are
    vectorized; any other model is consulted link by link in a fixed,
    documented order (layer-major, then the canonical in-direction order,
    then column-major) -- deterministic *per engine*, but different from the
    solver's traversal order, which is exactly why random models sit outside
    the bit-identical regime.
    """
    rows, width = plan.layers + 1, plan.width
    planes: Dict[Direction, np.ndarray]
    if isinstance(delays, ConstantDelays):
        planes = {
            direction: np.full((rows, width), delays.value)
            for direction in _IN_DIRECTIONS
        }
    elif isinstance(delays, MaxSkewDelays):
        timing = delays.timing
        row = np.where(np.arange(width) < width // 2, timing.d_max, timing.d_min)
        planes = {
            direction: np.broadcast_to(row, (rows, width)).copy()
            for direction in _IN_DIRECTIONS
        }
    else:
        planes = {
            direction: np.full((rows, width), math.inf)
            for direction in _IN_DIRECTIONS
        }
        for layer in range(1, rows):
            for direction in _IN_DIRECTIONS:
                plane = planes[direction]
                missing = plan.absent[direction]
                source_layer = layer - _LAYER_OFFSET[direction]
                source_cols = plan.src_col[direction]
                for column in range(width):
                    if missing[layer, column]:
                        continue
                    plane[layer, column] = delays.delay(
                        (source_layer, int(source_cols[column])), (layer, column)
                    )
    for direction in _IN_DIRECTIONS:
        planes[direction][plan.absent[direction]] = math.inf
    return planes


def _relax(
    plan: ArrayPlan,
    layer0: np.ndarray,
    planes: Dict[Direction, np.ndarray],
) -> Tuple[np.ndarray, int, int]:
    """Run the batched relaxation to its fixed point.

    ``layer0`` is ``(batch, width)`` and each plane ``(batch, rows, width)``.
    Returns ``(trigger_times, rounds, cells_updated)`` with trigger times
    ``(batch, rows, width)`` (``+inf`` = never fires; absent nodes are *not*
    yet ``nan``-masked).  All operations are elementwise per batch member, so
    the result of each member is independent of who shares the batch -- the
    bit-identity half of the ``run_batch`` contract.  The work counters are
    likewise batching-invariant: a member stops accruing rounds after its own
    confirming (no-change) round, and converged members contribute no updated
    cells.
    """
    batch = layer0.shape[0]
    rows, width = plan.layers + 1, plan.width
    src_left = plan.src_col[Direction.LEFT]
    src_right = plan.src_col[Direction.RIGHT]
    src_ll = plan.src_col[Direction.LOWER_LEFT]
    src_lr = plan.src_col[Direction.LOWER_RIGHT]
    plane_left = planes[Direction.LEFT]
    plane_right = planes[Direction.RIGHT]
    plane_ll = planes[Direction.LOWER_LEFT]
    plane_lr = planes[Direction.LOWER_RIGHT]
    trigger = np.full((batch, rows, width), math.inf)
    trigger[:, 0, :] = layer0
    rounds = 0
    cells = 0
    for layer in range(1, rows):
        below = trigger[:, layer - 1, :]
        lower_left = below[:, src_ll] + plane_ll[:, layer, :]
        lower_right = below[:, src_lr] + plane_lr[:, layer, :]
        central = np.maximum(lower_left, lower_right)
        row = np.full((batch, width), math.inf)
        active = np.ones(batch, dtype=bool)
        for _ in range(plan.round_cap):
            left = row[:, src_left] + plane_left[:, layer, :]
            right = row[:, src_right] + plane_right[:, layer, :]
            new = np.minimum(
                np.minimum(np.maximum(left, lower_left), central),
                np.maximum(lower_right, right),
            )
            changed = new != row
            rounds += int(np.count_nonzero(active))
            cells += int(np.count_nonzero(changed))
            changed_rows = changed.any(axis=1)
            active &= changed_rows
            row = new
            if not changed_rows.any():
                break
        else:  # pragma: no cover - impossible for positive delays
            raise RuntimeError(
                f"lateral relaxation of layer {layer} did not reach a fixed "
                f"point within {plan.round_cap} rounds (width {width}); this "
                "indicates non-positive link delays, which the timing "
                "configuration forbids"
            )
        trigger[:, layer, :] = row
    return trigger, rounds, cells


def _stack_planes(
    per_spec: Sequence[Dict[Direction, np.ndarray]]
) -> Dict[Direction, np.ndarray]:
    """Stack per-spec delay planes into ``(batch, rows, width)`` tensors."""
    return {
        direction: np.stack([planes[direction] for planes in per_spec])
        for direction in _IN_DIRECTIONS
    }


def delay_envelope(spec: RunSpec) -> Tuple[np.ndarray, np.ndarray]:
    """The per-node trigger-time envelope ``[T_lo, T_hi]`` of a spec.

    ``T_lo`` / ``T_hi`` are the fixed points under all-``d-`` / all-``d+``
    constant link delays.  Trigger times are monotone increasing in every
    link delay (they are min/max/plus expressions of them), so *any*
    fault-free execution whose delays respect the ``[d-, d+]`` bounds lands
    pointwise inside the envelope -- this is the yardstick the ``tolerance``
    exactness contract is expressed in (``tolerance=1.0`` means "inside the
    envelope"; see :class:`~repro.engines.base.EngineCapabilities`).

    The layer-0 rows of both bounds equal the spec's scenario firing times
    (drawn from the spec's own generator, i.e. exactly the values every
    engine observes); absent nodes are ``nan`` in both bounds.
    """
    grid = spec.make_grid()
    plan = array_plan(grid)
    timing = spec.make_timing()
    layer0 = scenario_layer0_times(spec.scenario, grid.width, timing, rng=spec.rng())
    layer0 = validate_layer0(grid, layer0)
    bounds: List[np.ndarray] = []
    for delay in (timing.d_min, timing.d_max):
        planes = _delay_planes(plan, ConstantDelays(delay))
        stacked = {
            direction: plane[np.newaxis] for direction, plane in planes.items()
        }
        trigger, _, _ = _relax(plan, layer0[np.newaxis, :], stacked)
        bound = trigger[0]
        bound[~plan.presence] = math.nan
        bounds.append(bound)
    return bounds[0], bounds[1]


class ArrayEngine:
    """Dense vectorized single-pulse engine (the large-grid fast path).

    Same fixed point as the analytic solver, computed as whole-row numpy
    relaxation -- the ``shift_array`` idiom on a ``(layers + 1, width)``
    frontier.  Orders of magnitude faster than the heap sweep on big
    fault-free grids (million-node grids complete in seconds) and the
    stepping stone towards numba/GPU backends.
    """

    name = "array"
    capabilities = EngineCapabilities(
        kinds=("single_pulse",),
        supports_faults=False,
        supports_explicit_inputs=False,
        supported_topologies=("cylinder", "torus", "patch", "degraded"),
        exactness="bit_identical",
        tolerance=1.0,
        exact_when=("fault_free", "deterministic_delays"),
        description="dense numpy-frontier single-pulse relaxation (large grids)",
    )

    # ------------------------------------------------------------------
    # spec execution
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec, rng: Optional[np.random.Generator] = None) -> RunResult:
        """Execute a declarative single-pulse run (scenario-driven draws)."""
        with obs.span("engine.run", engine=self.name, kind=spec.kind):
            obs.inc("engine.array.runs")
            self._require(spec)
            grid = spec.make_grid()
            return self._execute([spec], grid, array_plan(grid), rng=rng)[0]

    def run_batch(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute several runs, stacking same-grid specs into one tensor.

        Specs sharing a :func:`~repro.engines.base.batch_key` build their
        grid and :class:`ArrayPlan` once and relax together as a
        ``(batch, layers + 1, width)`` tensor (chunked to bound memory).
        Every operation is elementwise per batch member, so the results are
        bit-identical to ``[run(spec) for spec in specs]`` -- pinned by the
        test suite -- and the work counters are batching-invariant.
        """
        with obs.span("engine.run_batch", engine=self.name, size=len(specs)):
            obs.inc("engine.array.runs", len(specs))
            return self._run_batch(specs)

    def _run_batch(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        for spec in specs:
            self._require(spec)
        grids: Dict[Tuple[str, int, int], HexGrid] = {}
        grouped: Dict[Tuple[str, int, int], List[int]] = {}
        for position, spec in enumerate(specs):
            key = batch_key(spec)
            if key not in grids:
                grids[key] = spec.make_grid()
            grouped.setdefault(key, []).append(position)
        results: List[Optional[RunResult]] = [None] * len(specs)
        for key, positions in grouped.items():
            grid = grids[key]
            plan = array_plan(grid)
            cells = (grid.layers + 1) * grid.width
            chunk = max(1, _MAX_BATCH_CELLS // max(cells, 1))
            for start in range(0, len(positions), chunk):
                block = positions[start : start + chunk]
                block_results = self._execute(
                    [specs[position] for position in block], grid, plan
                )
                for position, result in zip(block, block_results):
                    results[position] = result
        return [result for result in results if result is not None]

    def _require(self, spec: RunSpec) -> None:
        require_kind(self, spec)
        require_schedule_support(self, spec)
        require_topology_support(self, spec)
        if spec.num_faults:
            raise ValueError(
                f"engine {self.name!r} does not support fault injection (spec "
                f"requests num_faults={spec.num_faults}); the dense frontier "
                "has no per-link fault behaviours -- run faulted specs on the "
                "'solver' or 'des' engine"
            )

    def _execute(
        self,
        specs: Sequence[RunSpec],
        grid: HexGrid,
        plan: ArrayPlan,
        rng: Optional[np.random.Generator] = None,
    ) -> List[RunResult]:
        """Relax a same-grid block of specs as one stacked tensor.

        Draw order per spec (from its own generator unless an explicit one is
        supplied for a single run): layer-0 scenario times, then the delay
        model.  Fault placement is skipped -- it draws nothing for the
        fault-free specs this engine accepts.
        """
        timings = []
        layer0_rows = []
        per_spec_planes = []
        for spec in specs:
            generator = rng if rng is not None else spec.rng()
            timing = spec.make_timing()
            layer0 = scenario_layer0_times(
                spec.scenario, grid.width, timing, rng=generator
            )
            layer0 = validate_layer0(grid, layer0)
            delays = spec.make_delays(timing, generator, kind_default="uniform")
            timings.append(timing)
            layer0_rows.append(layer0)
            per_spec_planes.append(_delay_planes(plan, delays))
        trigger, rounds, cells = _relax(
            plan, np.stack(layer0_rows), _stack_planes(per_spec_planes)
        )
        if obs.metrics_enabled():
            obs.inc("array.rounds", rounds)
            obs.inc("array.cells_updated", cells)
        results: List[RunResult] = []
        for index, spec in enumerate(specs):
            trigger_times = trigger[index]
            trigger_times[~plan.presence] = math.nan
            results.append(
                RunResult(
                    engine=self.name,
                    kind="single_pulse",
                    grid=grid,
                    timing=timings[index],
                    trigger_times=trigger_times,
                    correct_mask=plan.presence.copy(),
                    layer0_times=trigger_times[0, :].copy(),
                    fault_model=None,
                    spec=spec,
                )
            )
        return results
