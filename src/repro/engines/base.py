"""Engine protocol, run descriptions and unified run results.

This module defines the three value objects of the execution API:

* :class:`RunSpec` -- a frozen, JSON-round-trippable description of *one*
  simulation run: grid dimensions, timing bounds, layer-0 scenario, fault
  specification, delay-model choice, timeout override, timer policy, pulse
  schedule parameters and the seed-derivation coordinates.  A spec carries
  everything an engine needs to execute the run in any process, and hashes to
  a stable content key (the cache identity used by the campaign layer).

* :class:`RunResult` -- the unified outcome of a run, subsuming the fields of
  the historical ``SinglePulseResult`` / ``MultiPulseResult`` consumed by
  :mod:`repro.analysis` (dense trigger times and correctness mask for
  single-pulse runs; timeouts, source schedule and raw firing records for
  multi-pulse runs) plus free-form per-engine ``metrics``.

* :class:`Engine` -- the protocol every execution backend implements:
  ``name``, ``capabilities`` and ``run(spec, rng) -> RunResult``.  Engines are
  looked up by name through :mod:`repro.engines.registry`.

Seed-derivation contract
------------------------
``RunSpec.rng()`` rebuilds the run's generator from ``(entropy, run_index)``
alone as ``default_rng(SeedSequence(entropy=entropy, spawn_key=(run_index,)))``
-- exactly the stream NumPy produces for child ``run_index`` of
``SeedSequence(entropy).spawn(n)``, and therefore exactly the stream of the
historical ``ExperimentConfig.spawn_rngs(runs, salt)`` loops and of
``campaign.spec.RunTask.rng()``.  Engines draw *only* from that generator, in
a documented order (see the engine modules), so a ``(spec, rng)`` pair fully
determines the result bit-for-bit in any process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple, Union, runtime_checkable

import numpy as np

from repro.adversary.delays import BiasedLinkDelays, MaxSkewDelays
from repro.adversary.schedule import FaultSchedule
from repro.clocksource.scenarios import Scenario, parse_scenario
from repro.core.parameters import TimeoutConfig, TimingConfig
from repro.core.pulse_solver import PulseSolution
from repro.core.topology import HexGrid, NodeId
from repro.faults.models import FaultModel, FaultType
from repro.simulation.links import (
    ConstantDelays,
    DelayModel,
    FreshUniformDelays,
    UniformRandomDelays,
)
from repro.simulation.network import TimerPolicy
from repro.topologies import (
    DEFAULT_TOPOLOGY,
    TopologySpec,
    build_topology,
    canonical_topology,
    validate_topology,
)

__all__ = [
    "KINDS",
    "DELAY_MODELS",
    "DETERMINISTIC_DELAY_MODELS",
    "EXACTNESS",
    "EXACTNESS_PREDICATES",
    "INITIAL_STATES",
    "EngineCapabilities",
    "Engine",
    "RunSpec",
    "RunResult",
    "batch_key",
    "canonical_json",
    "content_key",
    "generic_run_batch",
    "validate_layer0",
]

#: Supported workload kinds.
KINDS = ("single_pulse", "multi_pulse")

#: Delay-model choices a spec can request.  ``"default"`` picks the historical
#: per-kind default (cached per-link draws for single-pulse runs, fresh
#: per-message draws for multi-pulse runs); the explicit names force one
#: model.  ``"max_skew"`` and ``"biased"`` are the delay *adversaries* of
#: :mod:`repro.adversary.delays`, still confined to ``[d-, d+]``.
#: ``"constant"`` fixes every link to ``d+`` (the paper's uniform-delay
#: idealisation) -- the regime in which all exact engines agree bit for bit.
DELAY_MODELS = ("default", "uniform", "fresh", "max_skew", "biased", "constant")

#: Delay models whose per-link delay *values* are pure functions of the spec
#: (no generator draws).  Engines that compute the same fixed point with the
#: same IEEE operations produce bit-identical results exactly when the
#: operand delays match, which only deterministic models can guarantee across
#: engines with different link-traversal orders (the random models draw
#: lazily *in traversal order*, so two engines see different values).
DETERMINISTIC_DELAY_MODELS = ("constant", "max_skew")

#: Initial-state policies of multi-pulse runs.  ``None`` on a spec defers to
#: the historical ``random_initial_states`` flag; ``"adversarial"`` starts
#: every node with all memory flags set (one coherent spurious wave at t=0).
INITIAL_STATES = ("clean", "random", "adversarial")

_PAPER_TIMING = TimingConfig.paper_defaults()


# ----------------------------------------------------------------------
# canonical JSON hashing (shared with the campaign layer)
# ----------------------------------------------------------------------
def canonical_json(payload: Any) -> str:
    """A canonical (sorted-keys, compact) JSON encoding used for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(payload: Any, length: int = 32) -> str:
    """Content-address of a JSON-serializable payload (truncated SHA-256)."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return digest[:length]


# ----------------------------------------------------------------------
# canonicalisation helpers (shared with campaign.spec)
# ----------------------------------------------------------------------
def canonical_scenario(value: Union[Scenario, str]) -> str:
    """Canonical string value of a scenario or one of its aliases."""
    return parse_scenario(value).value


def canonical_fault_type(value: Union[FaultType, str]) -> str:
    """Canonical string value of a fault type."""
    if isinstance(value, FaultType):
        return value.value
    return FaultType(str(value)).value


def canonical_timer_policy(value: Union[TimerPolicy, str]) -> str:
    """Canonical string value of a timer policy."""
    if isinstance(value, TimerPolicy):
        return value.value
    return TimerPolicy(str(value)).value


def canonical_positions(
    value: Optional[Sequence[NodeId]],
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Node positions as a tuple of ``(layer, column)`` int pairs."""
    if value is None:
        return None
    return tuple((int(layer), int(column)) for layer, column in value)


def canonical_timeouts(
    value: Optional[Union[TimeoutConfig, Sequence[float]]]
) -> Optional[Tuple[float, ...]]:
    """A timeout override as the canonical 6-tuple (or ``None``)."""
    if value is None:
        return None
    if isinstance(value, TimeoutConfig):
        return (
            value.t_link_min,
            value.t_link_max,
            value.t_sleep_min,
            value.t_sleep_max,
            value.pulse_separation,
            value.stable_skew,
        )
    items = tuple(float(item) for item in value)
    if len(items) != 6:
        raise ValueError(f"explicit timeouts need 6 values, got {len(items)}")
    return items


def timeouts_from_tuple(value: Optional[Sequence[float]]) -> Optional[TimeoutConfig]:
    """Rebuild a :class:`TimeoutConfig` from its canonical 6-tuple (or ``None``)."""
    if value is None:
        return None
    t_link_min, t_link_max, t_sleep_min, t_sleep_max, separation, sigma = value
    return TimeoutConfig(
        t_link_min=t_link_min,
        t_link_max=t_link_max,
        t_sleep_min=t_sleep_min,
        t_sleep_max=t_sleep_max,
        pulse_separation=separation,
        stable_skew=sigma,
    )


def validate_layer0(grid: HexGrid, layer0_times: Sequence[float]) -> np.ndarray:
    """Coerce and shape-check the layer-0 firing times of a single-pulse run."""
    layer0 = np.asarray(layer0_times, dtype=float)
    if layer0.shape != (grid.width,):
        raise ValueError(
            f"layer0_times must have shape ({grid.width},) -- one firing time per "
            f"layer-0 clock source of this width-{grid.width} grid -- but got shape "
            f"{layer0.shape}; repro.clocksource.scenarios.scenario_layer0_times("
            f"scenario, {grid.width}, timing) produces valid inputs"
        )
    return layer0


# ----------------------------------------------------------------------
# capabilities & protocol
# ----------------------------------------------------------------------
#: The exactness levels an engine can promise (see
#: :attr:`EngineCapabilities.exactness`).
EXACTNESS = ("bit_identical", "tolerance")


def _spec_is_fault_free(spec: "RunSpec") -> bool:
    return spec.num_faults == 0 and spec.fault_schedule is None


def _spec_has_deterministic_delays(spec: "RunSpec") -> bool:
    return spec.effective_delay_model() in DETERMINISTIC_DELAY_MODELS


def _spec_has_constant_delays(spec: "RunSpec") -> bool:
    return spec.effective_delay_model() == "constant"


#: The named predicates an exactness contract can condition on
#: (:attr:`EngineCapabilities.exact_when`).  Each maps a spec to whether the
#: regime holds for it:
#:
#: * ``"fault_free"`` -- no static faults and no dynamic fault schedule;
#: * ``"deterministic_delays"`` -- the effective delay model draws nothing
#:   (see :data:`DETERMINISTIC_DELAY_MODELS`), so every engine sees the same
#:   per-link delay values;
#: * ``"constant_delays"`` -- the paper's uniform-delay idealisation
#:   (every link ``d+``), a strict subset of ``"deterministic_delays"``.
EXACTNESS_PREDICATES: Dict[str, Any] = {
    "fault_free": _spec_is_fault_free,
    "deterministic_delays": _spec_has_deterministic_delays,
    "constant_delays": _spec_has_constant_delays,
}


@dataclass(frozen=True)
class EngineCapabilities:
    """What an execution engine supports.

    Attributes
    ----------
    kinds:
        Workload kinds the engine can run (subset of :data:`KINDS`).
    supports_faults:
        Whether the engine honours a spec's fault injection parameters.
    supports_explicit_inputs:
        Whether the engine also exposes the imperative entry points taking
        caller-supplied arrays (``single_pulse`` / ``multi_pulse``), which is
        what the ``simulate_single_pulse`` / ``simulate_multi_pulse`` shims
        need.  Defaults to ``False`` because the :class:`Engine` protocol
        only requires ``run``; engines that implement the extra methods opt
        in explicitly.
    supports_fault_schedules:
        Whether the engine executes the *dynamic* fault schedules of
        :mod:`repro.adversary` (timed inject/heal/crash/flip events).  Only
        the discrete-event backend can -- the analytic solver and the
        clock-tree baseline have no time axis to mutate -- so they reject
        schedule-carrying specs early via :func:`require_schedule_support`.
    supported_topologies:
        Topology *families* (registry names of :mod:`repro.topologies`) the
        engine can execute, or ``("*",)`` for "any registered family".
        Defaults to the paper's cylinder only, so protocol-minimal engines
        stay honest; the hex engines declare the wildcard and the clock-tree
        baseline stays cylinder-bound (its H-tree replaces the cylinder die).
        Specs naming an unsupported topology fail early via
        :func:`require_topology_support`, and :class:`SweepSpec` rejects the
        pairing at build time.
    exactness:
        The engine's *exactness contract* against the reference semantics
        (the analytic solver's fixed point), one of :data:`EXACTNESS`:

        * ``"bit_identical"`` -- results are bitwise equal to the reference
          whenever every :attr:`exact_when` predicate holds on the spec (an
          empty ``exact_when`` claims it unconditionally).  Outside that
          regime the engine falls back to the :attr:`tolerance` claim, if
          one is declared.
        * ``"tolerance"`` -- no bitwise claim; results agree with the
          reference only within :attr:`tolerance` (``None`` disclaims any
          quantitative agreement, e.g. for baselines computing a different
          physical model).

        Consumers -- the agreement tests, ``SweepSpec`` build-time checks and
        ``hex-repro engines`` -- read the contract from here instead of
        switching on engine names.
    tolerance:
        Agreement bound as a multiplier on the per-spec *delay envelope*
        ``[T_lo(v), T_hi(v)]`` (the fixed points under all-``d-`` and
        all-``d+`` link delays; see ``repro.engines.array.delay_envelope``).
        ``1.0`` means every fault-free result lies inside the envelope
        pointwise; ``None`` means no quantitative claim.
    exact_when:
        Predicate names from :data:`EXACTNESS_PREDICATES` gating the
        ``"bit_identical"`` claim.  Test :meth:`is_exact_for` against a spec.
    description:
        One-line human-readable summary (shown by ``hex-repro engines``).
    """

    kinds: Tuple[str, ...]
    supports_faults: bool = True
    supports_explicit_inputs: bool = False
    supports_fault_schedules: bool = False
    supported_topologies: Tuple[str, ...] = (DEFAULT_TOPOLOGY,)
    exactness: str = "tolerance"
    tolerance: Optional[float] = None
    exact_when: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in KINDS:
                raise ValueError(f"unknown kind {kind!r}; expected one of {KINDS}")
        if not self.supported_topologies:
            raise ValueError("supported_topologies must name at least one family (or '*')")
        if self.exactness not in EXACTNESS:
            raise ValueError(
                f"unknown exactness {self.exactness!r}; expected one of {EXACTNESS}"
            )
        for predicate in self.exact_when:
            if predicate not in EXACTNESS_PREDICATES:
                raise ValueError(
                    f"unknown exact_when predicate {predicate!r}; expected names "
                    f"from {tuple(sorted(EXACTNESS_PREDICATES))}"
                )
        if self.exact_when and self.exactness != "bit_identical":
            raise ValueError(
                "exact_when predicates only gate a 'bit_identical' contract; "
                f"got exactness={self.exactness!r}"
            )
        if self.tolerance is not None and self.tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {self.tolerance}")

    def supports_topology(self, family: str) -> bool:
        """Whether the engine can execute grids of a topology family."""
        return "*" in self.supported_topologies or family in self.supported_topologies

    def is_exact_for(self, spec: "RunSpec") -> bool:
        """Whether the contract claims bit-identical results for ``spec``."""
        if self.exactness != "bit_identical":
            return False
        return all(
            EXACTNESS_PREDICATES[predicate](spec) for predicate in self.exact_when
        )

    def exactness_summary(self) -> str:
        """One phrase describing the exactness contract."""
        if self.exactness == "bit_identical":
            if not self.exact_when:
                return "bit-identical"
            return "bit-identical when " + "+".join(self.exact_when)
        if self.tolerance is None:
            return "no agreement claim"
        return f"within {self.tolerance:g}x delay envelope"

    def summary(self) -> str:
        """Compact capability listing, e.g. ``"single_pulse, multi_pulse; faults"``."""
        parts = [", ".join(self.kinds)]
        parts.append("faults" if self.supports_faults else "no faults")
        if self.supports_fault_schedules:
            parts.append("fault-schedules")
        if "*" in self.supported_topologies:
            parts.append("all topologies")
        elif self.supported_topologies != (DEFAULT_TOPOLOGY,):
            parts.append("topologies: " + ", ".join(self.supported_topologies))
        parts.append(self.exactness_summary())
        if not self.supports_explicit_inputs:
            parts.append("spec-only")
        return "; ".join(parts)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable capability record (``hex-repro engines --json``)."""
        return {
            "kinds": list(self.kinds),
            "supports_faults": self.supports_faults,
            "supports_explicit_inputs": self.supports_explicit_inputs,
            "supports_fault_schedules": self.supports_fault_schedules,
            "supported_topologies": list(self.supported_topologies),
            "exactness": self.exactness,
            "tolerance": self.tolerance,
            "exact_when": list(self.exact_when),
            "description": self.description,
        }


@runtime_checkable
class Engine(Protocol):
    """The execution-backend protocol.

    An engine turns a :class:`RunSpec` (plus an optional explicit generator)
    into a :class:`RunResult`.  Implementations must draw randomness only from
    the provided generator and in a stable, documented order, so that
    ``(spec, rng)`` determines the result bit-for-bit.
    """

    name: str
    capabilities: EngineCapabilities

    def run(
        self, spec: "RunSpec", rng: Optional[np.random.Generator] = None
    ) -> "RunResult":
        """Execute one run described by ``spec``.

        When ``rng`` is ``None`` the engine derives the generator from the
        spec's seed coordinates via :meth:`RunSpec.rng`.
        """
        ...

    def run_batch(self, specs: Sequence["RunSpec"]) -> List["RunResult"]:
        """Execute several runs, amortizing spec-independent setup.

        The contract is strict: ``run_batch(specs)`` must return results
        bit-identical to ``[run(spec) for spec in specs]`` -- batching is a
        wall-clock optimisation, never a semantics change.  Each spec still
        derives its own generator from its seed coordinates, so the batch
        result is independent of how specs are grouped.  Engines without a
        native batch implementation delegate to :func:`generic_run_batch`.
        """
        ...


def generic_run_batch(engine: Engine, specs: Sequence["RunSpec"]) -> List["RunResult"]:
    """The reference ``run_batch``: a plain per-spec loop over ``engine.run``.

    Engines whose setup cannot be shared across specs (or not profitably so)
    use this as their ``run_batch`` body; it is also the baseline the batch
    benchmarks and the bit-identity tests compare native implementations
    against.
    """
    return [engine.run(spec) for spec in specs]


def require_kind(engine: Engine, spec: "RunSpec") -> None:
    """Raise a clean error when ``engine`` cannot run ``spec.kind``."""
    if spec.kind not in engine.capabilities.kinds:
        raise ValueError(
            f"engine {engine.name!r} does not support kind {spec.kind!r} "
            f"(supported kinds: {', '.join(engine.capabilities.kinds)})"
        )


def require_schedule_support(engine: Engine, spec: "RunSpec") -> None:
    """Raise a clean capability error for schedule specs on static engines."""
    if spec.fault_schedule is not None and not engine.capabilities.supports_fault_schedules:
        label = spec.fault_schedule.label or spec.fault_schedule.key(8)
        raise ValueError(
            f"engine {engine.name!r} cannot execute dynamic fault schedules "
            f"(spec carries schedule {label!r}); time-varying adversaries need "
            "the discrete-event backend -- run the spec with engine 'des', or "
            "drop fault_schedule for a static-fault run"
        )


def require_topology_support(engine: Engine, spec: "RunSpec") -> None:
    """Raise a clean capability error for unsupported topology families."""
    family = spec.topology_family()
    if not engine.capabilities.supports_topology(family):
        supported = ", ".join(engine.capabilities.supported_topologies)
        raise ValueError(
            f"engine {engine.name!r} does not support topology {spec.topology!r} "
            f"(family {family!r}; supported: {supported}); run the spec on a "
            "hex engine ('solver'/'des'), or keep this engine on the cylinder"
        )


def require_exactness(engine: Engine, spec: "RunSpec", exactness: str) -> None:
    """Raise a clean contract error when ``engine`` cannot promise ``exactness``.

    The validation counterpart of the exactness contract: callers that need a
    guaranteed agreement level (e.g. a campaign cell declaring
    ``require_exactness="bit_identical"``) check it here *before* running,
    with an error that names the unmet predicates instead of surfacing as a
    silent numeric mismatch downstream.
    """
    if exactness not in EXACTNESS:
        raise ValueError(
            f"unknown exactness requirement {exactness!r}; expected one of {EXACTNESS}"
        )
    capabilities = engine.capabilities
    if exactness == "bit_identical":
        if capabilities.is_exact_for(spec):
            return
        if capabilities.exactness != "bit_identical":
            raise ValueError(
                f"engine {engine.name!r} declares exactness "
                f"{capabilities.exactness!r} and cannot promise bit-identical "
                "results; use an engine whose capabilities claim 'bit_identical'"
            )
        unmet = tuple(
            predicate
            for predicate in capabilities.exact_when
            if not EXACTNESS_PREDICATES[predicate](spec)
        )
        raise ValueError(
            f"engine {engine.name!r} is only bit-identical when "
            f"{'+'.join(capabilities.exact_when)}; the spec violates "
            f"{'+'.join(unmet)} (delay_model={spec.effective_delay_model()!r}, "
            f"num_faults={spec.num_faults}); use a deterministic delay model "
            f"from {DETERMINISTIC_DELAY_MODELS} and a fault-free spec, or drop "
            "the bit_identical requirement"
        )
    if capabilities.exactness == "tolerance" and capabilities.tolerance is None:
        raise ValueError(
            f"engine {engine.name!r} makes no quantitative agreement claim "
            "(tolerance=None); it cannot satisfy a 'tolerance' exactness "
            "requirement"
        )


def batch_key(spec: "RunSpec") -> Tuple[str, int, int]:
    """The grid-sharing key of ``Engine.run_batch`` groupings.

    Two specs with equal keys build equal grids (same topology spec string
    and dimensions), so batch implementations may construct the grid -- and
    any grid-derived plan -- once per key.  Shared by every engine so the
    grouping rule cannot drift between implementations.
    """
    return (spec.topology, spec.layers, spec.width)


# ----------------------------------------------------------------------
# run description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """A frozen, JSON-round-trippable description of one simulation run.

    Attributes
    ----------
    kind:
        ``"single_pulse"`` (one wave, dense trigger times) or
        ``"multi_pulse"`` (stabilization workload, raw firing records).
    layers, width:
        Grid dimensions ``L`` and ``W``.
    d_min, d_max, theta:
        The :class:`~repro.core.parameters.TimingConfig` scalars (defaults are
        the paper's).
    scenario:
        Layer-0 scenario (canonical string value; aliases accepted).
    num_faults, fault_type, fixed_fault_positions:
        Fault specification.  ``fault_type=None`` with ``num_faults > 0``
        injects nothing (the historical ``build_fault_model`` contract).
    delay_model:
        One of :data:`DELAY_MODELS`.
    timeouts:
        Optional explicit timeout override as the canonical 6-tuple
        ``(T-_link, T+_link, T-_sleep, T+_sleep, S, sigma)``.
    timer_policy:
        Timer-draw policy of the DES engine.
    num_pulses, random_initial_states, run_slack:
        Multi-pulse schedule parameters.
    fault_schedule:
        Optional dynamic :class:`~repro.adversary.schedule.FaultSchedule`
        (accepted as an instance or its JSON dict).  Only the DES engine can
        execute schedules; others fail early with a capability error.
        Omitted from the canonical JSON when ``None``, so schedule-free specs
        keep their historical content keys byte for byte.
    initial_states:
        Optional initial-state policy for multi-pulse runs, one of
        :data:`INITIAL_STATES`; ``None`` defers to ``random_initial_states``.
        Also omitted from the canonical JSON when ``None``.
    entropy, run_index:
        Seed-derivation coordinates (see the module docstring).  ``entropy``
        is the campaign-level ``seed + salt``; ``None`` means "unseeded".
    topology:
        Canonical topology spec string (``"cylinder"`` / ``"torus"`` /
        ``"patch"`` / ``"degraded:..."``; see :mod:`repro.topologies`).
        Omitted from the canonical JSON at the cylinder default, so
        topology-free specs keep their historical content keys byte for byte.
    """

    kind: str = "single_pulse"
    layers: int = 50
    width: int = 20
    d_min: float = _PAPER_TIMING.d_min
    d_max: float = _PAPER_TIMING.d_max
    theta: float = _PAPER_TIMING.theta
    scenario: str = Scenario.ZERO.value
    num_faults: int = 0
    fault_type: Optional[str] = None
    fixed_fault_positions: Optional[Tuple[Tuple[int, int], ...]] = None
    delay_model: str = "default"
    timeouts: Optional[Tuple[float, ...]] = None
    timer_policy: str = TimerPolicy.UNIFORM.value
    num_pulses: int = 1
    random_initial_states: bool = True
    run_slack: float = 0.0
    entropy: Optional[int] = None
    run_index: int = 0
    fault_schedule: Optional[FaultSchedule] = None
    initial_states: Optional[str] = None
    topology: str = DEFAULT_TOPOLOGY

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        coerce(self, "topology", canonical_topology(self.topology))
        coerce(self, "scenario", canonical_scenario(self.scenario))
        if self.fault_type is not None:
            coerce(self, "fault_type", canonical_fault_type(self.fault_type))
        coerce(self, "timer_policy", canonical_timer_policy(self.timer_policy))
        coerce(self, "fixed_fault_positions", canonical_positions(self.fixed_fault_positions))
        coerce(self, "timeouts", canonical_timeouts(self.timeouts))
        if isinstance(self.fault_schedule, dict):
            coerce(self, "fault_schedule", FaultSchedule.from_json_dict(self.fault_schedule))
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}; expected one of {KINDS}")
        if self.delay_model not in DELAY_MODELS:
            raise ValueError(
                f"unknown delay_model {self.delay_model!r}; expected one of {DELAY_MODELS}"
            )
        if self.initial_states is not None:
            if self.initial_states not in INITIAL_STATES:
                raise ValueError(
                    f"unknown initial_states {self.initial_states!r}; expected one of "
                    f"{INITIAL_STATES} (or None for the random_initial_states flag)"
                )
            if self.kind != "multi_pulse":
                raise ValueError(
                    "initial_states is a multi-pulse parameter (arbitrary initial "
                    "states only exist for stabilization workloads); "
                    f"got kind {self.kind!r}"
                )
        if self.layers < 1 or self.width < 3:
            raise ValueError("need layers >= 1 and width >= 3")
        # Family-specific lower bounds (e.g. the torus needs L >= 2) fail at
        # spec construction with an actionable error, not mid-campaign.
        validate_topology(self.topology, self.layers, self.width)
        if self.num_faults < 0:
            raise ValueError(f"num_faults must be non-negative, got {self.num_faults}")
        if self.num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {self.num_pulses}")

    # ------------------------------------------------------------------
    # reconstruction helpers
    # ------------------------------------------------------------------
    def rng(self) -> np.random.Generator:
        """The run's generator, derived from ``(entropy, run_index)``.

        With ``entropy=None`` a fresh unseeded generator is returned (the
        run is then *not* reproducible -- useful only for exploration).
        """
        if self.entropy is None:
            return np.random.default_rng()  # repro: allow-random[documented escape: entropy=None means exploratory, non-reproducible runs]
        sequence = np.random.SeedSequence(entropy=self.entropy, spawn_key=(self.run_index,))
        return np.random.default_rng(sequence)

    def make_grid(self) -> HexGrid:
        """The run's grid, built from the topology spec (cylinder by default)."""
        return build_topology(self.topology, self.layers, self.width)

    def topology_family(self) -> str:
        """The topology family name of this spec (``"cylinder"``, ...)."""
        return TopologySpec.parse(self.topology).family

    def make_timing(self) -> TimingConfig:
        """The run's timing configuration."""
        return TimingConfig(d_min=self.d_min, d_max=self.d_max, theta=self.theta)

    def make_fault_type(self) -> Optional[FaultType]:
        """The run's fault type (``None`` when no behaviour is to be injected)."""
        return FaultType(self.fault_type) if self.fault_type is not None else None

    def make_timeouts(self) -> Optional[TimeoutConfig]:
        """The explicit timeout override, if any."""
        return timeouts_from_tuple(self.timeouts)

    def make_delays(
        self, timing: TimingConfig, rng: np.random.Generator, kind_default: str
    ) -> Optional[DelayModel]:
        """Instantiate the requested delay model (drawing lazily from ``rng``).

        ``kind_default`` names the model to use for ``delay_model="default"``
        (``"uniform"`` for single-pulse runs, ``"fresh"`` for multi-pulse
        runs -- the historical entry-point defaults).
        """
        choice = self.delay_model if self.delay_model != "default" else kind_default
        if choice == "uniform":
            return UniformRandomDelays(timing, rng)
        if choice == "max_skew":
            return MaxSkewDelays(timing, self.width)
        if choice == "biased":
            return BiasedLinkDelays(timing, rng)
        if choice == "constant":
            return ConstantDelays(timing.d_max)
        return FreshUniformDelays(timing, rng)

    def effective_delay_model(self) -> str:
        """The concrete delay-model name after resolving ``"default"``.

        ``"default"`` resolves per kind exactly as :meth:`make_delays` does:
        ``"uniform"`` for single-pulse runs, ``"fresh"`` for multi-pulse
        runs.  The exactness predicates consult this, so a spec relying on
        the default model is correctly classified as non-deterministic.
        """
        if self.delay_model != "default":
            return self.delay_model
        return "uniform" if self.kind == "single_pulse" else "fresh"

    def effective_initial_states(self) -> str:
        """The multi-pulse initial-state policy with the legacy flag folded in."""
        if self.initial_states is not None:
            return self.initial_states
        return "random" if self.random_initial_states else "clean"

    # ------------------------------------------------------------------
    # serialization & hashing
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (tuples become lists).

        The adversary fields (``fault_schedule``, ``initial_states``) are
        omitted when unset -- and ``topology`` at the cylinder default -- so
        that specs not using those layers serialize -- and hash -- exactly as
        they did before the layers existed.
        """
        payload: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "topology":
                if value == DEFAULT_TOPOLOGY:
                    continue
            elif spec_field.name in ("fault_schedule", "initial_states"):
                if value is None:
                    continue
                if isinstance(value, FaultSchedule):
                    value = value.to_json_dict()
            elif isinstance(value, tuple):
                value = [list(item) if isinstance(item, tuple) else item for item in value]
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_json_dict` (unknown keys rejected)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        kwargs = dict(payload)
        for name in ("fixed_fault_positions", "timeouts"):
            if kwargs.get(name) is not None:
                kwargs[name] = tuple(
                    tuple(item) if isinstance(item, list) else item for item in kwargs[name]
                )
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON encoding of the spec."""
        return canonical_json(self.to_json_dict())

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_json_dict(json.loads(text))

    def key(self) -> str:
        """Content-address of the spec (truncated SHA-256 of the canonical JSON)."""
        return content_key(self.to_json_dict())

    def with_seed(self, entropy: int, run_index: int = 0) -> "RunSpec":
        """A copy with different seed-derivation coordinates."""
        return replace(self, entropy=entropy, run_index=run_index)


# ----------------------------------------------------------------------
# run result
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """The unified outcome of one engine run.

    Single-pulse engines populate ``trigger_times`` / ``correct_mask`` /
    ``layer0_times`` (and, for the analytic solver, ``solution``); multi-pulse
    runs populate ``timeouts`` / ``source_schedule`` / ``firing_times``.
    Either way the result duck-types the historical ``SinglePulseResult`` /
    ``MultiPulseResult`` interfaces that :mod:`repro.analysis` consumes.

    Attributes
    ----------
    engine:
        Name of the engine that produced the result.
    kind:
        ``"single_pulse"`` or ``"multi_pulse"``.
    grid, timing:
        Topology and delay bounds of the run.
    trigger_times:
        Dense trigger-time matrix (``+inf`` never fired, ``nan`` faulty).  For
        the clock-tree engine this is the sink-array arrival matrix, whose
        shape is the tree's ``2^k x 2^k`` sink grid rather than ``(L+1, W)``.
    correct_mask:
        ``True`` where the node is correct.
    layer0_times:
        The layer-0 firing times driving a single-pulse run.
    solution:
        The full analytic :class:`~repro.core.pulse_solver.PulseSolution`
        (solver engine only).
    fault_model:
        The fault model of the run (``None`` when fault-free).
    timeouts:
        Algorithm timeouts of a DES run.
    source_schedule:
        ``(num_pulses, W)`` layer-0 generation times of a multi-pulse run.
    firing_times:
        Mapping node -> sorted firing times of a multi-pulse run.
    spec:
        The spec the run was built from (``None`` for the imperative
        explicit-array entry points).
    metrics:
        Free-form per-engine scalars (e.g. the clock-tree skew report).
    """

    engine: str
    kind: str
    grid: HexGrid
    timing: TimingConfig
    trigger_times: Optional[np.ndarray] = None
    correct_mask: Optional[np.ndarray] = None
    layer0_times: Optional[np.ndarray] = None
    solution: Optional[PulseSolution] = None
    fault_model: Optional[FaultModel] = None
    timeouts: Optional[TimeoutConfig] = None
    source_schedule: Optional[np.ndarray] = None
    firing_times: Optional[Dict[NodeId, List[float]]] = None
    spec: Optional[RunSpec] = None
    metrics: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # single-pulse accessors (SinglePulseResult interface)
    # ------------------------------------------------------------------
    def trigger_time(self, node: NodeId) -> float:
        """Firing time of one node (single-pulse runs on the hex grid)."""
        if self.trigger_times is None:
            raise ValueError("run carries no dense trigger times")
        layer, column = self.grid.validate_node(node)
        return float(self.trigger_times[layer, column])

    def all_correct_triggered(self) -> bool:
        """Whether every correct forwarding node fired (single-pulse runs)."""
        if self.trigger_times is None or self.correct_mask is None:
            raise ValueError("run carries no dense trigger times")
        times = self.trigger_times[1:, :]
        mask = self.correct_mask[1:, :]
        return bool(np.all(np.isfinite(times[mask])))

    # ------------------------------------------------------------------
    # multi-pulse accessors (MultiPulseResult interface)
    # ------------------------------------------------------------------
    @property
    def num_pulses(self) -> int:
        """Number of pulses the layer-0 sources generated (multi-pulse runs)."""
        if self.source_schedule is None:
            raise ValueError("run carries no source schedule")
        return int(self.source_schedule.shape[0])

    def firings_of(self, node: NodeId) -> List[float]:
        """All firing times of one node (empty for faulty nodes)."""
        if self.firing_times is None:
            raise ValueError("run carries no firing records")
        return self.firing_times.get(self.grid.validate_node(node), [])

    def total_firings(self) -> int:
        """Total number of firings across all nodes (multi-pulse runs)."""
        if self.firing_times is None:
            raise ValueError("run carries no firing records")
        return sum(len(times) for times in self.firing_times.values())

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def analysis_mask(self) -> Optional[np.ndarray]:
        """The correctness mask in the form the pooled statistics expect.

        ``None`` for fault-free runs (matching the historical convention of
        passing no mask), the fault model's correctness mask otherwise.
        """
        if self.fault_model is None:
            return None
        return self.fault_model.correctness_mask()
