"""The analytic single-pulse solver as an execution engine.

Draw order (the reproducibility contract, identical to the historical
``execute_task`` single-pulse body): layer-0 firing times, then fault
placement and behaviour, then the per-link delays -- which
:class:`~repro.simulation.links.UniformRandomDelays` draws lazily inside the
solver's own link traversal, exactly as before.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.clocksource.scenarios import scenario_layer0_times
from repro.core.parameters import TimeoutConfig, TimingConfig
from repro.core.pulse_solver import solve_single_pulse, solve_single_pulse_planned, solver_plan
from repro.core.topology import HexGrid
from repro.engines.base import (
    EngineCapabilities,
    RunResult,
    RunSpec,
    batch_key,
    require_kind,
    require_schedule_support,
    require_topology_support,
    validate_layer0,
)
from repro.faults.models import FaultModel
from repro.faults.placement import build_fault_model
from repro.simulation.links import DelayModel, UniformRandomDelays
from repro.simulation.network import TimerPolicy

__all__ = ["SolverEngine"]


def _record_solver_work(solution) -> None:
    """Record one solution's deterministic work counters (no-op when off).

    ``solver.heap_pushes`` / ``solver.frontier_advances`` /
    ``solver.messages_delivered`` are pure functions of topology, delays and
    faults (see :attr:`~repro.core.pulse_solver.PulseSolution.work`), so they
    diagnose perf regressions independent of wall clock and are identical
    whether a sweep ran serially or across pool workers.
    """
    if not obs.metrics_enabled():
        return
    for name, value in solution.work.items():
        obs.inc(f"solver.{name}", value)


class SolverEngine:
    """The paper's single-pulse semantics: the analytic fixed-point solver.

    Fast and exact under constraints (C1)/(C2); the reference backend for the
    skew experiments (Tables 1-2, Figs. 8-16).
    """

    name = "solver"
    capabilities = EngineCapabilities(
        kinds=("single_pulse",),
        supports_faults=True,
        supports_explicit_inputs=True,
        supported_topologies=("*",),
        exactness="bit_identical",
        description="analytic single-pulse fixed-point solver (exact under (C1)/(C2))",
    )

    def run(self, spec: RunSpec, rng: Optional[np.random.Generator] = None) -> RunResult:
        """Execute a declarative single-pulse run (scenario-driven draws)."""
        with obs.span("engine.run", engine=self.name, kind=spec.kind):
            obs.inc("engine.solver.runs")
            return self._run(spec, rng)

    def _run(self, spec: RunSpec, rng: Optional[np.random.Generator] = None) -> RunResult:
        require_kind(self, spec)
        require_schedule_support(self, spec)
        require_topology_support(self, spec)
        generator = rng if rng is not None else spec.rng()
        grid = spec.make_grid()
        timing = spec.make_timing()
        layer0 = scenario_layer0_times(spec.scenario, grid.width, timing, rng=generator)
        fault_model = build_fault_model(
            grid,
            spec.num_faults,
            spec.make_fault_type(),
            generator,
            fixed_positions=spec.fixed_fault_positions,
        )
        result = self.single_pulse(
            grid,
            timing,
            layer0,
            rng=generator,
            fault_model=fault_model,
            delays=spec.make_delays(timing, generator, kind_default="uniform"),
        )
        result.spec = spec
        return result

    def run_batch(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute several single-pulse runs, sharing all RNG-free setup.

        Bit-identical to ``[run(spec) for spec in specs]`` (pinned by the
        test suite), but substantially faster for the common sweep shape --
        many cells on the same grid:

        * each distinct ``(topology, layers, width)`` builds its grid (and
          the neighbour tables that dominate construction) exactly once;
        * fault-free specs run through the plan-compiled flat-array sweep
          (:func:`~repro.core.pulse_solver.solve_single_pulse_planned`),
          whose :class:`~repro.core.pulse_solver.SolverPlan` is likewise
          shared per grid.

        Grid construction and plan compilation consume no randomness, so the
        sharing cannot perturb seeded draws; specs with faults keep the
        reference sweep (the fault machinery is draw-order-sensitive) and
        still benefit from the shared grid.
        """
        with obs.span("engine.run_batch", engine=self.name, size=len(specs)):
            obs.inc("engine.solver.runs", len(specs))
            return self._run_batch(specs)

    def _run_batch(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        grids: Dict[Tuple[str, int, int], HexGrid] = {}
        results: List[RunResult] = []
        for spec in specs:
            require_kind(self, spec)
            require_schedule_support(self, spec)
            require_topology_support(self, spec)
            grid_key = batch_key(spec)
            grid = grids.get(grid_key)
            if grid is None:
                grid = spec.make_grid()
                grids[grid_key] = grid
            generator = spec.rng()
            timing = spec.make_timing()
            layer0 = scenario_layer0_times(spec.scenario, grid.width, timing, rng=generator)
            fault_model = build_fault_model(
                grid,
                spec.num_faults,
                spec.make_fault_type(),
                generator,
                fixed_positions=spec.fixed_fault_positions,
            )
            delays = spec.make_delays(timing, generator, kind_default="uniform")
            layer0 = validate_layer0(grid, layer0)
            if fault_model is None:
                solution = solve_single_pulse_planned(
                    grid, layer0, delays, plan=solver_plan(grid)
                )
            else:
                solution = solve_single_pulse(grid, layer0, delays, fault_model=fault_model)
            _record_solver_work(solution)
            results.append(
                RunResult(
                    engine=self.name,
                    kind="single_pulse",
                    grid=grid,
                    timing=timing,
                    trigger_times=solution.trigger_times,
                    correct_mask=solution.correct_mask,
                    layer0_times=solution.layer0_times,
                    solution=solution,
                    fault_model=fault_model,
                    spec=spec,
                )
            )
        return results

    def single_pulse(
        self,
        grid: HexGrid,
        timing: TimingConfig,
        layer0_times: Sequence[float],
        *,
        rng: np.random.Generator,
        fault_model: Optional[FaultModel] = None,
        delays: Optional[DelayModel] = None,
        timeouts: Optional[TimeoutConfig] = None,
        timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
    ) -> RunResult:
        """Propagate one pulse wave with explicit inputs.

        ``timeouts`` and ``timer_policy`` are accepted for interface parity
        with the DES engine and ignored (the analytic solver has neither).
        """
        layer0 = validate_layer0(grid, layer0_times)
        if delays is None:
            delays = UniformRandomDelays(timing, rng)
        solution = solve_single_pulse(grid, layer0, delays, fault_model=fault_model)
        _record_solver_work(solution)
        return RunResult(
            engine=self.name,
            kind="single_pulse",
            grid=grid,
            timing=timing,
            trigger_times=solution.trigger_times,
            correct_mask=solution.correct_mask,
            layer0_times=solution.layer0_times,
            solution=solution,
            fault_model=fault_model,
        )
