"""The engine registry: name -> execution backend.

Engines register themselves once (the built-ins at package import time) and
are looked up by name everywhere an execution semantics is chosen -- the
``simulate_single_pulse`` / ``simulate_multi_pulse`` shims, the campaign
executor and the CLI all dispatch through :func:`get_engine`, so an unknown
engine name fails early with a message listing the registered ones instead of
deep inside a run body.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.engines.base import Engine

__all__ = ["register_engine", "unregister_engine", "get_engine", "available_engines"]

_REGISTRY: Dict[str, Engine] = {}


def register_engine(engine: Engine, replace: bool = False) -> Engine:
    """Register an execution backend under its ``name``.

    Parameters
    ----------
    engine:
        The backend; must provide ``name``, ``capabilities`` and ``run``.
    replace:
        Allow overwriting an existing registration (tests and experimental
        backends); by default a duplicate name is an error.

    Returns
    -------
    Engine
        The registered engine (so the call can be used as a decorator-ish
        one-liner on an instance).
    """
    for attribute in ("name", "capabilities", "run"):
        if not hasattr(engine, attribute):
            raise TypeError(
                f"engine {engine!r} does not implement the Engine protocol "
                f"(missing {attribute!r})"
            )
    name = engine.name
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"engine {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove an engine registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> Engine:
    """Look up an execution backend by name.

    Raises
    ------
    ValueError
        With the list of registered engines when ``name`` is unknown -- the
        single early validation point for every ``engine=`` / ``--engine``
        value in the code base.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available engines: "
            f"{', '.join(available_engines()) or '(none registered)'}"
        ) from None


def available_engines() -> Tuple[str, ...]:
    """The registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))
