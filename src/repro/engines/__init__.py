"""Unified execution engines: one protocol, one run description, one registry.

The paper evaluates HEX under two interchangeable execution semantics -- the
analytic single-pulse solver and the ModelSim-style discrete-event testbed --
and compares the result against an H-tree clock-tree baseline.  This package
makes that choice a first-class object instead of a stringly-typed keyword:

* :class:`~repro.engines.base.Engine` -- the backend protocol
  (``name``, ``capabilities``, ``run(spec, rng) -> RunResult``);
* :class:`~repro.engines.base.RunSpec` -- a frozen, JSON-round-trippable
  description of one run (grid, timing, scenario, faults, delay model,
  timeouts, timer policy, pulse schedule, seed-derivation coordinates);
* :class:`~repro.engines.base.RunResult` -- the unified result, subsuming the
  single-pulse and multi-pulse fields the analysis layer consumes;
* :func:`~repro.engines.registry.register_engine` /
  :func:`~repro.engines.registry.get_engine` /
  :func:`~repro.engines.registry.available_engines` -- the registry every
  dispatch site (simulation shims, campaign executor, CLI) goes through.

Built-in engines: ``solver`` (:class:`SolverEngine`), ``des``
(:class:`DesEngine`), ``clocktree`` (:class:`ClockTreeEngine`) and ``array``
(:class:`ArrayEngine`, the dense numpy-frontier fast path for very large
fault-free grids).  Each declares an *exactness contract* in its
capabilities (:attr:`~repro.engines.base.EngineCapabilities.exactness`), so
callers and tests derive agreement expectations from the contract instead of
switching on engine names.

>>> from repro.engines import RunSpec, get_engine
>>> spec = RunSpec(kind="single_pulse", layers=10, width=8, scenario="iii",
...                entropy=2013, run_index=0)
>>> result = get_engine("solver").run(spec)
>>> result.all_correct_triggered()
True
>>> get_engine("array").capabilities.exactness
'bit_identical'
"""

from repro.engines.array import ArrayEngine
from repro.engines.base import (
    DELAY_MODELS,
    DETERMINISTIC_DELAY_MODELS,
    EXACTNESS,
    KINDS,
    Engine,
    EngineCapabilities,
    RunResult,
    RunSpec,
    batch_key,
    canonical_json,
    content_key,
    generic_run_batch,
)
from repro.engines.clocktree import ClockTreeEngine
from repro.engines.des import DesEngine
from repro.engines.registry import available_engines, get_engine, register_engine, unregister_engine
from repro.engines.solver import SolverEngine

__all__ = [
    "KINDS",
    "DELAY_MODELS",
    "DETERMINISTIC_DELAY_MODELS",
    "EXACTNESS",
    "Engine",
    "EngineCapabilities",
    "RunSpec",
    "RunResult",
    "batch_key",
    "canonical_json",
    "content_key",
    "generic_run_batch",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
    "SolverEngine",
    "DesEngine",
    "ClockTreeEngine",
    "ArrayEngine",
]

# Built-in registrations.  ``replace=True`` keeps repeated imports (e.g. a
# reloaded module in an interactive session) idempotent.
register_engine(SolverEngine(), replace=True)
register_engine(DesEngine(), replace=True)
register_engine(ClockTreeEngine(), replace=True)
register_engine(ArrayEngine(), replace=True)
