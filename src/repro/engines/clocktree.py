"""The H-tree clock-tree baseline as an execution engine.

Lets ``hex-repro sweep --engine solver,des,clocktree`` run the paper's title
comparison inside one campaign: for a spec describing an ``L x W`` HEX grid,
the engine builds an H-tree serving at least as many sinks as the grid has
nodes (same die, same technology -- the per-unit wire delay is ``d+`` for a
wire of HEX-link length and the relative delay variation is ``epsilon / d+``,
as in :func:`repro.clocktree.comparison.compare_scaling`), samples one set of
element delays from the run's generator and reports the sink arrival times as
the run's trigger matrix.

The trigger matrix is laid out on the tree's ``2^k x 2^k`` physical sink
array (rows play the role of layers), so the campaign's pooled skew
statistics measure *physically adjacent* sink skews -- the quantity the
paper's introduction compares against HEX's neighbour skew.  Tree-specific
scalars (global skew, neighbour skews, depth) are reported in
:attr:`~repro.engines.base.RunResult.metrics`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.clocktree.delays import TreeDelayConfig, sample_element_delays
from repro.clocktree.htree import build_htree
from repro.clocktree.simulation import sink_arrival_times, tree_skew_report
from repro.engines.base import (
    EngineCapabilities,
    RunResult,
    RunSpec,
    generic_run_batch,
    require_kind,
    require_schedule_support,
    require_topology_support,
)

__all__ = ["ClockTreeEngine"]


class ClockTreeEngine:
    """Clock-tree baseline: one delay sample of an H-tree covering the grid."""

    name = "clocktree"
    capabilities = EngineCapabilities(
        kinds=("single_pulse",),
        supports_faults=False,
        supports_explicit_inputs=False,
        supported_topologies=("cylinder",),
        exactness="tolerance",
        tolerance=None,
        description="H-tree clock-tree baseline (sink arrival times on the same die)",
    )

    def run_batch(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Per-spec loop; one tree delay sample dominates each run anyway."""
        with obs.span("engine.run_batch", engine=self.name, size=len(specs)):
            return generic_run_batch(self, specs)

    @staticmethod
    def tree_levels(num_endpoints: int) -> int:
        """Smallest H-tree recursion depth with at least ``num_endpoints`` sinks."""
        return max(1, math.ceil(math.log(max(1, num_endpoints), 4)))

    def run(self, spec: RunSpec, rng: Optional[np.random.Generator] = None) -> RunResult:
        with obs.span("engine.run", engine=self.name, kind=spec.kind):
            obs.inc("engine.clocktree.runs")
            return self._run(spec, rng)

    def _run(self, spec: RunSpec, rng: Optional[np.random.Generator] = None) -> RunResult:
        require_kind(self, spec)
        require_schedule_support(self, spec)
        require_topology_support(self, spec)
        if spec.num_faults:
            raise ValueError(
                f"engine {self.name!r} does not support fault injection "
                f"(spec requests num_faults={spec.num_faults}); see "
                "repro.clocktree.faults.robustness_report for the structural "
                "tree-fault analysis"
            )
        generator = rng if rng is not None else spec.rng()
        grid = spec.make_grid()
        timing = spec.make_timing()

        levels = self.tree_levels(grid.num_nodes)
        tree = build_htree(levels, span=float(2**levels))
        config = TreeDelayConfig(
            wire_delay_per_unit=timing.d_max,
            buffer_delay=0.2 * timing.d_max,
            relative_variation=timing.epsilon / timing.d_max,
        )
        element_delays = sample_element_delays(tree, config, rng=generator)
        arrivals = sink_arrival_times(tree, element_delays)
        if obs.metrics_enabled():
            # Deterministic work counters: pure functions of the tree topology,
            # comparable across serial and parallel campaigns.
            obs.inc("clocktree.elements_sampled", len(element_delays))
            obs.inc("clocktree.sinks_evaluated", tree.num_sinks)

        sink_grid = tree.sink_grid()
        side = 2**levels
        trigger_times = np.full((side, side), np.inf, dtype=float)
        for (row, column), index in sink_grid.items():
            trigger_times[row, column] = arrivals[index]
        report = tree_skew_report(tree, config, element_delays=element_delays)

        return RunResult(
            engine=self.name,
            kind="single_pulse",
            grid=grid,
            timing=timing,
            trigger_times=trigger_times,
            correct_mask=np.ones_like(trigger_times, dtype=bool),
            layer0_times=None,
            fault_model=None,
            spec=spec,
            metrics={
                "tree_levels": float(levels),
                "tree_num_sinks": float(tree.num_sinks),
                "tree_depth": float(report.nominal_depth),
                "tree_global_skew": report.global_skew,
                "tree_max_neighbor_skew": report.max_neighbor_skew,
                "tree_avg_neighbor_skew": report.avg_neighbor_skew,
                "tree_max_neighbor_disjoint_path": report.max_neighbor_disjoint_path,
            },
        )
