"""Declarative campaign specifications and their expansion into run tasks.

A *campaign* is a reproducible batch of independent simulation runs: Monte
Carlo repetitions of the paper's single-pulse and stabilization experiments
swept over grid sizes, scenarios, fault counts/types, engines and timer
policies.  The specification layer is purely declarative -- it never runs a
simulation -- so that specs can be hashed (for the on-disk result cache),
serialized to JSON (for the ``hex-repro sweep`` CLI) and shipped to worker
processes.

Three levels:

* :class:`SweepSpec` -- one *cell*: a cartesian grid over the sweep axes
  (``layers``, ``width``, ``scenario``, ``num_faults``, ``fault_type``,
  ``engine``, ``timer_policy``) plus per-cell scalars (run count, seed salt,
  workload kind).  Cells exist so that a campaign can combine points whose
  seed streams must *not* follow the cartesian enumeration -- e.g. the
  fault-type ablation deliberately reuses one salt for two fault types to get
  identical fault placements.

* :class:`CampaignSpec` -- a named collection of cells sharing a base seed and
  timing configuration.

* :class:`RunTask` -- one fully-resolved simulation run.  Expansion is
  deterministic: cell ``c``'s point ``p`` gets seed salt
  ``c.seed_salt + p`` and its run ``r`` draws its generator from
  ``SeedSequence(entropy=seed + salt, spawn_key=(r,))``.  This is *exactly*
  the stream produced by ``ExperimentConfig.spawn_rngs(runs, salt)`` (NumPy
  spawns child ``r`` of a sequence as ``spawn_key=(r,)``), so campaign results
  are bit-identical to the historical serial loops -- and every task can
  rebuild its generator alone, which is what makes process fan-out safe.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.adversary.schedule import FaultSchedule
from repro.clocksource.scenarios import Scenario
from repro.core.parameters import TimeoutConfig, TimingConfig
from repro.core.topology import HexGrid
from repro.engines import RunSpec, available_engines, get_engine
from repro.engines.base import (
    DELAY_MODELS,
    EXACTNESS,
    INITIAL_STATES,
    canonical_fault_type,
    canonical_json,
    canonical_positions,
    canonical_scenario,
    canonical_timeouts,
    canonical_timer_policy,
    content_key,
    require_exactness,
    timeouts_from_tuple,
)
from repro.faults.models import FaultType
from repro.simulation.network import TimerPolicy
from repro.topologies import DEFAULT_TOPOLOGY, TopologySpec, canonical_topology, validate_topology

__all__ = [
    "ENGINES",
    "KINDS",
    "SweepSpec",
    "SweepPoint",
    "CampaignSpec",
    "RunTask",
    "canonical_json",
    "content_key",
]

#: The execution engines registered at import time (see
#: :func:`repro.engines.available_engines`; validation always consults the
#: live registry, so engines registered later are accepted as well).
ENGINES = available_engines()

#: Supported workload kinds.
KINDS = ("single_pulse", "multi_pulse")

#: Order of the sweep axes; fixes the cartesian enumeration (and therefore the
#: per-point seed salts) of a cell.  Axes added after the original seven
#: (``delay_model``, ``fault_schedule``, ``topology``) come last so that
#: cells not using them enumerate -- and salt -- exactly as before they
#: existed.
AXES = (
    "layers",
    "width",
    "scenario",
    "num_faults",
    "fault_type",
    "engine",
    "timer_policy",
    "delay_model",
    "fault_schedule",
    "topology",
)


def _as_tuple(value: Any) -> Tuple[Any, ...]:
    """Coerce a scalar or sequence axis value to a tuple (strings stay scalar)."""
    if isinstance(value, tuple):
        return value
    if isinstance(value, (list, range)):
        return tuple(value)
    return (value,)


def _canonical_schedule(value: Any) -> Optional[FaultSchedule]:
    """Coerce one ``fault_schedule`` axis value (None / instance / JSON dict)."""
    if value is None or isinstance(value, FaultSchedule):
        return value
    if isinstance(value, dict):
        return FaultSchedule.from_json_dict(value)
    raise TypeError(f"not a FaultSchedule, JSON dict or None: {value!r}")


@dataclass(frozen=True)
class SweepSpec:
    """One campaign cell: a cartesian sweep plus per-cell run parameters.

    Axis attributes accept a scalar or a sequence and are normalised to
    tuples; enum-valued axes are stored as their canonical string values so
    cells serialize to JSON unchanged.

    Attributes
    ----------
    layers, width, scenario, num_faults, fault_type, engine, timer_policy, \
delay_model, fault_schedule, topology:
        The sweep axes, combined cartesian-product style in :data:`AXES`
        order.  ``fault_type`` and ``engine`` are ignored by points with
        ``num_faults == 0`` and ``kind == "multi_pulse"`` respectively.
        ``fault_schedule`` values are ``None`` (static faults only) or
        :class:`~repro.adversary.schedule.FaultSchedule` instances (their
        JSON dicts are accepted and coerced); non-``None`` schedules require
        every engine on the axis to support them (checked at build time).
        ``topology`` values are canonical spec strings of
        :mod:`repro.topologies` (``"cylinder"`` / ``"torus"`` / ``"patch"``
        / ``"degraded:..."``); every engine paired with a non-cylinder
        family must declare support for it (also checked at build time).
    runs:
        Monte Carlo repetitions per point.
    seed_salt:
        Base salt of the cell; point ``p`` uses ``seed_salt + p``.
    kind:
        ``"single_pulse"`` (skew experiments) or ``"multi_pulse"``
        (stabilization experiments).
    num_pulses, skew_choice:
        Multi-pulse parameters: pulses per run and the ``C in {0..3}``
        skew-bound choice of the stabilization estimate.
    fixed_fault_positions:
        Optional deterministic fault placement (otherwise placed uniformly at
        random under Condition 1, freshly per run).
    timeouts:
        Optional explicit timeout override for multi-pulse runs, as a
        6-tuple ``(T-_link, T+_link, T-_sleep, T+_sleep, S, sigma)``.
    initial_states:
        Optional per-cell initial-state policy for multi-pulse runs
        (``"clean"`` / ``"random"`` / ``"adversarial"``); ``None`` keeps the
        historical random-initial-states behaviour.
    label:
        Free-form tag carried through to the records (e.g. ``"byzantine"``).
    require_exactness:
        Optional exactness requirement (one of
        :data:`~repro.engines.base.EXACTNESS`) every ``(engine, delay_model,
        num_faults, fault_schedule)`` pairing of the cell must satisfy per
        the engines' declared contracts
        (:attr:`~repro.engines.base.EngineCapabilities.exactness`).  Checked
        at build time via :func:`repro.engines.base.require_exactness`, so a
        cell that *assumes* cross-engine bit-identity (e.g. an engine-axis
        comparison sweep) fails with a contract error instead of producing
        silently diverging numbers.  ``None`` (the default) requires nothing
        and is omitted from the canonical JSON, preserving content keys.
    """

    layers: Tuple[int, ...] = (50,)
    width: Tuple[int, ...] = (20,)
    scenario: Tuple[str, ...] = (Scenario.ZERO.value,)
    num_faults: Tuple[int, ...] = (0,)
    fault_type: Tuple[str, ...] = (FaultType.BYZANTINE.value,)
    engine: Tuple[str, ...] = ("solver",)
    timer_policy: Tuple[str, ...] = (TimerPolicy.UNIFORM.value,)
    delay_model: Tuple[str, ...] = ("default",)
    fault_schedule: Tuple[Optional[FaultSchedule], ...] = (None,)
    topology: Tuple[str, ...] = (DEFAULT_TOPOLOGY,)
    runs: int = 25
    seed_salt: int = 0
    kind: str = "single_pulse"
    num_pulses: int = 10
    skew_choice: int = 0
    fixed_fault_positions: Optional[Tuple[Tuple[int, int], ...]] = None
    timeouts: Optional[Tuple[float, ...]] = None
    initial_states: Optional[str] = None
    label: str = ""
    require_exactness: Optional[str] = None

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        coerce(self, "layers", tuple(int(v) for v in _as_tuple(self.layers)))
        coerce(self, "width", tuple(int(v) for v in _as_tuple(self.width)))
        coerce(
            self,
            "scenario",
            tuple(canonical_scenario(v) for v in _as_tuple(self.scenario)),
        )
        coerce(self, "num_faults", tuple(int(v) for v in _as_tuple(self.num_faults)))
        coerce(
            self,
            "fault_type",
            tuple(canonical_fault_type(v) for v in _as_tuple(self.fault_type)),
        )
        coerce(self, "engine", tuple(str(v) for v in _as_tuple(self.engine)))
        coerce(
            self,
            "timer_policy",
            tuple(canonical_timer_policy(v) for v in _as_tuple(self.timer_policy)),
        )
        coerce(self, "delay_model", tuple(str(v) for v in _as_tuple(self.delay_model)))
        coerce(
            self,
            "fault_schedule",
            tuple(_canonical_schedule(v) for v in _as_tuple(self.fault_schedule)),
        )
        coerce(
            self,
            "topology",
            tuple(canonical_topology(v) for v in _as_tuple(self.topology)),
        )
        coerce(self, "fixed_fault_positions", canonical_positions(self.fixed_fault_positions))
        coerce(self, "timeouts", canonical_timeouts(self.timeouts))
        for axis in AXES:
            if not getattr(self, axis):
                raise ValueError(f"axis {axis!r} must have at least one value")
        for model in self.delay_model:
            if model not in DELAY_MODELS:
                raise ValueError(
                    f"unknown delay_model {model!r}; expected one of {DELAY_MODELS}"
                )
        if self.initial_states is not None:
            if self.initial_states not in INITIAL_STATES:
                raise ValueError(
                    f"unknown initial_states {self.initial_states!r}; expected one of "
                    f"{INITIAL_STATES}"
                )
            if self.kind != "multi_pulse":
                raise ValueError("initial_states is a multi-pulse cell parameter")
        for engine in self.engine:
            if engine not in available_engines():
                raise ValueError(
                    f"unknown engine {engine!r}; available engines: "
                    f"{', '.join(available_engines())}"
                )
            # Fail at build time, not mid-campaign: a cartesian cell pairing a
            # fault-less engine with a faulty point would otherwise abort the
            # sweep only when that point executes, losing the completed work.
            # (Multi-pulse cells ignore the engine axis, so only single-pulse
            # cells can hit the mismatch.)
            capabilities = get_engine(engine).capabilities
            if (
                self.kind == "single_pulse"
                and not capabilities.supports_faults
                and any(count > 0 for count in self.num_faults)
            ):
                raise ValueError(
                    f"engine {engine!r} does not support fault injection but the "
                    f"num_faults axis contains {tuple(n for n in self.num_faults if n > 0)}; "
                    "put the fault-free baseline in its own cell"
                )
            # Same early-failure discipline for dynamic fault schedules: only
            # engines advertising supports_fault_schedules may be paired with
            # a non-None schedule axis value.  (Multi-pulse cells always
            # execute on the DES backend, which supports schedules.)
            if (
                self.kind == "single_pulse"
                and not capabilities.supports_fault_schedules
                and any(schedule is not None for schedule in self.fault_schedule)
            ):
                raise ValueError(
                    f"engine {engine!r} cannot execute dynamic fault schedules but "
                    "the fault_schedule axis contains one; sweep schedules over the "
                    "'des' engine (put static engines in their own cell)"
                )
        # Topology pairings fail at build time too: dimension lower bounds
        # per (layers, width) grid point, and engine support per engine on
        # the axis (multi-pulse cells always execute on the DES backend).
        for topology in self.topology:
            for layers_value in self.layers:
                for width_value in self.width:
                    validate_topology(topology, layers_value, width_value)
            family = TopologySpec.parse(topology).family
            engines_to_check = self.engine if self.kind == "single_pulse" else ("des",)
            for engine in engines_to_check:
                if not get_engine(engine).capabilities.supports_topology(family):
                    raise ValueError(
                        f"engine {engine!r} does not support topology {topology!r} "
                        f"(family {family!r}); sweep non-cylinder topologies over "
                        "the hex engines ('solver'/'des') and keep this engine in "
                        "its own cylinder-only cell"
                    )
        # Exactness requirements fail at build time too: every pairing of the
        # engine, delay_model, num_faults and fault_schedule axes is probed
        # against the engine's declared contract (these four axes are exactly
        # what the exactness predicates consult), so a cell assuming
        # cross-engine bit-identity cannot silently sweep a regime where no
        # engine promises it.
        if self.require_exactness is not None:
            if self.require_exactness not in EXACTNESS:
                raise ValueError(
                    f"unknown require_exactness {self.require_exactness!r}; "
                    f"expected one of {EXACTNESS} (or None)"
                )
            probe_engines = self.engine if self.kind == "single_pulse" else ("des",)
            for engine in probe_engines:
                backend = get_engine(engine)
                for delay_model in self.delay_model:
                    for num_faults in self.num_faults:
                        for schedule in self.fault_schedule:
                            probe = RunSpec(
                                kind=self.kind,
                                layers=self.layers[0],
                                width=self.width[0],
                                topology=self.topology[0],
                                delay_model=delay_model,
                                num_faults=num_faults,
                                fault_schedule=schedule,
                            )
                            try:
                                require_exactness(backend, probe, self.require_exactness)
                            except ValueError as error:
                                raise ValueError(
                                    "cell cannot guarantee "
                                    f"require_exactness={self.require_exactness!r}: "
                                    f"{error}"
                                ) from error
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}; expected one of {KINDS}")
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if self.num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {self.num_pulses}")
        if self.skew_choice not in (0, 1, 2, 3):
            raise ValueError(f"skew_choice must be in 0..3, got {self.skew_choice}")
        if any(count < 0 for count in self.num_faults):
            raise ValueError("num_faults values must be non-negative")

    @property
    def num_points(self) -> int:
        """Number of grid points in this cell."""
        total = 1
        for axis in AXES:
            total *= len(getattr(self, axis))
        return total

    @property
    def num_tasks(self) -> int:
        """Number of run tasks this cell expands to."""
        return self.num_points * self.runs

    def points(self) -> Iterator["SweepPoint"]:
        """Expand the cartesian grid in :data:`AXES` order.

        Point ``p`` (enumeration index) receives seed salt
        ``seed_salt + p``, matching the historical ``seed_salt + index``
        idiom of the per-figure sweeps.  Salts are therefore *positional*:
        appending to the innermost axes reshuffles later points' seeds (and
        their cache identities).  To grow a campaign while reusing completed
        runs, raise ``runs``, extend the outermost varied axis, or append a
        new cell with a fresh ``seed_salt``.
        """
        axis_values = [getattr(self, axis) for axis in AXES]
        for point_index, combo in enumerate(itertools.product(*axis_values)):
            values = dict(zip(AXES, combo))
            yield SweepPoint(
                point_index=point_index,
                salt=self.seed_salt + point_index,
                runs=self.runs,
                kind=self.kind,
                num_pulses=self.num_pulses,
                skew_choice=self.skew_choice,
                fixed_fault_positions=self.fixed_fault_positions,
                timeouts=self.timeouts,
                initial_states=self.initial_states,
                label=self.label,
                **values,
            )

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (tuples become lists).

        The adversary fields (``delay_model``, ``fault_schedule``,
        ``initial_states``) are omitted at their defaults -- and ``topology``
        at the all-cylinder default, and ``require_exactness`` at ``None`` --
        so cells that do not use those layers serialize -- and hash --
        exactly as before the layers existed.
        """
        payload: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "fault_schedule":
                if value == (None,):
                    continue
                value = [
                    schedule.to_json_dict() if schedule is not None else None
                    for schedule in value
                ]
            elif spec_field.name == "delay_model":
                if value == ("default",):
                    continue
                value = list(value)
            elif spec_field.name == "topology":
                if value == (DEFAULT_TOPOLOGY,):
                    continue
                value = list(value)
            elif spec_field.name in ("initial_states", "require_exactness"):
                if value is None:
                    continue
            elif isinstance(value, tuple):
                value = [list(item) if isinstance(item, tuple) else item for item in value]
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_json_dict` (unknown keys rejected)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown SweepSpec fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved grid point of a cell (all axes collapsed to scalars)."""

    point_index: int
    salt: int
    runs: int
    kind: str
    layers: int
    width: int
    scenario: str
    num_faults: int
    fault_type: str
    engine: str
    timer_policy: str
    delay_model: str
    fault_schedule: Optional[FaultSchedule]
    topology: str
    num_pulses: int
    skew_choice: int
    fixed_fault_positions: Optional[Tuple[Tuple[int, int], ...]]
    timeouts: Optional[Tuple[float, ...]]
    initial_states: Optional[str]
    label: str


@dataclass(frozen=True)
class CampaignSpec:
    """A named, seeded collection of sweep cells.

    Attributes
    ----------
    name:
        Campaign identifier; used in cache shard names and reports.
    cells:
        The sweep cells, expanded in order.
    seed:
        Base seed; a task's stream entropy is ``seed + cell.seed_salt +
        point_index`` (see module docstring).
    timing:
        Delay bounds and drift shared by all cells.
    keep_times:
        Whether records retain the dense trigger-time matrices (needed for
        pooled statistics and h-hop locality analysis; disable for huge
        Monte Carlo campaigns where per-run summary rows suffice).
    """

    name: str
    cells: Tuple[SweepSpec, ...]
    seed: int = 2013
    timing: TimingConfig = field(default_factory=TimingConfig.paper_defaults)
    keep_times: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        cells = tuple(
            cell if isinstance(cell, SweepSpec) else SweepSpec.from_json_dict(cell)
            for cell in _as_tuple(self.cells)
        )
        if not cells:
            raise ValueError("a campaign needs at least one cell")
        object.__setattr__(self, "cells", cells)

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Total number of run tasks across all cells."""
        return sum(cell.num_tasks for cell in self.cells)

    def tasks(self) -> List["RunTask"]:
        """Expand the campaign into its full, deterministically ordered task list."""
        result: List[RunTask] = []
        for cell_index, cell in enumerate(self.cells):
            for point in cell.points():
                fault_type = point.fault_type if point.num_faults > 0 else None
                for run_index in range(point.runs):
                    result.append(
                        RunTask(
                            kind=point.kind,
                            layers=point.layers,
                            width=point.width,
                            d_min=self.timing.d_min,
                            d_max=self.timing.d_max,
                            theta=self.timing.theta,
                            scenario=point.scenario,
                            num_faults=point.num_faults,
                            fault_type=fault_type,
                            engine=point.engine,
                            timer_policy=point.timer_policy,
                            num_pulses=point.num_pulses,
                            skew_choice=point.skew_choice,
                            fixed_fault_positions=point.fixed_fault_positions,
                            timeouts=point.timeouts,
                            keep_times=self.keep_times,
                            entropy=self.seed + point.salt,
                            run_index=run_index,
                            cell_index=cell_index,
                            point_index=point.point_index,
                            label=point.label,
                            delay_model=point.delay_model,
                            fault_schedule=point.fault_schedule,
                            initial_states=point.initial_states,
                            topology=point.topology,
                        )
                    )
        return result

    # ------------------------------------------------------------------
    # serialization & hashing
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation of the whole campaign."""
        return {
            "name": self.name,
            "seed": self.seed,
            "timing": {
                "d_min": self.timing.d_min,
                "d_max": self.timing.d_max,
                "theta": self.timing.theta,
            },
            "keep_times": self.keep_times,
            "cells": [cell.to_json_dict() for cell in self.cells],
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_json_dict`."""
        missing = [key for key in ("name", "cells") if key not in payload]
        if missing:
            raise ValueError(f"campaign spec is missing required keys: {missing}")
        timing_payload = payload.get("timing")
        timing = (
            TimingConfig(**timing_payload)
            if timing_payload is not None
            else TimingConfig.paper_defaults()
        )
        return cls(
            name=payload["name"],
            seed=payload.get("seed", 2013),
            timing=timing,
            keep_times=payload.get("keep_times", True),
            cells=tuple(SweepSpec.from_json_dict(cell) for cell in payload["cells"]),
        )

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        """Load a campaign spec from a JSON file (``hex-repro sweep --spec``)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json_dict(json.load(handle))

    def key(self) -> str:
        """Content-address of the spec (cache shard identity)."""
        return content_key(self.to_json_dict())

    def with_seed(self, seed: int) -> "CampaignSpec":
        """A copy with a different base seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class RunTask:
    """One fully-resolved simulation run, self-contained and picklable.

    A task carries everything needed to execute in a fresh worker process:
    topology and timing scalars, workload parameters and the seed-derivation
    coordinates (``entropy``, ``run_index``).  Its content hash (:meth:`key`)
    identifies the run in the on-disk cache.
    """

    kind: str
    layers: int
    width: int
    d_min: float
    d_max: float
    theta: float
    scenario: str
    num_faults: int
    fault_type: Optional[str]
    engine: str
    timer_policy: str
    num_pulses: int
    skew_choice: int
    fixed_fault_positions: Optional[Tuple[Tuple[int, int], ...]]
    timeouts: Optional[Tuple[float, ...]]
    keep_times: bool
    entropy: int
    run_index: int
    cell_index: int
    point_index: int
    label: str = ""
    delay_model: str = "default"
    fault_schedule: Optional[FaultSchedule] = None
    initial_states: Optional[str] = None
    topology: str = DEFAULT_TOPOLOGY

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation.

        The adversary fields are omitted at their defaults -- and
        ``topology`` at the cylinder default -- so tasks of campaigns not
        using those layers keep their historical payloads, and therefore
        their cache keys and record params, byte for byte.
        """
        payload: Dict[str, Any] = {}
        for task_field in fields(self):
            value = getattr(self, task_field.name)
            if task_field.name == "fault_schedule":
                if value is None:
                    continue
                value = value.to_json_dict()
            elif task_field.name == "delay_model" and value == "default":
                continue
            elif task_field.name == "initial_states" and value is None:
                continue
            elif task_field.name == "topology" and value == DEFAULT_TOPOLOGY:
                continue
            elif isinstance(value, tuple):
                value = [list(item) if isinstance(item, tuple) else item for item in value]
            payload[task_field.name] = value
        return payload

    def key(self) -> str:
        """Content-address of the task (cache lookup key).

        Presentation-only coordinates (``cell_index``, ``point_index``,
        ``label``) are excluded so cached runs survive reorganising a campaign
        into different cells.
        """
        payload = self.to_json_dict()
        for ignored in ("cell_index", "point_index", "label"):
            payload.pop(ignored)
        return content_key(payload)

    # ------------------------------------------------------------------
    # reconstruction helpers (used by the executor)
    # ------------------------------------------------------------------
    def rng(self) -> np.random.Generator:
        """The run's generator, identical to ``spawn_rngs(runs, salt)[run_index]``.

        Delegates to :meth:`~repro.engines.base.RunSpec.rng` so the
        seed-derivation code exists exactly once.
        """
        return self.to_run_spec().rng()

    def to_run_spec(self) -> RunSpec:
        """The engine-facing :class:`~repro.engines.base.RunSpec` of this task.

        Field-for-field translation -- in particular the seed coordinates
        ``(entropy, run_index)`` carry over unchanged, so
        ``spec.rng()`` and :meth:`rng` produce the same stream and engine
        execution is bit-identical to the historical per-run bodies.

        The explicit ``timeouts`` override is forwarded for multi-pulse tasks
        only: campaign timeouts are documented as a multi-pulse parameter,
        and the historical single-pulse bodies ignored them (DES computed its
        Condition 2 defaults from the layer-0 spread) -- forwarding them
        would change timer draws, and therefore records, for unchanged task
        keys.  Direct :class:`RunSpec` users get single-pulse overrides
        honoured by the DES engine.
        """
        return RunSpec(
            kind=self.kind,
            layers=self.layers,
            width=self.width,
            d_min=self.d_min,
            d_max=self.d_max,
            theta=self.theta,
            scenario=self.scenario,
            num_faults=self.num_faults,
            fault_type=self.fault_type,
            fixed_fault_positions=self.fixed_fault_positions,
            delay_model=self.delay_model,
            timeouts=self.timeouts if self.kind == "multi_pulse" else None,
            timer_policy=self.timer_policy,
            num_pulses=self.num_pulses,
            entropy=self.entropy,
            run_index=self.run_index,
            fault_schedule=self.fault_schedule,
            initial_states=self.initial_states,
            topology=self.topology,
        )

    def make_grid(self) -> HexGrid:
        """The task's grid."""
        return self.to_run_spec().make_grid()

    def make_timing(self) -> TimingConfig:
        """The task's timing configuration."""
        return self.to_run_spec().make_timing()

    def make_timeouts(self) -> Optional[TimeoutConfig]:
        """The explicit timeout override, if any.

        Not routed through :meth:`to_run_spec` -- the task-to-spec
        translation deliberately drops single-pulse overrides, while this
        accessor reports the raw task field.
        """
        return timeouts_from_tuple(self.timeouts)
