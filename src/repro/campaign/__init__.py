"""Parallel sweep and Monte Carlo campaign orchestration.

This subsystem turns the one-off serial loops of the experiment harness into
a reusable pipeline::

    spec (declarative sweep)  ->  tasks (seeded runs)  ->  records  ->  analysis

* :mod:`repro.campaign.spec` -- declarative :class:`SweepSpec` /
  :class:`CampaignSpec` grids with deterministic per-run seed derivation via
  ``numpy.random.SeedSequence`` spawn keys.
* :mod:`repro.campaign.runner` -- :class:`CampaignRunner` executes the
  expanded :class:`RunTask` list in-process or on a ``multiprocessing`` pool;
  results are independent of worker count and completion order.
* :mod:`repro.campaign.records` -- flat, JSON-serializable
  :class:`RunRecord` results plus the pooled aggregation helpers that feed
  :mod:`repro.analysis`.
* :mod:`repro.campaign.store` -- a content-addressed JSONL cache making
  interrupted campaigns resumable and repeat invocations instant.
* :mod:`repro.campaign.progress` -- throttled progress/ETA reporting.

The per-table/per-figure experiments (``repro.experiments``) and the
``hex-repro sweep`` / ``hex-repro simulate`` CLI run on top of this package;
see ``DESIGN.md`` at the repository root for the subsystem inventory.

Quickstart
----------
>>> from repro.campaign import CampaignSpec, SweepSpec, CampaignRunner
>>> spec = CampaignSpec(
...     name="demo",
...     seed=7,
...     cells=(SweepSpec(layers=10, width=8, scenario=("i", "iii"), runs=3),),
... )
>>> result = CampaignRunner(spec, workers=1).run()
>>> len(result.records)
6
"""

from __future__ import annotations

from repro.campaign.progress import ProgressReporter
from repro.campaign.records import (
    RunRecord,
    group_by_cell,
    group_by_point,
    pooled_statistics,
    stabilization_times,
)
from repro.campaign.runner import CampaignResult, CampaignRunner, execute_task
from repro.campaign.spec import CampaignSpec, RunTask, SweepSpec
from repro.campaign.store import CampaignStore

__all__ = [
    "CampaignSpec",
    "SweepSpec",
    "RunTask",
    "RunRecord",
    "CampaignRunner",
    "CampaignResult",
    "CampaignStore",
    "ProgressReporter",
    "execute_task",
    "pooled_statistics",
    "group_by_cell",
    "group_by_point",
    "stabilization_times",
]
