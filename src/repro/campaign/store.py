"""Content-addressed on-disk result cache for campaigns.

Layout: one JSON-lines *shard* per campaign name, ``<name>.jsonl`` under the
store root.  Each line is an object ``{"key": <task hash>, "record":
<RunRecord JSON>}``.  Properties that make interrupted campaigns resumable
and repeat invocations instant:

* **Append-only, one record per line.**  The runner flushes after every
  record, so a crash or Ctrl-C loses at most the line being written;
  :meth:`CampaignStore.load` skips a torn trailing line.
* **Content addressing.**  Lines are keyed by the *task* hash (parameters,
  timing and seed coordinates; campaign-layout fields excluded), so a
  resumed run matches records to tasks by content, not position --
  reordering cells or widening a sweep under the same campaign name reuses
  every run that is still part of the campaign, and entries that no longer
  match any task are simply ignored.
* **Last write wins.**  Duplicate keys (e.g. from overlapping appends) are
  collapsed on load, keeping the most recent line.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Union

from repro.campaign.records import RunRecord
from repro.campaign.spec import CampaignSpec

__all__ = ["CampaignStore", "ShardWriter"]


class ShardWriter:
    """Incremental writer for one campaign shard (line-buffered, crash-safe)."""

    def __init__(self, path: Path, append: bool = True) -> None:
        self.path = path
        self._handle = open(path, "a" if append else "w", encoding="utf-8")

    def append(self, record: RunRecord) -> None:
        """Persist one record and flush it to disk immediately."""
        line = json.dumps(
            {"key": record.key, "record": record.to_json_dict()},
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CampaignStore:
    """A directory of campaign shards."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def shard_path(self, spec: CampaignSpec) -> Path:
        """The shard file of a campaign.

        Keyed by campaign *name* only: task content hashes do the matching, so
        revised specs under the same name keep their completed runs.
        """
        return self.root / f"{spec.name}.jsonl"

    def load(self, spec: CampaignSpec) -> Dict[str, RunRecord]:
        """All completed records of a campaign, keyed by task hash.

        Malformed lines (typically a torn final line after an interrupt) are
        skipped; duplicate keys keep the last occurrence.
        """
        path = self.shard_path(spec)
        records: Dict[str, RunRecord] = {}
        if not path.exists():
            return records
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    record = RunRecord.from_json_dict(payload["record"])
                    records[payload["key"]] = record
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue
        return records

    def open_writer(self, spec: CampaignSpec, append: bool = True) -> ShardWriter:
        """Open the campaign's shard for (appending or truncating) writes."""
        return ShardWriter(self.shard_path(spec), append=append)

    def clear(self, spec: CampaignSpec) -> None:
        """Remove the campaign's shard, if present."""
        path = self.shard_path(spec)
        if path.exists():
            path.unlink()

    def shards(self) -> List[Path]:
        """All shard files in the store."""
        return sorted(self.root.glob("*.jsonl"))
