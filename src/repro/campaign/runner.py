"""Campaign execution: serial or multiprocessing fan-out over run tasks.

:func:`execute_task` is the single entry point that turns a
:class:`~repro.campaign.spec.RunTask` into a
:class:`~repro.campaign.records.RunRecord`.  Execution dispatches through the
engine registry (:func:`repro.engines.get_engine`): the task is translated to
a :class:`~repro.engines.base.RunSpec` and handed to the engine's ``run``,
which reproduces the historical per-run bodies exactly -- same generator,
same draw order (layer-0 times, fault placement, fault behaviour, link delays
for single-pulse runs; fault placement, pulse schedule, simulation draws for
multi-pulse runs).  Because a task rebuilds its generator from
``(entropy, run_index)`` alone, the result is independent of which process
executes it and in which order: a campaign run with ``workers=8`` produces
canonically byte-identical records to a serial run.

:class:`CampaignRunner` expands a spec, consults the optional on-disk store
for already-completed tasks (``resume=True``), executes the remainder either
in-process or on a ``multiprocessing`` pool, persists results as they
complete (so an interrupted campaign resumes where it stopped) and returns
the records in deterministic task order.

Serial execution additionally groups consecutive same-engine single-pulse
tasks and dispatches each group through ``engine.run_batch``
(:func:`execute_task_batch`), so same-grid sweep cells amortize topology
construction and the solver's plan-compiled fast path.  Batching is purely a
wall-clock optimisation: the engine contract keeps batched results
bit-identical to per-task execution, so canonical records -- and therefore
the serial/parallel/resume equalities -- are unchanged.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.analysis.skew import SkewStatistics
from repro.analysis.stabilization import stabilization_time
from repro.campaign.progress import ProgressReporter
from repro.campaign.records import RunRecord, group_by_point, pooled_statistics, stabilization_times
from repro.campaign.spec import CampaignSpec, RunTask
from repro.campaign.store import CampaignStore
from repro.clocksource.scenarios import parse_scenario
from repro.core.bounds import stable_skew_choice
from repro.engines import Engine, get_engine
from repro.engines.des import scenario_layer0_spread
from repro.stream import StreamingMoments, StreamingQuantiles

__all__ = ["execute_task", "execute_task_batch", "CampaignResult", "CampaignRunner"]


def _single_pulse_record(task: RunTask, result) -> RunRecord:
    fault_model = result.fault_model
    mask = fault_model.correctness_mask() if fault_model is not None else None
    # The clock-tree engine reports a sink-array matrix whose shape differs
    # from the hex grid's; its rows/columns are plain physical adjacency, so
    # the (wrapping) default applies.  Hex grids report their own wrap flag.
    wrap = bool(getattr(result.grid, "column_wrap", True))
    skew_row = SkewStatistics.from_times(result.trigger_times, mask, wrap=wrap).as_row()
    faulty = tuple(fault_model.faulty_nodes()) if fault_model is not None else ()
    return RunRecord(
        key=task.key(),
        kind=task.kind,
        cell_index=task.cell_index,
        point_index=task.point_index,
        run_index=task.run_index,
        params=task.to_json_dict(),
        skew=skew_row,
        faulty_nodes=faulty,
        trigger_times=result.trigger_times if task.keep_times else None,
        layer0_times=result.layer0_times if task.keep_times else None,
    )


def _execute_single_pulse(task: RunTask, engine: Engine) -> RunRecord:
    return _single_pulse_record(task, engine.run(task.to_run_spec()))


def _execute_multi_pulse(task: RunTask, engine: Engine) -> RunRecord:
    if "multi_pulse" not in engine.capabilities.kinds:
        # The engine sweep axis is documented as ignored by multi-pulse
        # points (the stabilization workload has a single semantics); fall
        # back to the discrete-event backend as the historical bodies did.
        engine = get_engine("des")
    result = engine.run(task.to_run_spec())
    grid = result.grid
    timing = result.timing
    fault_model = result.fault_model

    layer0_spread = scenario_layer0_spread(parse_scenario(task.scenario), grid.width, timing)
    # Lateral-trigger margin of the topology (0 on the cylinder): the sigma
    # bounds are derived for centrally-triggered nodes, and rim/hole-adjacent
    # nodes legitimately run about one d+ behind per structural obstacle --
    # the same margin the DES engine charges on its Condition 2 timeouts.
    extra_skew = grid.condition2_extra_hops() * timing.d_max

    def intra_bound(layer: int) -> float:
        return extra_skew + stable_skew_choice(
            task.skew_choice,
            timing,
            grid.layers,
            layer,
            task.num_faults,
            layer0_spread=layer0_spread,
        )

    estimate = stabilization_time(result, intra_bound)
    faulty = tuple(fault_model.faulty_nodes()) if fault_model is not None else ()
    return RunRecord(
        key=task.key(),
        kind=task.kind,
        cell_index=task.cell_index,
        point_index=task.point_index,
        run_index=task.run_index,
        params=task.to_json_dict(),
        faulty_nodes=faulty,
        stabilization_time=float(estimate) if estimate is not None else float("nan"),
        total_firings=result.total_firings(),
    )


def execute_task(task: RunTask) -> RunRecord:
    """Execute one run task and return its record.

    Deterministic given the task (except for the recorded wall time), whatever
    process runs it -- the foundation of the serial/parallel equality and of
    the resumable cache.  The execution backend is resolved through
    :func:`repro.engines.get_engine`, so an unknown ``task.engine`` fails
    with the list of registered engines before any simulation work starts.
    """
    start = time.perf_counter()
    with obs.span("campaign.task", engine=task.engine, kind=task.kind) as task_span:
        usage = obs.resources.snapshot() if obs.enabled() else None
        engine = get_engine(task.engine)
        if task.kind == "single_pulse":
            record = _execute_single_pulse(task, engine)
        elif task.kind == "multi_pulse":
            record = _execute_multi_pulse(task, engine)
        else:
            raise ValueError(f"unknown task kind {task.kind!r}")
        if usage is not None:
            task_span.set(**obs.resources.delta_attrs(usage))
    record.wall_time_s = time.perf_counter() - start
    obs.inc("campaign.tasks_executed")
    return record


def execute_task_batch(tasks: Sequence[RunTask]) -> List[RunRecord]:
    """Execute a group of same-engine single-pulse tasks in one engine call.

    Dispatches the whole group through ``engine.run_batch`` (falling back to
    a per-spec loop for engines without one), so same-grid sweep cells share
    topology construction and the solver's plan-compiled fast path.  The
    engine-level batching contract guarantees canonical records identical to
    per-task execution; only :attr:`RunRecord.wall_time_s` -- which the
    canonical form excludes -- differs, and is stamped as the group's
    per-task average.
    """
    if not tasks:
        return []
    engine_name = tasks[0].engine
    for task in tasks:
        if task.kind != "single_pulse" or task.engine != engine_name:
            raise ValueError(
                "execute_task_batch needs same-engine single-pulse tasks; got "
                f"kind={task.kind!r} engine={task.engine!r} in a "
                f"{engine_name!r} batch"
            )
    start = time.perf_counter()
    with obs.span("campaign.task_batch", engine=engine_name, size=len(tasks)) as batch_span:
        usage = obs.resources.snapshot() if obs.enabled() else None
        engine = get_engine(engine_name)
        batch_run = getattr(engine, "run_batch", None)
        specs = [task.to_run_spec() for task in tasks]
        if batch_run is not None:
            results = batch_run(specs)
        else:
            results = [engine.run(spec) for spec in specs]
        records = [
            _single_pulse_record(task, result) for task, result in zip(tasks, results)
        ]
        if usage is not None:
            batch_span.set(**obs.resources.delta_attrs(usage))
    share = (time.perf_counter() - start) / len(tasks)
    for record in records:
        record.wall_time_s = share
    obs.inc("campaign.batches")
    obs.inc("campaign.batched_tasks", len(tasks))
    obs.inc("campaign.tasks_executed", len(tasks))
    return records


def _execute_indexed(indexed: Tuple[int, RunTask]) -> Tuple[int, RunRecord]:
    """Pool-friendly wrapper keeping each record paired with its task index."""
    index, task = indexed
    return index, execute_task(task)


@dataclass
class CampaignResult:
    """The outcome of a campaign run.

    Attributes
    ----------
    spec:
        The executed specification.
    records:
        One record per task, in deterministic task order (cells, then points,
        then run indices).
    executed, cached:
        How many tasks were simulated vs served from the store.
    wall_time_s:
        End-to-end campaign wall time.
    """

    spec: CampaignSpec
    records: List[RunRecord] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    wall_time_s: float = 0.0

    def records_for(
        self, cell_index: Optional[int] = None, point_index: Optional[int] = None
    ) -> List[RunRecord]:
        """Records filtered by cell and/or point index."""
        return [
            record
            for record in self.records
            if (cell_index is None or record.cell_index == cell_index)
            and (point_index is None or record.point_index == point_index)
        ]

    def point_statistics(
        self, cell_index: int, point_index: int, hops: int = 0
    ) -> SkewStatistics:
        """Pooled skew statistics of one grid point (single-pulse campaigns)."""
        return pooled_statistics(self.records_for(cell_index, point_index), hops=hops)

    def point_stabilization_times(self, cell_index: int, point_index: int) -> np.ndarray:
        """Per-run stabilization estimates of one point (multi-pulse campaigns)."""
        return stabilization_times(self.records_for(cell_index, point_index))

    def grouped(self) -> Dict[Tuple[int, int], List[RunRecord]]:
        """Records grouped by ``(cell_index, point_index)``."""
        return group_by_point(self.records)

    def wall_time_summary(self) -> Dict[str, float]:
        """Roll the per-task wall times up into a per-campaign summary.

        Aggregates the :attr:`RunRecord.wall_time_s` every record carries
        (workers stamp theirs, so the parallel path aggregates too; cached
        records keep the wall time of their original execution).  Keys:
        ``tasks``, ``executed``, ``cached``, ``task_total_s``,
        ``task_mean_s``, ``task_median_s``, ``task_p95_s``, ``tasks_per_s``
        (executed tasks per second of campaign wall time) and
        ``wall_time_s``.
        """
        times = sorted(
            record.wall_time_s
            for record in self.records
            if record.wall_time_s and math.isfinite(record.wall_time_s)
        )
        # One quantile/moment implementation for campaigns and soak runs
        # (repro.stream).  exact_cap=None keeps the accumulator exact, so
        # total/median/p95 stay bit-identical to the historical
        # float(sum(...)) / np.median / np.percentile(..., 95) spellings.
        moments = StreamingMoments()
        quantiles = StreamingQuantiles(exact_cap=None)
        for value in times:
            moments.add(value)
            quantiles.add(value)
        total = moments.total
        summary = {
            "tasks": float(len(self.records)),
            "executed": float(self.executed),
            "cached": float(self.cached),
            "task_total_s": total,
            "task_mean_s": total / len(times) if times else 0.0,
            "task_median_s": quantiles.median() if times else 0.0,
            "task_p95_s": quantiles.quantile(0.95) if times else 0.0,
            "tasks_per_s": (
                self.executed / self.wall_time_s if self.wall_time_s > 0 else 0.0
            ),
            "wall_time_s": float(self.wall_time_s),
        }
        return summary


class CampaignRunner:
    """Expand a campaign spec and execute it, serially or on a process pool.

    Parameters
    ----------
    spec:
        The campaign to run.
    workers:
        Number of worker processes; ``1`` executes in-process (no pool).
    store:
        Optional on-disk result cache -- a :class:`CampaignStore` or a
        directory path.  Completed records are appended as they arrive, so an
        interrupted campaign leaves a valid shard behind.
    resume:
        Reuse records already present in the store instead of re-simulating
        them.  Without ``resume`` an existing shard is overwritten.
    progress:
        ``True`` for a stderr progress/ETA line, a ready-made
        :class:`ProgressReporter`, or ``None``/``False`` for silence.
    batch_size:
        Maximum number of consecutive same-engine single-pulse tasks the
        serial path hands to one ``engine.run_batch`` call (see
        :func:`execute_task_batch`); sweep cells on the same grid then share
        topology construction and the solver fast path.  ``1`` disables
        batching and restores strict per-task execution through the
        module-level :func:`execute_task` hook (which tests monkeypatch).
        Records are persisted as each batch completes, so an interrupt loses
        at most one in-flight batch.
    mp_start_method:
        Multiprocessing start method for the worker pool (``"fork"``,
        ``"spawn"`` or ``"forkserver"``); ``None`` uses the platform default.
        Records are start-method-independent (each task rebuilds its
        generator from ``(entropy, run_index)``), so this only affects how
        workers come up -- it exists so the cross-process observability path
        can be exercised under the macOS/Windows default (``spawn``) as well.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 1,
        store: Optional[Union[CampaignStore, str]] = None,
        resume: bool = False,
        progress: Union[bool, ProgressReporter, None] = None,
        batch_size: int = 32,
        mp_start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if mp_start_method is not None:
            import multiprocessing

            available = multiprocessing.get_all_start_methods()
            if mp_start_method not in available:
                raise ValueError(
                    f"unknown multiprocessing start method {mp_start_method!r}; "
                    f"available: {', '.join(available)}"
                )
        self.spec = spec
        self.workers = workers
        self.batch_size = batch_size
        self.mp_start_method = mp_start_method
        if store is not None and not isinstance(store, CampaignStore):
            store = CampaignStore(store)
        self.store = store
        if resume and store is None:
            raise ValueError("resume=True requires a store")
        self.resume = resume
        if progress is True:
            progress = ProgressReporter(total=spec.num_tasks, label=spec.name)
        elif progress is False:
            progress = None
        self.progress = progress

    def run(self) -> CampaignResult:
        """Execute the campaign and return its ordered records."""
        with obs.span(
            "campaign.run", campaign=self.spec.name, workers=self.workers
        ):
            return self._run()

    def _run(self) -> CampaignResult:
        start = time.perf_counter()
        tasks = self.spec.tasks()

        cached: Dict[str, RunRecord] = {}
        if self.store is not None and self.resume:
            cached = self.store.load(self.spec)

        by_index: Dict[int, RunRecord] = {}
        pending: List[Tuple[int, RunTask]] = []
        for index, task in enumerate(tasks):
            # Hashing every task is only worthwhile when there is a cache to
            # probe; the executor stamps record keys itself.
            hit = cached.get(task.key()) if cached else None
            if hit is not None:
                # Serve each hit as an independent copy with the *current*
                # campaign coordinates: a task may have moved cells between
                # spec revisions, and two tasks with equal content keys
                # (cells differing only in label) must not alias one record.
                by_index[index] = dataclasses.replace(
                    hit,
                    cell_index=task.cell_index,
                    point_index=task.point_index,
                    run_index=task.run_index,
                    params=task.to_json_dict(),
                )
            else:
                pending.append((index, task))

        if self.progress is not None:
            self.progress.start(cached=len(by_index))
        obs.inc("campaign.cache_hits", len(by_index))
        obs.inc("campaign.tasks", len(tasks))

        result = CampaignResult(spec=self.spec, cached=len(by_index))
        writer_ctx = (
            self.store.open_writer(self.spec, append=self.resume)
            if self.store is not None
            else None
        )
        try:
            for index, record in self._execute_pending(pending):
                by_index[index] = record
                result.executed += 1
                if writer_ctx is not None:
                    writer_ctx.append(record)
                if self.progress is not None:
                    self.progress.advance()
        finally:
            if writer_ctx is not None:
                writer_ctx.close()
            if self.progress is not None:
                self.progress.finish()

        result.records = [by_index[index] for index in range(len(tasks))]
        result.wall_time_s = time.perf_counter() - start
        if obs.metrics_enabled():
            summary = result.wall_time_summary()
            for key in ("task_total_s", "task_median_s", "task_p95_s", "tasks_per_s"):
                obs.gauge(f"campaign.{key}", summary[key])
            if result.wall_time_s > 0:
                # Fraction of the worker-seconds budget spent inside tasks;
                # ~1.0 means the pool (or the serial loop) ran saturated.
                obs.gauge(
                    "campaign.worker_utilization",
                    summary["task_total_s"] / (self.workers * result.wall_time_s),
                )
            # Orchestrator-process resource accounting; worker CPU/RSS arrives
            # separately through the worker.* metrics fan-in.
            for name, value in obs.resources.usage_gauges("campaign").items():
                obs.gauge(name, value)
        return result

    def _execute_pending(self, pending: Sequence[Tuple[int, RunTask]]):
        """Yield ``(index, record)`` pairs as tasks complete."""
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            group: List[Tuple[int, RunTask]] = []
            for index, task in pending:
                batchable = task.kind == "single_pulse" and self.batch_size > 1
                if group and (
                    not batchable
                    or task.engine != group[-1][1].engine
                    or len(group) >= self.batch_size
                ):
                    yield from self._flush_group(group)
                    group = []
                if batchable:
                    group.append((index, task))
                else:
                    # Looked up through the module so tests can monkeypatch
                    # the executor for fault-injection and resume accounting.
                    yield index, execute_task(task)
            yield from self._flush_group(group)
            return
        import multiprocessing

        workers = min(self.workers, len(pending))
        chunksize = max(1, math.ceil(len(pending) / (workers * 4)))
        # With obs on in the parent, each worker runs its own instrumented
        # session: fork_context() captures the picklable TraceContext the
        # initializer needs to open a pid-suffixed trace shard and a fresh
        # registry (workers must never write through the parent's inherited
        # trace handle -- worker_init always drops that first).
        context = obs.fork_context()
        mp_context = (
            multiprocessing.get_context(self.mp_start_method)
            if self.mp_start_method is not None
            else multiprocessing
        )
        # Deliberately NOT `with Pool(...)`: the context manager form calls
        # terminate(), which kills workers before the Finalize teardown that
        # flushes their telemetry shards can run.  close()+join() lets every
        # worker exit cleanly; terminate() remains the error path.
        pool = mp_context.Pool(
            processes=workers, initializer=obs.worker_init, initargs=(context,)
        )
        try:
            for index, record in pool.imap_unordered(
                _execute_indexed, pending, chunksize=chunksize
            ):
                yield index, record
            pool.close()
        except BaseException:
            pool.terminate()
            raise
        finally:
            pool.join()
        if context is not None:
            obs.absorb_worker_shards(context, expected=workers)

    def _flush_group(self, group: Sequence[Tuple[int, RunTask]]):
        """Execute one pending batch group, yielding ``(index, record)`` pairs."""
        if not group:
            return
        if len(group) == 1:
            index, task = group[0]
            yield index, execute_task(task)
            return
        records = execute_task_batch([task for _, task in group])
        for (index, _), record in zip(group, records):
            yield index, record
