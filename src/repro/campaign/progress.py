"""Lightweight progress and ETA reporting for campaign runs.

No dependencies, single carriage-return updated line on a stream (stderr by
default), throttled so per-task overhead stays negligible even for thousands
of sub-millisecond solver runs.  Disabled automatically when the stream is
not a terminal (e.g. CI logs, piped output) unless forced.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter", "format_duration"]


def format_duration(seconds: float) -> str:
    """Compact human-readable duration (``"4.2s"``, ``"3m12s"``, ``"1h04m"``)."""
    if seconds != seconds or seconds == float("inf"):  # nan or unbounded
        return "?"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Progress/ETA line for a fixed number of tasks.

    Parameters
    ----------
    total:
        Total number of tasks in the campaign (cached + to-execute).
    label:
        Prefix shown on the line (usually the campaign name).
    stream:
        Output stream; defaults to ``sys.stderr``.
    min_interval:
        Minimum seconds between redraws.
    enabled:
        Force the reporter on or off; by default it is active only when the
        stream is a terminal.
    """

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        stream: Optional[TextIO] = None,
        min_interval: float = 0.2,
        enabled: Optional[bool] = None,
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self.done = 0
        self.cached = 0
        self._started_at: Optional[float] = None
        self._last_render = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, cached: int = 0) -> None:
        """Begin timing; ``cached`` tasks count as already done."""
        self._started_at = time.monotonic()
        self.cached = cached
        self.done = cached
        self._render(force=True)

    def advance(self, count: int = 1) -> None:
        """Record ``count`` newly completed tasks."""
        self.done += count
        self._render()

    def finish(self) -> str:
        """Final render; returns a one-line summary."""
        summary = self.summary()
        if self.enabled:
            self._render(force=True)
            self.stream.write("\n")
            self.stream.flush()
        return summary

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0 before it)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def eta(self) -> float:
        """Estimated remaining seconds, from the executed-task throughput."""
        executed = self.done - self.cached
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if executed <= 0 or self.elapsed <= 0.0:
            return float("inf")
        return remaining * self.elapsed / executed

    def summary(self) -> str:
        """One-line completion summary."""
        parts = [f"{self.label}: {self.done}/{self.total} runs"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        parts.append(f"in {format_duration(self.elapsed)}")
        return ", ".join(parts)

    def _render(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        fraction = self.done / self.total if self.total else 1.0
        line = (
            f"\r{self.label}: {self.done}/{self.total} ({fraction:6.1%})"
            f"  elapsed {format_duration(self.elapsed)}  eta {format_duration(self.eta())}"
        )
        self.stream.write(line)
        self.stream.flush()
