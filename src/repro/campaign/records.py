"""Flat, JSON-serializable per-run results and their aggregation.

A :class:`RunRecord` is the unit the campaign runner produces, the on-disk
store persists and the analysis layer aggregates.  Records are deliberately
*flat* (scalars, strings and nested lists only) so they round-trip through
JSON lines and pickling without custom machinery, and *deterministic* given
their task -- with the single exception of :attr:`RunRecord.wall_time_s`,
which measures the host.  The canonical form (:meth:`RunRecord.canonical_dict`)
therefore excludes the wall time; two executions of the same task -- serial or
parallel, today or after a resume -- yield byte-identical canonical JSON.

Aggregation mirrors the paper's pooling discipline: statistics are computed
over the union of all per-run skew samples of a point (not averages of
per-run statistics), which requires the dense trigger-time matrices; campaigns
keep them by default (``CampaignSpec.keep_times``).

In memory the dense payloads stay numpy arrays (no conversion cost on the hot
path); serialization converts to nested lists and maps non-finite floats to
the sentinel strings ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"`` so record
files are *strict* RFC 8259 JSON lines (bare ``NaN`` tokens would be rejected
by ``jq`` and most non-Python parsers).  :meth:`RunRecord.from_json_dict`
decodes the sentinels back to floats.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.locality import inclusion_mask
from repro.analysis.skew import SkewStatistics, collect_inter_values, collect_intra_values
from repro.checks.schemas import schema
from repro.core.topology import HexGrid, NodeId
from repro.faults.models import FaultModel, NodeFault
from repro.topologies import DEFAULT_TOPOLOGY, build_topology, topology_column_wrap

__all__ = [
    "RunRecord",
    "stand_in_fault_model",
    "record_mask",
    "pooled_statistics",
    "group_by_cell",
    "group_by_point",
    "stabilization_times",
]

#: Schema tag written into every serialized record.
SCHEMA = schema("run-record")

#: Sentinel strings for non-finite floats in strict-JSON serialization.
_NONFINITE = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}


@lru_cache(maxsize=64)
def _cached_grid(topology: str, layers: int, width: int) -> HexGrid:
    """Shared grid instances for record reconstruction.

    Every record of a campaign point names the same (topology, layers,
    width), and topology construction now eagerly builds the full neighbour
    tables (degraded grids additionally re-derive their damage), so pooled
    statistics over thousands of records would rebuild identical graphs.
    Grids are immutable and equality-keyed by their identity, so sharing one
    instance per spec is safe.
    """
    return build_topology(topology, layers, width)


def _encode_json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats by their sentinel strings."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, dict):
        return {key: _encode_json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_json_safe(item) for item in value]
    return value


def _decode_json_safe(value: Any) -> Any:
    """Inverse of :func:`_encode_json_safe` (sentinel strings back to floats)."""
    if isinstance(value, str) and value in _NONFINITE:
        return _NONFINITE[value]
    if isinstance(value, dict):
        return {key: _decode_json_safe(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_json_safe(item) for item in value]
    return value


@dataclass
class RunRecord:
    """The outcome of one executed :class:`~repro.campaign.spec.RunTask`.

    Attributes
    ----------
    key:
        The task's content hash (cache identity).
    kind:
        ``"single_pulse"`` or ``"multi_pulse"``.
    cell_index, point_index, run_index:
        Position of the run within its campaign.
    params:
        Flat copy of the task parameters (grid, scenario, faults, engine,
        seed-derivation coordinates) for self-describing result files.
    skew:
        Per-run skew summary row (``hops = 0``); single-pulse runs only.
    faulty_nodes:
        The ``(layer, column)`` positions of the run's faulty nodes.
    trigger_times:
        Dense ``(L + 1, W)`` trigger-time matrix (``inf`` for never-fired,
        ``nan`` for faulty nodes) -- a numpy array when produced by the
        executor, nested lists after a JSON round trip; ``None`` when the
        campaign dropped dense payloads.
    layer0_times:
        The layer-0 firing times of the run (single-pulse, dense payload).
    stabilization_time:
        Estimated stabilization pulse (1-based; ``NaN`` when the run did not
        stabilize); multi-pulse runs only.
    total_firings:
        Total firings across all correct nodes; multi-pulse runs only.
    wall_time_s:
        Host execution time; excluded from the canonical form.
    """

    key: str
    kind: str
    cell_index: int
    point_index: int
    run_index: int
    params: Dict[str, Any] = field(default_factory=dict)
    skew: Optional[Dict[str, float]] = None
    faulty_nodes: Tuple[Tuple[int, int], ...] = ()
    trigger_times: Optional[Union[np.ndarray, List[List[float]]]] = None
    layer0_times: Optional[Union[np.ndarray, List[float]]] = None
    stabilization_time: Optional[float] = None
    total_firings: Optional[int] = None
    wall_time_s: float = 0.0

    # ------------------------------------------------------------------
    # dense-payload accessors
    # ------------------------------------------------------------------
    def trigger_matrix(self) -> np.ndarray:
        """The trigger-time matrix as a float array."""
        if self.trigger_times is None:
            raise ValueError(
                "record carries no dense trigger times (campaign ran with keep_times=False)"
            )
        return np.asarray(self.trigger_times, dtype=float)

    def make_grid(self) -> HexGrid:
        """The grid the run used (reconstructed from the recorded parameters).

        Honours the recorded ``topology`` parameter; its absence means the
        cylinder (records written before the topology layer existed carry no
        such key).  Instances are shared across records of the same spec --
        treat them as immutable.
        """
        return _cached_grid(
            self.params.get("topology", DEFAULT_TOPOLOGY),
            int(self.params["layers"]),
            int(self.params["width"]),
        )

    def column_wrap(self) -> bool:
        """Whether the record's topology wraps the column axis."""
        return topology_column_wrap(self.params.get("topology", DEFAULT_TOPOLOGY))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable representation (including wall time)."""
        payload = self.canonical_dict()
        payload["wall_time_s"] = self.wall_time_s
        return payload

    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic part of the record (drops :attr:`wall_time_s`).

        Strict-JSON safe: dense arrays become nested lists and non-finite
        floats their sentinel strings.
        """
        trigger_times = (
            np.asarray(self.trigger_times, dtype=float).tolist()
            if self.trigger_times is not None
            else None
        )
        layer0_times = (
            np.asarray(self.layer0_times, dtype=float).tolist()
            if self.layer0_times is not None
            else None
        )
        return _encode_json_safe(
            {
                "schema": SCHEMA,
                "key": self.key,
                "kind": self.kind,
                "cell_index": self.cell_index,
                "point_index": self.point_index,
                "run_index": self.run_index,
                "params": dict(self.params),
                "skew": dict(self.skew) if self.skew is not None else None,
                "faulty_nodes": [list(node) for node in self.faulty_nodes],
                "trigger_times": trigger_times,
                "layer0_times": layer0_times,
                "stabilization_time": self.stabilization_time,
                "total_firings": self.total_firings,
            }
        )

    def canonical_json(self) -> str:
        """Canonical JSON line; byte-identical across re-executions of the task."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from its (canonical or full) JSON representation."""
        payload = _decode_json_safe(payload)
        return cls(
            key=payload["key"],
            kind=payload["kind"],
            cell_index=int(payload["cell_index"]),
            point_index=int(payload["point_index"]),
            run_index=int(payload["run_index"]),
            params=dict(payload.get("params", {})),
            skew=dict(payload["skew"]) if payload.get("skew") is not None else None,
            faulty_nodes=tuple(
                (int(layer), int(column)) for layer, column in payload.get("faulty_nodes", [])
            ),
            trigger_times=payload.get("trigger_times"),
            layer0_times=payload.get("layer0_times"),
            stabilization_time=payload.get("stabilization_time"),
            total_firings=payload.get("total_firings"),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
        )


# ----------------------------------------------------------------------
# aggregation helpers (feeding repro.analysis)
# ----------------------------------------------------------------------
def stand_in_fault_model(grid: HexGrid, positions: Iterable[NodeId]) -> Optional[FaultModel]:
    """A placement-only fault model rebuilt from recorded fault positions.

    Records do not persist per-link fault behaviour (it influenced the
    simulation, not the analysis); correctness and h-hop exclusion masks
    depend only on *where* the faults sat, so a fail-silent stand-in produces
    masks identical to the original model's.
    """
    faults = [NodeFault.fail_silent(grid, node) for node in positions]
    if not faults:
        return None
    return FaultModel(grid, faults)


def record_mask(record: RunRecord, hops: int = 0) -> Optional[np.ndarray]:
    """The inclusion mask of one record for a given fault-exclusion radius."""
    if not record.faulty_nodes:
        return None
    grid = record.make_grid()
    return inclusion_mask(grid, stand_in_fault_model(grid, record.faulty_nodes), hops=hops)


def pooled_statistics(records: Sequence[RunRecord], hops: int = 0) -> SkewStatistics:
    """Pooled skew statistics over a set of single-pulse records.

    This is the paper's set-level aggregation: all per-run intra-/inter-layer
    samples are pooled before the operators are applied, exactly as
    ``RunSetResult.statistics`` did for the historical serial loops.
    """
    if not records:
        raise ValueError("at least one record is required")
    # Pool with each record's own wrap flag: a record list mixing topologies
    # (e.g. records_for(cell_index=...) across a topology axis) must drop the
    # wrap-around pair for its patch runs while keeping it for the cylinders.
    intra_chunks = []
    inter_chunks = []
    for record in records:
        times = record.trigger_matrix()
        mask = record_mask(record, hops=hops)
        wrap = record.column_wrap()
        intra_chunks.append(collect_intra_values([times], [mask], wrap=wrap))
        inter_chunks.append(collect_inter_values([times], [mask], wrap=wrap))
    return SkewStatistics.from_values(
        np.concatenate(intra_chunks), np.concatenate(inter_chunks), num_runs=len(records)
    )


def group_by_cell(records: Iterable[RunRecord]) -> Dict[int, List[RunRecord]]:
    """Records grouped by cell index (insertion-ordered, runs in task order)."""
    grouped: Dict[int, List[RunRecord]] = {}
    for record in records:
        grouped.setdefault(record.cell_index, []).append(record)
    return grouped


def group_by_point(records: Iterable[RunRecord]) -> Dict[Tuple[int, int], List[RunRecord]]:
    """Records grouped by ``(cell_index, point_index)``."""
    grouped: Dict[Tuple[int, int], List[RunRecord]] = {}
    for record in records:
        grouped.setdefault((record.cell_index, record.point_index), []).append(record)
    return grouped


def stabilization_times(records: Sequence[RunRecord]) -> np.ndarray:
    """Per-run stabilization estimates of a set of multi-pulse records."""
    times = np.full(len(records), np.nan, dtype=float)
    for index, record in enumerate(records):
        if record.stabilization_time is not None:
            times[index] = float(record.stabilization_time)
    return times
