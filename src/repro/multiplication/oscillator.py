"""Start/stoppable local oscillators.

Each HEX node owns an oscillator that can be (re)started by a HEX pulse and
stopped before the next pulse is due; its period is only accurate up to the
drift factor ``theta`` (the same bound used for the algorithm's timers).  The
designs the paper builds on (start/stoppable ring oscillators from the FATAL
project) guarantee metastability-free restart because the oscillator is
quiescent when the restart edge arrives -- which is exactly why the tick window
must be shorter than the minimum pulse separation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["StartStopOscillator"]


@dataclass
class StartStopOscillator:
    """A start/stoppable oscillator with bounded drift.

    Attributes
    ----------
    nominal_period:
        The nominal fast-clock period ``P``.
    drift:
        The oscillator's actual period is ``P * drift`` with
        ``drift in [1, theta]``; the value is fixed per oscillator instance
        (slowly varying physical parameter), not per tick.
    """

    nominal_period: float
    drift: float = 1.0

    def __post_init__(self) -> None:
        if self.nominal_period <= 0:
            raise ValueError("nominal_period must be positive")
        if self.drift < 1.0:
            raise ValueError("drift must be >= 1 (periods only stretch)")

    @classmethod
    def with_random_drift(
        cls,
        nominal_period: float,
        theta: float,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> "StartStopOscillator":
        """An oscillator whose drift is drawn uniformly from ``[1, theta]``."""
        if theta < 1.0:
            raise ValueError("theta must be >= 1")
        generator = rng if rng is not None else np.random.default_rng(seed)
        return cls(nominal_period=nominal_period, drift=float(generator.uniform(1.0, theta)))

    @property
    def period(self) -> float:
        """The actual (drifted) period."""
        return self.nominal_period * self.drift

    def ticks(self, start_time: float, num_ticks: int) -> np.ndarray:
        """The first ``num_ticks`` tick times after a restart at ``start_time``.

        The first tick occurs one period after the restart edge.
        """
        if num_ticks < 0:
            raise ValueError("num_ticks must be non-negative")
        return start_time + self.period * np.arange(1, num_ticks + 1, dtype=float)

    def ticks_within(self, start_time: float, window: float) -> np.ndarray:
        """All tick times within ``(start_time, start_time + window]``."""
        if window < 0:
            raise ValueError("window must be non-negative")
        count = int(np.floor(window / self.period))
        return self.ticks(start_time, count)
