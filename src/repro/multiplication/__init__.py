"""Frequency multiplication on top of HEX pulses (Section 5).

A naive use of HEX clocks the attached logic directly with the (relatively
infrequent) HEX pulses.  The paper's remedy is to let every node run a local
start/stoppable high-frequency oscillator that is resynchronised by each HEX
pulse and produces a fixed number of fast clock ticks within a window shorter
than the minimum pulse separation; the achievable fast-clock skew between
neighbours is the HEX skew plus a drift term of roughly
``(theta - 1) * window``.

* :mod:`repro.multiplication.oscillator` -- the start/stoppable oscillator.
* :mod:`repro.multiplication.fastclock` -- the multiplier, its skew analysis
  and the bound/measurement helpers.
"""

from repro.multiplication.fastclock import (
    FrequencyMultiplier,
    MultiplierConfig,
    fast_clock_skew_bound,
    measure_fast_clock_skew,
)
from repro.multiplication.oscillator import StartStopOscillator

__all__ = [
    "StartStopOscillator",
    "MultiplierConfig",
    "FrequencyMultiplier",
    "fast_clock_skew_bound",
    "measure_fast_clock_skew",
]
