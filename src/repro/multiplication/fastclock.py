"""Frequency multiplication: fast clocks derived from HEX pulses.

Following Section 5 (and the companion DEPEND'13 paper the authors cite), each
node restarts its local oscillator on every HEX pulse and lets it produce a
fixed number ``m`` of fast ticks inside a window ``Delta_min`` that must be
shorter than the minimum pulse-separation time observed at the node.  The
fast-clock skew between two neighbouring nodes for the ``j``-th tick after
pulse ``k`` is then

    ``|t^{(k)}_{v} - t^{(k)}_{w}|  +  j * |P_v - P_w|
      <=  sigma_HEX + (theta - 1) * Delta_min``

i.e. the HEX pulse skew plus a drift term proportional to the window length --
the trade-off that prevents making ``Delta_min`` (and hence the number of fast
ticks per pulse) arbitrarily large.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.topology import HexGrid, NodeId
from repro.multiplication.oscillator import StartStopOscillator

__all__ = [
    "MultiplierConfig",
    "FrequencyMultiplier",
    "fast_clock_skew_bound",
    "measure_fast_clock_skew",
]


@dataclass(frozen=True)
class MultiplierConfig:
    """Configuration of the frequency multiplication scheme.

    Attributes
    ----------
    multiplication_factor:
        Number of fast ticks ``m`` generated per HEX pulse.
    nominal_period:
        Nominal fast-clock period ``P``.
    theta:
        Oscillator drift bound.
    window:
        The tick window ``Delta_min``; must accommodate ``m`` ticks even for the
        slowest oscillator, i.e. ``window >= m * P * theta``.
    """

    multiplication_factor: int
    nominal_period: float
    theta: float = 1.05
    window: Optional[float] = None

    def __post_init__(self) -> None:
        if self.multiplication_factor < 1:
            raise ValueError("multiplication_factor must be >= 1")
        if self.nominal_period <= 0:
            raise ValueError("nominal_period must be positive")
        if self.theta < 1.0:
            raise ValueError("theta must be >= 1")
        if self.window is not None and self.window < self.min_window:
            raise ValueError(
                f"window {self.window} too short for {self.multiplication_factor} ticks "
                f"of the slowest oscillator (needs >= {self.min_window})"
            )

    @property
    def min_window(self) -> float:
        """The smallest window that fits ``m`` ticks of the slowest oscillator."""
        return self.multiplication_factor * self.nominal_period * self.theta

    @property
    def effective_window(self) -> float:
        """The window used by the scheme (explicit value or the minimum)."""
        return self.window if self.window is not None else self.min_window


def fast_clock_skew_bound(hex_skew: float, config: MultiplierConfig) -> float:
    """Worst-case fast-clock skew between neighbours.

    ``sigma_fast <= sigma_HEX + (theta - 1) * window`` (Section 5).
    """
    if hex_skew < 0:
        raise ValueError("hex_skew must be non-negative")
    return hex_skew + (config.theta - 1.0) * config.effective_window


class FrequencyMultiplier:
    """Per-node oscillators generating fast ticks from HEX pulses.

    Parameters
    ----------
    grid:
        The HEX grid (defines which nodes get an oscillator).
    config:
        Multiplication parameters.
    rng, seed:
        Randomness for the per-node oscillator drifts.
    """

    def __init__(
        self,
        grid: HexGrid,
        config: MultiplierConfig,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.grid = grid
        self.config = config
        generator = rng if rng is not None else np.random.default_rng(seed)
        self.oscillators: Dict[NodeId, StartStopOscillator] = {
            node: StartStopOscillator.with_random_drift(
                config.nominal_period, config.theta, rng=generator
            )
            for node in grid.nodes()
        }

    def fast_ticks(self, node: NodeId, pulse_time: float) -> np.ndarray:
        """The ``m`` fast tick times of ``node`` for a HEX pulse at ``pulse_time``."""
        node = self.grid.validate_node(node)
        oscillator = self.oscillators[node]
        return oscillator.ticks(pulse_time, self.config.multiplication_factor)

    def fast_ticks_from_matrix(self, trigger_times: np.ndarray) -> np.ndarray:
        """Fast tick times of every node from a trigger-time matrix.

        Returns an array of shape ``(L + 1, W, m)``; rows of faulty/untriggered
        nodes are ``nan``.
        """
        trigger_times = np.asarray(trigger_times, dtype=float)
        if trigger_times.shape != self.grid.shape:
            raise ValueError(
                f"trigger_times shape {trigger_times.shape} does not match grid {self.grid.shape}"
            )
        result = np.full(
            (self.grid.layers + 1, self.grid.width, self.config.multiplication_factor),
            np.nan,
            dtype=float,
        )
        for layer, column in self.grid.nodes():
            pulse_time = trigger_times[layer, column]
            if np.isfinite(pulse_time):
                result[layer, column, :] = self.fast_ticks((layer, column), pulse_time)
        return result


def measure_fast_clock_skew(
    grid: HexGrid,
    trigger_times: np.ndarray,
    multiplier: FrequencyMultiplier,
    correct_mask: Optional[np.ndarray] = None,
) -> Tuple[float, float]:
    """Maximum and average fast-clock skew between grid neighbours.

    For every pair of neighbouring nodes (intra-layer and inter-layer) and
    every tick index ``j``, the skew of the ``j``-th fast ticks is computed;
    the maximum and mean over all pairs and ticks are returned.
    """
    ticks = multiplier.fast_ticks_from_matrix(trigger_times)
    if correct_mask is not None:
        ticks[~correct_mask, :] = np.nan

    diffs: List[np.ndarray] = []
    # Intra-layer neighbours.
    diffs.append(np.abs(ticks - np.roll(ticks, -1, axis=1)))
    # Inter-layer neighbours (lower-left and lower-right).
    lower_left = np.abs(ticks[1:, :, :] - ticks[:-1, :, :])
    lower_right = np.abs(ticks[1:, :, :] - np.roll(ticks[:-1, :, :], -1, axis=1))
    diffs.append(lower_left)
    diffs.append(lower_right)

    pooled = np.concatenate([d.ravel() for d in diffs])
    pooled = pooled[np.isfinite(pooled)]
    if pooled.size == 0:
        return (float("nan"), float("nan"))
    return (float(pooled.max()), float(pooled.mean()))
