"""Topology protocol, spec grammar and registry.

The paper's headline claim is about *scaling*: HEX's skew and fault tolerance
are supposed to degrade gracefully with grid size, boundary conditions and
structural damage -- none of which can be explored while every run is pinned
to the one cylindrical :class:`~repro.core.topology.HexGrid`.  This module
makes grid shape a first-class, sweepable axis, mirroring the
:mod:`repro.engines` registry pattern:

* :class:`Topology` -- the (runtime-checkable) protocol every grid family
  implements: node/link enumeration, in-/out-neighbour tables keyed by
  :class:`~repro.core.topology.Direction` roles, layer structure and
  width/depth metadata, a presence mask for structurally missing nodes, and
  distance helpers.  :class:`~repro.core.topology.HexGrid` is the reference
  implementation; the other families subclass it and override the single
  neighbour rule.

* :class:`TopologySpec` -- a frozen, canonically-stringified description of a
  topology *family plus its parameters* (e.g. ``"torus"`` or
  ``"degraded:links=2,nodes=3,seed=7"``).  The string form is what rides in
  :class:`~repro.engines.base.RunSpec` and sweeps as a campaign axis; params
  equal to their defaults are dropped, so every spelling of a topology hashes
  identically.

* **Registry** -- :func:`register_topology` / :func:`get_topology` /
  :func:`available_topologies` / :func:`build_topology`.  Families validate
  their dimension lower bounds at registration-declared thresholds
  (:func:`validate_topology`), so degenerate grids fail with actionable
  errors before any placement or simulation work starts.

* **Fault-capacity predicate** -- :func:`condition1_fault_capacity` computes
  a deterministic greedy packing of Condition-1-separated faults, giving a
  concrete lower bound on how many faults a topology instance can host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.core.topology import Direction, LinkId, NodeId

__all__ = [
    "Topology",
    "TopologySpec",
    "TopologyFamily",
    "register_topology",
    "unregister_topology",
    "get_topology",
    "available_topologies",
    "build_topology",
    "canonical_topology",
    "validate_topology",
    "topology_column_wrap",
    "condition1_fault_capacity",
    "condition1_forbidden_region",
]


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
@runtime_checkable
class Topology(Protocol):
    """What the simulation stack consumes from a grid topology.

    The solver, the DES network, fault placement and the adversary layer all
    program against this surface; :class:`~repro.core.topology.HexGrid`
    provides the reference implementation and the other families inherit it.
    """

    family: str
    column_wrap: bool

    @property
    def layers(self) -> int: ...

    @property
    def width(self) -> int: ...

    @property
    def num_nodes(self) -> int: ...

    @property
    def shape(self) -> Tuple[int, int]: ...

    def nodes(self) -> Iterator[NodeId]: ...

    def forwarding_nodes(self) -> Iterator[NodeId]: ...

    def source_nodes(self) -> List[NodeId]: ...

    def validate_node(self, node: NodeId) -> NodeId: ...

    def in_neighbors(self, node: NodeId) -> Dict[Direction, NodeId]: ...

    def out_neighbors(self, node: NodeId) -> Dict[Direction, NodeId]: ...

    def neighbor(self, node: NodeId, direction: Direction) -> Optional[NodeId]: ...

    def direction_between(self, source: NodeId, destination: NodeId) -> Direction: ...

    def links(self) -> Iterator[LinkId]: ...

    def presence_mask(self) -> np.ndarray: ...

    def cyclic_column_distance(self, i: int, j: int) -> int: ...

    def node_distance(self, a: NodeId, b: NodeId) -> int: ...


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
def _coerce_param(value: str) -> Union[int, str]:
    """Parse a spec-string parameter value (integers stay integers)."""
    try:
        return int(value)
    except ValueError:
        return value


@dataclass(frozen=True)
class TopologySpec:
    """A topology family plus its canonicalised parameters.

    The string grammar is ``family`` or ``family:key=value,key=value`` with
    keys sorted and parameters equal to their registered defaults omitted --
    so ``"degraded"``, ``"degraded:base=cylinder"`` and
    ``"degraded:nodes=0"`` all canonicalise to ``"degraded"`` and hash
    identically wherever the string rides (RunSpec content keys, sweep axes,
    cache shards).
    """

    family: str
    params: Tuple[Tuple[str, Union[int, str]], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "family", str(self.family))
        object.__setattr__(
            self,
            "params",
            tuple(sorted((str(key), value) for key, value in self.params)),
        )

    @classmethod
    def parse(cls, text: Union[str, "TopologySpec"]) -> "TopologySpec":
        """Parse a spec string (idempotent on :class:`TopologySpec` inputs)."""
        if isinstance(text, TopologySpec):
            return text
        text = str(text).strip()
        if not text:
            raise ValueError("topology spec must be non-empty")
        family, _, param_text = text.partition(":")
        params: List[Tuple[str, Union[int, str]]] = []
        if param_text:
            for item in param_text.split(","):
                key, sep, value = item.partition("=")
                if not sep or not key or not value:
                    raise ValueError(
                        f"malformed topology parameter {item!r} in {text!r}; "
                        "expected family:key=value,key=value"
                    )
                params.append((key.strip(), _coerce_param(value.strip())))
        return cls(family=family.strip(), params=tuple(params))

    def to_string(self) -> str:
        """The canonical string form (sorted keys, defaults dropped)."""
        family = get_topology(self.family)
        kept = [
            f"{key}={value}"
            for key, value in self.params
            if family.param_defaults.get(key, object()) != value
        ]
        if not kept:
            return self.family
        return f"{self.family}:{','.join(kept)}"

    def param_dict(self) -> Dict[str, Union[int, str]]:
        """Parameters as a plain dict (registered defaults filled in)."""
        family = get_topology(self.family)
        merged: Dict[str, Union[int, str]] = dict(family.param_defaults)
        for key, value in self.params:
            if key not in family.param_defaults:
                raise ValueError(
                    f"unknown parameter {key!r} for topology family "
                    f"{self.family!r}; known parameters: "
                    f"{sorted(family.param_defaults) or '(none)'}"
                )
            merged[key] = value
        return merged

    def build(self, layers: int, width: int) -> Topology:
        """Instantiate the topology on an ``L x W`` grid."""
        family = get_topology(self.family)
        family.validate(layers, width, self.param_dict())
        return family.builder(layers, width, **self.param_dict())


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologyFamily:
    """One registered topology family.

    Attributes
    ----------
    name:
        Registry key (the ``family`` part of spec strings).
    builder:
        ``builder(layers, width, **params) -> Topology``.
    description:
        One-line summary shown by ``hex-repro topologies``.
    min_layers, min_width:
        Dimension lower bounds, validated with actionable errors *before*
        construction (and again by the constructors themselves).
    dimension_rationale:
        Why the bounds exist; appended to the validation error.
    param_defaults:
        Known parameters with their default values (used for canonical
        spec-string emission and unknown-parameter rejection).
    """

    name: str
    builder: Callable[..., Topology]
    description: str = ""
    min_layers: int = 1
    min_width: int = 3
    dimension_rationale: str = ""
    param_defaults: Dict[str, Union[int, str]] = field(default_factory=dict)

    def validate(self, layers: int, width: int, params: Dict[str, Union[int, str]]) -> None:
        """Reject degenerate dimensions with an actionable error."""
        if layers < self.min_layers or width < self.min_width:
            rationale = f" ({self.dimension_rationale})" if self.dimension_rationale else ""
            raise ValueError(
                f"topology {self.name!r} needs layers >= {self.min_layers} and "
                f"width >= {self.min_width}, got L={layers}, W={width}{rationale}"
            )


_REGISTRY: Dict[str, TopologyFamily] = {}


def register_topology(family: TopologyFamily, replace: bool = False) -> TopologyFamily:
    """Register a topology family under its name.

    Mirrors :func:`repro.engines.register_engine`: duplicate names are an
    error unless ``replace=True`` (which keeps repeated imports idempotent).
    """
    if family.name in _REGISTRY and not replace:
        raise ValueError(
            f"topology {family.name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[family.name] = family
    return family


def unregister_topology(name: str) -> None:
    """Remove a topology registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_topology(name: str) -> TopologyFamily:
    """Look up a topology family by name.

    Raises
    ------
    ValueError
        With the list of registered families when ``name`` is unknown -- the
        single early validation point for every ``topology=`` / ``--topology``
        value in the code base.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; available topologies: "
            f"{', '.join(available_topologies()) or '(none registered)'}"
        ) from None


def available_topologies() -> Tuple[str, ...]:
    """The registered topology family names, sorted."""
    return tuple(sorted(_REGISTRY))


def canonical_topology(value: Union[str, TopologySpec]) -> str:
    """The canonical spec string of any accepted topology spelling."""
    return TopologySpec.parse(value).to_string()


def validate_topology(value: Union[str, TopologySpec], layers: int, width: int) -> TopologySpec:
    """Parse a spec and validate family, parameters and dimension bounds.

    Cheap (no neighbour tables are built); used by :class:`RunSpec` and
    :class:`SweepSpec` so a bad topology/dimension pairing fails at
    spec-construction time, not mid-campaign.
    """
    spec = TopologySpec.parse(value)
    family = get_topology(spec.family)
    params = spec.param_dict()
    family.validate(layers, width, params)
    if spec.family == "degraded":
        base = TopologySpec.parse(str(params.get("base", "cylinder")))
        if base.family == "degraded":
            raise ValueError(
                "cannot degrade a degraded topology; raise the nodes=/links= "
                "damage counts of a single degraded spec instead"
            )
        get_topology(base.family).validate(layers, width, base.param_dict())
    return spec


def build_topology(value: Union[str, TopologySpec], layers: int, width: int) -> Topology:
    """Build a topology instance from any accepted spelling."""
    return TopologySpec.parse(value).build(layers, width)


def topology_column_wrap(value: Union[str, TopologySpec]) -> bool:
    """Whether a topology spec's column axis wraps (without building it).

    The open-boundary patch -- directly or as the base of a degraded grid --
    is the only family without the wrap; the skew analysis uses this to drop
    the non-adjacent wrap-around column pair.
    """
    spec = TopologySpec.parse(value)
    if spec.family == "patch":
        return False
    if spec.family == "degraded":
        return topology_column_wrap(str(spec.param_dict().get("base", "cylinder")))
    return True


# ----------------------------------------------------------------------
# Condition-1 fault capacity
# ----------------------------------------------------------------------
def condition1_forbidden_region(topology: Topology, node: NodeId) -> Set[NodeId]:
    """In-neighbours of out-neighbours of ``node`` (the Condition 1 zone).

    A second fault at node ``v`` would violate Condition 1 exactly if some
    node has both ``node`` and ``v`` among its in-neighbours; ``node`` itself
    is not part of the returned set.  This is the single home of the
    exclusion-zone logic -- :func:`repro.faults.placement.forbidden_region`
    (the historical public name) delegates here after canonicalising the
    node, so the capacity bound below and the placement loop can never
    drift apart.
    """
    region: Set[NodeId] = set()
    for out_neighbor in topology.out_neighbors(node).values():
        for in_neighbor in topology.in_neighbors(out_neighbor).values():
            if in_neighbor != node:
                region.add(in_neighbor)
    return region


def condition1_fault_capacity(topology: Topology, include_layer0: bool = False) -> int:
    """A deterministic lower bound on the Condition-1 fault capacity.

    Greedily packs faults in sorted node order, excluding each placement's
    forbidden region.  Any fault count up to the returned value is guaranteed
    to be placeable; random placement may admit more (the greedy order is not
    optimal) but the bound gives campaigns and the CLI a concrete,
    topology-aware "how many faults fit" answer instead of the paper's
    asymptotic ``Theta(sqrt(n))`` heuristic.
    """
    admissible: Set[NodeId] = {
        node for node in topology.nodes() if include_layer0 or node[0] > 0
    }
    capacity = 0
    while admissible:
        choice = min(admissible)
        capacity += 1
        admissible.discard(choice)
        admissible -= condition1_forbidden_region(topology, choice)
    return capacity
