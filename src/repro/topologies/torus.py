"""The hex torus: both grid axes wrap.

The cylinder of the paper wraps only the column axis; the torus additionally
wraps the layer axis modulo ``L + 1``.  Layer 0 remains the externally driven
clock-source layer (its nodes never execute Algorithm 1), but the wrap links
exist physically:

* layer-0 nodes gain *in*-neighbours on layer ``L`` (``LOWER_LEFT`` /
  ``LOWER_RIGHT``) -- they never listen, but Condition 1 now couples faults
  on layer ``L`` to the sources' neighbourhoods, exactly as a closed fabric
  would;
* layer-``L`` nodes gain *out*-neighbours on layer 0 (``UPPER_LEFT`` /
  ``UPPER_RIGHT``) -- their broadcasts onto the source layer are absorbed
  (sources have no automaton), but a Byzantine layer-``L`` node now draws
  per-link behaviour for four outgoing links instead of two.

The net effect is a boundary-free fabric: no rim layer with reduced degree,
uniform Condition-1 forbidden regions everywhere, and fault-capacity numbers
that differ measurably from the cylinder's at equal size.
"""

from __future__ import annotations

from typing import Optional

from repro.core.topology import Direction, HexGrid, NodeId

__all__ = ["HexTorus"]


class HexTorus(HexGrid):
    """Hexagonal grid with both axes cyclic (layers mod ``L + 1``).

    Requires ``layers >= 2``: with a single forwarding layer the wrapped
    lower and upper neighbours of a node would coincide, making the
    direction role of a link ambiguous.
    """

    family = "torus"

    def __init__(self, layers: int, width: int) -> None:
        if layers < 2:
            raise ValueError(
                f"hex torus needs at least two forwarding layers, got L={layers}: "
                "with L=1 the layer wrap makes a node's lower and upper "
                "neighbours coincide, so link direction roles would be "
                "ambiguous -- use the cylinder for single-layer grids"
            )
        super().__init__(layers=layers, width=width)

    def wrap_layer(self, layer: int) -> int:
        """Reduce a layer index modulo ``L + 1``."""
        return layer % (self.layers + 1)

    def _raw_neighbor(self, layer: int, column: int, direction: Direction) -> Optional[NodeId]:
        if direction is Direction.LEFT:
            if layer == 0:
                return None
            return (layer, self.wrap_column(column - 1))
        if direction is Direction.RIGHT:
            if layer == 0:
                return None
            return (layer, self.wrap_column(column + 1))
        if direction is Direction.LOWER_LEFT:
            return (self.wrap_layer(layer - 1), column)
        if direction is Direction.LOWER_RIGHT:
            return (self.wrap_layer(layer - 1), self.wrap_column(column + 1))
        if direction is Direction.UPPER_LEFT:
            return (self.wrap_layer(layer + 1), self.wrap_column(column - 1))
        if direction is Direction.UPPER_RIGHT:
            return (self.wrap_layer(layer + 1), column)
        raise ValueError(f"unknown direction {direction!r}")  # pragma: no cover

    def node_distance(self, a: NodeId, b: NodeId) -> int:
        """Layer distance also wraps on the torus."""
        (la, ca) = self.validate_node(a)
        (lb, cb) = self.validate_node(b)
        rows = self.layers + 1
        layer_gap = abs(la - lb)
        return min(layer_gap, rows - layer_gap) + self.cyclic_column_distance(ca, cb)

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Undirected hop distance with both axes wrapping.

        One undirected hex step changes ``(layer, column)`` by ``(0, +-1)``,
        ``(+1, 0 or -1)`` or ``(-1, 0 or +1)`` (all modulo).  Moving up ``k``
        layers can shift the column by any amount in ``[-k, 0]``; moving down
        ``k`` layers by any amount in ``[0, k]``.  The minimum over the three
        layer-displacement interpretations (direct, wrap up, wrap down) is
        exact.
        """
        (la, ca) = self.validate_node(a)
        (lb, cb) = self.validate_node(b)
        rows = self.layers + 1
        best: int | None = None
        for dl in (lb - la, lb - la - rows, lb - la + rows):
            steps = abs(dl)
            shifts = range(-steps, 1) if dl >= 0 else range(0, steps + 1)
            for shift in shifts:
                lateral = self.cyclic_column_distance((ca + shift) % self.width, cb)
                total = steps + lateral
                if steps == 0 and la == 0 and lateral > 0:
                    # No intra-layer links on the source layer: a purely
                    # lateral path must detour through a neighbouring layer.
                    total += 1
                if best is None or total < best:
                    best = total
        assert best is not None
        return best

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"HexTorus(layers={self.layers}, width={self.width})"
