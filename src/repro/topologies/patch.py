"""The bounded planar patch: an open column boundary.

Physically a HEX fabric need not close into a cylinder -- a rectangular die
region is a *patch* whose leftmost and rightmost columns form a rim with
reduced degree:

* column ``0`` loses its ``LEFT`` in-link and ``UPPER_LEFT`` out-link,
* column ``W - 1`` loses ``RIGHT``, ``LOWER_RIGHT`` and the corresponding
  outgoing wrap links.

Rim nodes therefore satisfy fewer of Algorithm 1's three firing guards
(column ``W - 1`` only the *left* guard, column ``0`` only the *central* and
*right* guards), which is exactly the degradation the topology sweep is
meant to measure: skew grows toward the rim and single faults can silence a
rim node outright.

Column indices are *not* wrapped: :meth:`HexPatch.wrap_column` is the
identity and :meth:`validate_node` rejects out-of-range columns instead of
reducing them.
"""

from __future__ import annotations

from typing import Optional

from repro.core.topology import Direction, HexGrid, NodeId

__all__ = ["HexPatch"]


class HexPatch(HexGrid):
    """Hexagonal grid with an open (non-wrapping) column boundary.

    Requires ``width >= 4``: with 3 columns both rim columns touch the single
    interior column, every node sits on the rim, and a single fault can
    disconnect the patch -- placements would be silently degenerate rather
    than merely rim-affected.
    """

    family = "patch"
    column_wrap = False

    def __init__(self, layers: int, width: int) -> None:
        if width < 4:
            raise ValueError(
                f"hex patch needs at least 4 columns, got W={width}: with only "
                "3 columns every node is a reduced-degree rim node and a "
                "single fault can cut the patch -- Condition 1 placements "
                "would be degenerate; use width >= 4 (or the cylinder)"
            )
        super().__init__(layers=layers, width=width)

    def wrap_column(self, column: int) -> int:
        """Identity: the patch's column axis does not wrap."""
        return column

    def validate_node(self, node: NodeId) -> NodeId:
        """Range-check both coordinates (no column reduction on the patch)."""
        layer, column = node
        if not 0 <= layer <= self.layers:
            raise ValueError(
                f"layer index {layer} out of range [0, {self.layers}] for {self!r}"
            )
        if not 0 <= column < self.width:
            raise ValueError(
                f"column index {column} out of range [0, {self.width}) for "
                f"{self!r} (the patch has an open boundary; columns do not wrap)"
            )
        return (layer, column)

    def _raw_neighbor(self, layer: int, column: int, direction: Direction) -> Optional[NodeId]:
        if direction is Direction.LEFT:
            if layer == 0 or column == 0:
                return None
            return (layer, column - 1)
        if direction is Direction.RIGHT:
            if layer == 0 or column == self.width - 1:
                return None
            return (layer, column + 1)
        if direction is Direction.LOWER_LEFT:
            if layer == 0:
                return None
            return (layer - 1, column)
        if direction is Direction.LOWER_RIGHT:
            if layer == 0 or column == self.width - 1:
                return None
            return (layer - 1, column + 1)
        if direction is Direction.UPPER_LEFT:
            if layer == self.layers or column == 0:
                return None
            return (layer + 1, column - 1)
        if direction is Direction.UPPER_RIGHT:
            if layer == self.layers:
                return None
            return (layer + 1, column)
        raise ValueError(f"unknown direction {direction!r}")  # pragma: no cover

    def condition2_extra_hops(self) -> int:
        """Rim nodes are laterally triggered: one extra ``d+`` of guard skew."""
        return 1

    def cyclic_column_distance(self, i: int, j: int) -> int:
        """Plain column distance (the open boundary has no wrap shortcut)."""
        return abs(i - j)

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Undirected hop distance on the open-boundary patch."""
        (la, ca) = self.validate_node(a)
        (lb, cb) = self.validate_node(b)
        if la == lb == 0 and ca != cb:
            # No intra-layer links on the source layer: detour through layer 1.
            return abs(ca - cb) + 1
        if lb < la:
            (la, ca), (lb, cb) = (lb, cb), (la, ca)
        dl = lb - la
        best: Optional[int] = None
        for shift in range(-dl, 1):
            target = ca + shift
            if not 0 <= target < self.width:
                continue
            total = dl + abs(target - cb)
            if best is None or total < best:
                best = total
        assert best is not None
        return best

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"HexPatch(layers={self.layers}, width={self.width})"
