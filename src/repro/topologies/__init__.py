"""Pluggable grid topologies: one protocol, one spec grammar, one registry.

Mirrors the :mod:`repro.engines` pattern for the *shape* axis of a run:

* :class:`~repro.topologies.base.Topology` -- the protocol the simulation
  stack consumes (:class:`~repro.core.topology.HexGrid` is the reference
  implementation);
* :class:`~repro.topologies.base.TopologySpec` -- canonical
  ``family[:key=value,...]`` spec strings that ride inside
  :class:`~repro.engines.base.RunSpec` and sweep as campaign axes;
* the registry -- :func:`register_topology` / :func:`get_topology` /
  :func:`available_topologies` / :func:`build_topology`.

Built-in families: ``cylinder`` (the paper's grid, byte-identical to the
historical :class:`HexGrid`), ``torus`` (both axes wrap), ``patch`` (open
column boundary, reduced-degree rim) and ``degraded`` (seeded punctured
nodes / severed links on any base).

>>> from repro.core.topology import Direction
>>> from repro.topologies import build_topology
>>> torus = build_topology("torus", layers=4, width=5)
>>> torus.in_neighbors((0, 0))[Direction.LOWER_LEFT]
(4, 0)
"""

from repro.core.topology import HexGrid
from repro.topologies.base import (
    Topology,
    TopologyFamily,
    TopologySpec,
    available_topologies,
    build_topology,
    canonical_topology,
    condition1_fault_capacity,
    condition1_forbidden_region,
    get_topology,
    register_topology,
    topology_column_wrap,
    unregister_topology,
    validate_topology,
)
from repro.topologies.degraded import DegradedGrid
from repro.topologies.patch import HexPatch
from repro.topologies.torus import HexTorus

__all__ = [
    "Topology",
    "TopologyFamily",
    "TopologySpec",
    "HexGrid",
    "HexTorus",
    "HexPatch",
    "DegradedGrid",
    "register_topology",
    "unregister_topology",
    "get_topology",
    "available_topologies",
    "build_topology",
    "canonical_topology",
    "validate_topology",
    "topology_column_wrap",
    "condition1_fault_capacity",
    "condition1_forbidden_region",
    "DEFAULT_TOPOLOGY",
]

#: The default topology of every spec that does not name one: the paper's
#: cylinder.  Specs carrying this value are canonically serialized *without*
#: a topology field, so pre-topology content keys stay byte-identical.
DEFAULT_TOPOLOGY = "cylinder"

# Built-in registrations.  ``replace=True`` keeps repeated imports (e.g. a
# reloaded module in an interactive session) idempotent.
register_topology(
    TopologyFamily(
        name="cylinder",
        builder=HexGrid,
        description="the paper's cylindric hex grid (column axis wraps)",
        min_layers=1,
        min_width=3,
        dimension_rationale="every node needs four distinct in-neighbours",
    ),
    replace=True,
)
register_topology(
    TopologyFamily(
        name="torus",
        builder=HexTorus,
        description="hex torus: both axes wrap, no boundary layers",
        min_layers=2,
        min_width=3,
        dimension_rationale=(
            "with L=1 the layer wrap makes lower and upper neighbours coincide"
        ),
    ),
    replace=True,
)
register_topology(
    TopologyFamily(
        name="patch",
        builder=HexPatch,
        description="bounded planar patch: open column boundary, reduced-degree rim",
        min_layers=1,
        min_width=4,
        dimension_rationale=(
            "with W=3 every node is a rim node and one fault can cut the patch"
        ),
    ),
    replace=True,
)
register_topology(
    TopologyFamily(
        name="degraded",
        builder=DegradedGrid,
        description="seeded punctured-node / severed-link damage on any base topology",
        min_layers=1,
        min_width=3,
        dimension_rationale="bounds of the base family apply on top",
        param_defaults={"base": "cylinder", "nodes": 0, "links": 0, "seed": 0},
    ),
    replace=True,
)
