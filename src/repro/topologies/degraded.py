"""Degraded grids: seeded structural damage on any base topology.

A degraded grid is a base topology (cylinder, torus or patch) with

* ``nodes`` *punctured* forwarding nodes -- the node slot exists (dense
  arrays keep their ``(L + 1, W)`` shape) but the node is physically absent:
  it never executes, never fires, and all its incident links are gone.  Its
  matrix entries carry ``nan`` via :meth:`DegradedGrid.presence_mask`.
* ``links`` *severed* directed links between otherwise-present nodes -- the
  wire is cut, only that one direction of the connection disappears.

Damage is **structural, not behavioural**: unlike a fail-silent fault, a
punctured node is excluded from placements, statistics and Condition 1 alike
-- it is simply not part of the graph.  The damage set is drawn once at
construction from ``numpy.random.default_rng(seed)`` (the *damage seed*,
independent of any run's seed stream), so a degraded topology's spec string
``degraded:base=...,nodes=...,links=...,seed=...`` fully determines the
graph and two builds of the same spec compare equal.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

import numpy as np

from repro.core.topology import Direction, HexGrid, LinkId, NodeId
from repro.topologies.base import TopologySpec, build_topology, canonical_topology

__all__ = ["DegradedGrid"]

#: Largest tolerated damage fractions; beyond these the grid is more hole
#: than fabric and placements/statistics become degenerate.
_MAX_NODE_DAMAGE = 0.25
_MAX_LINK_DAMAGE = 0.25


class DegradedGrid(HexGrid):
    """A base topology with seeded punctured nodes and severed links.

    Parameters
    ----------
    layers, width:
        Dimensions of the base grid.
    base:
        Spec string of the base family (``"cylinder"``, ``"torus"`` or
        ``"patch"``; degrading a degraded grid is rejected -- increase the
        damage counts instead).
    nodes:
        Number of forwarding nodes to puncture (layer-0 sources are never
        punctured; a sourceless column would trivialise every experiment).
    links:
        Number of additional directed links to sever between present nodes.
    seed:
        The damage seed; part of the topology's identity.
    """

    family = "degraded"

    def __init__(
        self,
        layers: int,
        width: int,
        base: str = "cylinder",
        nodes: int = 0,
        links: int = 0,
        seed: int = 0,
    ) -> None:
        base_spec = canonical_topology(base)
        if TopologySpec.parse(base_spec).family == "degraded":
            raise ValueError(
                "cannot degrade a degraded topology; raise the nodes=/links= "
                "damage counts of a single degraded spec instead"
            )
        nodes, links, seed = int(nodes), int(links), int(seed)
        if nodes < 0 or links < 0:
            raise ValueError(
                f"damage counts must be non-negative, got nodes={nodes}, links={links}"
            )
        base_grid = build_topology(base_spec, layers, width)
        self._base: HexGrid = base_grid  # type: ignore[assignment]
        self._dims = base_grid.dimensions
        self._damage: Tuple[str, int, int, int] = (base_spec, nodes, links, seed)
        self.column_wrap = base_grid.column_wrap

        num_forwarding = self._dims.num_forwarding_nodes
        max_nodes = int(num_forwarding * _MAX_NODE_DAMAGE)
        if nodes > max_nodes:
            raise ValueError(
                f"cannot puncture {nodes} of {num_forwarding} forwarding nodes: "
                f"damage beyond {_MAX_NODE_DAMAGE:.0%} (here {max_nodes}) leaves "
                "more hole than fabric and makes Condition 1 placements and "
                "skew statistics degenerate -- use a larger grid or fewer holes"
            )

        damage_rng = np.random.default_rng(seed)
        forwarding = sorted(base_grid.forwarding_nodes())
        picked = (
            damage_rng.choice(len(forwarding), size=nodes, replace=False)
            if nodes
            else np.empty(0, dtype=int)
        )
        self._punctured: Set[NodeId] = {forwarding[int(index)] for index in picked}

        link_pool: List[LinkId] = sorted(
            (source, destination)
            for source, destination in base_grid.links()
            if source not in self._punctured and destination not in self._punctured
        )
        max_links = int(len(link_pool) * _MAX_LINK_DAMAGE)
        if links > max_links:
            raise ValueError(
                f"cannot sever {links} of {len(link_pool)} remaining links: "
                f"damage beyond {_MAX_LINK_DAMAGE:.0%} (here {max_links}) "
                "disconnects the fabric -- use a larger grid or fewer cuts"
            )
        picked_links = (
            damage_rng.choice(len(link_pool), size=links, replace=False)
            if links
            else np.empty(0, dtype=int)
        )
        self._severed: Set[LinkId] = {link_pool[int(index)] for index in picked_links}

        self._build_filtered_tables(base_grid)

    # ------------------------------------------------------------------
    # table construction (filtered copies of the base's tables)
    # ------------------------------------------------------------------
    def _build_filtered_tables(self, base_grid: HexGrid) -> None:
        self._in_tables: Dict[NodeId, Dict[Direction, NodeId]] = {}
        self._out_tables: Dict[NodeId, Dict[Direction, NodeId]] = {}
        self._all_tables: Dict[NodeId, Dict[Direction, NodeId]] = {}
        self._link_directions: Dict[LinkId, Direction] = {}
        punctured = self._punctured
        severed = self._severed
        for node in base_grid.nodes():
            if node in punctured:
                self._in_tables[node] = {}
                self._out_tables[node] = {}
                self._all_tables[node] = {}
                continue
            ins = {
                direction: source
                for direction, source in base_grid.in_neighbors(node).items()
                if source not in punctured and (source, node) not in severed
            }
            outs = {
                direction: destination
                for direction, destination in base_grid.out_neighbors(node).items()
                if destination not in punctured and (node, destination) not in severed
            }
            self._in_tables[node] = ins
            self._out_tables[node] = outs
            # A direction remains "occupied" while either orientation of the
            # connection survives (neighbor()/all_neighbors() report structure,
            # not per-orientation wiring).
            self._all_tables[node] = {
                direction: neighbor
                for direction, neighbor in base_grid.all_neighbors(node).items()
                if direction in ins or direction in outs
            }
        for node, ins in self._in_tables.items():
            for direction, source in ins.items():
                self._link_directions[(source, node)] = direction

    # ------------------------------------------------------------------
    # damage introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> HexGrid:
        """The intact base topology the damage was applied to."""
        return self._base

    def punctured_nodes(self) -> List[NodeId]:
        """The punctured (absent) nodes, sorted."""
        return sorted(self._punctured)

    def severed_links(self) -> List[LinkId]:
        """The severed directed links (between present nodes), sorted."""
        return sorted(self._severed)

    def is_present(self, node: NodeId) -> bool:
        """Whether the node physically exists (i.e. is not punctured)."""
        return self.validate_node(node) not in self._punctured

    @property
    def num_present_nodes(self) -> int:
        """Number of physically present nodes."""
        return self._dims.num_nodes - len(self._punctured)

    def presence_mask(self) -> np.ndarray:
        mask = np.ones(self.shape, dtype=bool)
        for layer, column in self._punctured:
            mask[layer, column] = False
        return mask

    # ------------------------------------------------------------------
    # node enumeration (punctured slots skipped)
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[NodeId]:
        for node in self._base.nodes():
            if node not in self._punctured:
                yield node

    def forwarding_nodes(self) -> Iterator[NodeId]:
        for node in self._base.forwarding_nodes():
            if node not in self._punctured:
                yield node

    def layer_nodes(self, layer: int) -> List[NodeId]:
        return [
            node for node in self._base.layer_nodes(layer) if node not in self._punctured
        ]

    # ------------------------------------------------------------------
    # coordinate semantics delegate to the base (boundary conditions)
    # ------------------------------------------------------------------
    def wrap_column(self, column: int) -> int:
        return self._base.wrap_column(column)

    def validate_node(self, node: NodeId) -> NodeId:
        return self._base.validate_node(node)

    def contains(self, node: NodeId) -> bool:
        return self._base.contains(node)

    def cyclic_column_distance(self, i: int, j: int) -> int:
        return self._base.cyclic_column_distance(i, j)

    def node_distance(self, a: NodeId, b: NodeId) -> int:
        return self._base.node_distance(a, b)

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Structural distance of the *intact* base (damage ignored)."""
        return self._base.hop_distance(a, b)

    def condition2_extra_hops(self) -> int:
        """Each damage element can force one lateral-trigger detour.

        Conservative: a staircase of holes/cuts makes downstream nodes fire
        via lateral guards, lagging up to one ``d+`` per obstacle on the
        dependency chain.  Larger timeouts are always safe (they only
        lengthen sleeps and separations), so the margin charges every damage
        element on top of the base topology's own margin.
        """
        return (
            self._base.condition2_extra_hops() + len(self._punctured) + len(self._severed)
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def _extra_identity(self) -> Tuple:
        return self._damage

    def __repr__(self) -> str:  # pragma: no cover - trivial
        base_spec, nodes, links, seed = self._damage
        return (
            f"DegradedGrid(layers={self.layers}, width={self.width}, "
            f"base={base_spec!r}, nodes={nodes}, links={links}, seed={seed})"
        )
