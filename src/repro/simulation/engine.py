"""The time-ordered event queue driving the HEX discrete-event simulation.

The queue is a thin, fully deterministic wrapper around :mod:`heapq`:

* events are ordered by scheduled time;
* ties are broken by insertion order (a monotonically increasing sequence
  number), never by comparing event payloads;
* time never moves backwards -- scheduling an event in the past of the current
  simulation time raises, which catches subtle causality bugs early.

Keeping the engine this small (schedule / pop / peek) pushes all domain logic
into :mod:`repro.simulation.network`, which makes both parts easy to test in
isolation.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["EventQueue"]

E = TypeVar("E")


class EventQueue(Generic[E]):
    """A deterministic priority queue of timestamped events.

    Examples
    --------
    >>> q = EventQueue()
    >>> q.schedule(2.0, "b")
    >>> q.schedule(1.0, "a")
    >>> q.pop()
    (1.0, 'a')
    >>> q.now
    1.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._heap: List[Tuple[float, int, E]] = []
        self._counter = itertools.count()
        self._now = float(start_time)
        self._num_scheduled = 0
        self._num_processed = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulation time (time of the last popped event)."""
        return self._now

    @property
    def num_scheduled(self) -> int:
        """Total number of events scheduled so far."""
        return self._num_scheduled

    @property
    def num_processed(self) -> int:
        """Total number of events popped so far."""
        return self._num_processed

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def schedule(self, time: float, event: E) -> None:
        """Schedule ``event`` at absolute ``time``.

        Raises
        ------
        ValueError
            If ``time`` lies strictly before the current simulation time or is
            not finite.
        """
        if not math.isfinite(time):
            raise ValueError(f"cannot schedule an event at non-finite time {time}")
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (float(time), next(self._counter), event))
        self._num_scheduled += 1

    def peek_time(self) -> Optional[float]:
        """The time of the next event, or ``None`` if the queue is empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Tuple[float, E]:
        """Remove and return the next ``(time, event)`` pair, advancing time.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        time, _seq, event = heapq.heappop(self._heap)
        self._now = time
        self._num_processed += 1
        return time, event

    def pop_until(self, horizon: float) -> Iterator[Tuple[float, E]]:
        """Yield events in time order up to (and including) ``horizon``."""
        while self._heap and self._heap[0][0] <= horizon:
            yield self.pop()

    def clear(self) -> None:
        """Drop all pending events (current time is preserved)."""
        self._heap.clear()
