"""A HEX grid of node automata wired through delay channels.

:class:`HexNetwork` owns

* one :class:`~repro.core.algorithm.HexNodeAutomaton` per correct (or
  crash-faulty, pre-crash) forwarding node,
* the :class:`~repro.simulation.engine.EventQueue`,
* the link delay model, the timeout configuration and the fault model,

and implements the event handlers that realise the timed semantics of
Algorithm 1 on the grid:

* ``SourcePulse`` -- a layer-0 clock source fires and broadcasts to its two
  upper neighbours;
* ``MessageArrival`` -- a trigger message is memorized (starting a link timer)
  and the receiving node fires if one of the three guards became satisfied;
* ``FlagExpiry`` -- a memory flag is cleared after ``T_link``;
* ``WakeUp`` -- a sleeping node clears all flags and becomes ready again.

Byzantine stuck-at-1 links are modelled exactly as the hardware behaves: the
receiver's memory flag for such a link is set at simulation start and re-set
immediately whenever it is cleared (by a link timeout or a wake-up).

The network never draws a random number outside the ``rng`` stream handed to it
and never iterates over unordered sets when scheduling, so runs are bit-for-bit
reproducible given (seed, parameters).
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.algorithm import INCOMING_DIRECTIONS, FiringRecord, HexNodeAutomaton, NodePhase
from repro.core.parameters import TimeoutConfig, TimingConfig
from repro.core.topology import Direction, HexGrid, NodeId
from repro.faults.models import FaultModel, FaultType, LinkBehavior, NodeFault
from repro.simulation.engine import EventQueue
from repro.simulation.events import (
    AdversaryAction,
    Event,
    FlagExpiry,
    MessageArrival,
    SourcePulse,
    WakeUp,
)
from repro.simulation.links import DelayModel

__all__ = ["TimerPolicy", "HexNetwork"]


class TimerPolicy(enum.Enum):
    """How concrete timer durations are chosen within their allowed intervals."""

    #: Always use the lower bound (``T^-_link`` / ``T^-_sleep``): an ideal,
    #: drift-free implementation.
    NOMINAL = "nominal"
    #: Draw uniformly from ``[T^-, T^+]``: models the clock drift ``theta``.
    UNIFORM = "uniform"


class HexNetwork:
    """Executable HEX grid for the discrete-event simulator.

    Parameters
    ----------
    grid:
        The HEX grid topology.
    timing:
        Link-delay bounds and drift factor.
    timeouts:
        Algorithm timeouts (``T_link``, ``T_sleep``) and pulse separation.
    delays:
        Link delay model; ``sample`` is called once per message.
    fault_model:
        Faults to inject; ``None`` means fault-free.
    rng:
        Random generator used for timer draws and random initial states.
        Required unless ``timer_policy`` is ``NOMINAL`` and no random initial
        states are requested.
    timer_policy:
        How link/sleep timer durations are drawn.
    max_events:
        Safety cap on processed events (guards against run-away Byzantine
        feedback loops in misconfigured experiments).
    """

    def __init__(
        self,
        grid: HexGrid,
        timing: TimingConfig,
        timeouts: TimeoutConfig,
        delays: DelayModel,
        fault_model: Optional[FaultModel] = None,
        rng: Optional[np.random.Generator] = None,
        timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
        max_events: int = 5_000_000,
    ) -> None:
        if fault_model is not None and fault_model.grid != grid:
            raise ValueError("fault model belongs to a different grid")
        if timer_policy is TimerPolicy.UNIFORM and rng is None:
            raise ValueError("a random generator is required for the UNIFORM timer policy")
        self.grid = grid
        self.timing = timing
        self.timeouts = timeouts
        self.delays = delays
        self.faults = fault_model if fault_model is not None else FaultModel.fault_free(grid)
        self.rng = rng
        self.timer_policy = timer_policy
        self.max_events = max_events

        self.queue: EventQueue[Event] = EventQueue()
        #: Firing records of layer-0 sources (guard is ``None``).
        self.source_firings: List[FiringRecord] = []

        # Automata exist for correct forwarding nodes and for crash-faulty nodes
        # (which behave correctly until their crash time).
        self.automata: Dict[NodeId, HexNodeAutomaton] = {}
        for node in grid.forwarding_nodes():
            fault = self.faults.node_fault(node)
            if fault is None or fault.fault_type is FaultType.CRASH:
                self.automata[node] = HexNodeAutomaton(node=node)

        # Pre-compute, per receiving node, the incoming directions driven by a
        # stuck-at-1 link (Byzantine neighbour or broken wire stuck high).
        self._byzantine_high_inputs: Dict[NodeId, List[Tuple[Direction, NodeId]]] = {}
        for node in self.automata:
            entries: List[Tuple[Direction, NodeId]] = []
            for direction, source in sorted(
                grid.in_neighbors(node).items(), key=lambda item: item[0].value
            ):
                if self.faults.link_behavior((source, node)) is LinkBehavior.CONSTANT_ONE:
                    entries.append((direction, source))
            if entries:
                self._byzantine_high_inputs[node] = entries

        #: Installed adversary actions (see :meth:`install_adversary`); the
        #: queue carries only indices into this table.
        self._adversary_actions: List[object] = []
        self._initialized = False
        #: Optional read-only run observer (duck-typed against
        #: :class:`repro.adversary.runtime`-style protocols; in practice a
        #: :class:`repro.obs.capture.DesRunObserver`, injected by the DES
        #: engine when observability is enabled).  The default ``None`` keeps
        #: a single ``is None`` guard as the only cost -- the network itself
        #: never imports :mod:`repro.obs`.
        self.observer: Optional[object] = None

    # ------------------------------------------------------------------
    # timer draws
    # ------------------------------------------------------------------
    def _draw_link_timeout(self) -> float:
        if self.timer_policy is TimerPolicy.NOMINAL:
            return self.timeouts.t_link_min
        assert self.rng is not None
        return float(self.rng.uniform(self.timeouts.t_link_min, self.timeouts.t_link_max))

    def _draw_sleep_duration(self) -> float:
        if self.timer_policy is TimerPolicy.NOMINAL:
            return self.timeouts.t_sleep_min
        assert self.rng is not None
        return float(self.rng.uniform(self.timeouts.t_sleep_min, self.timeouts.t_sleep_max))

    # ------------------------------------------------------------------
    # initialisation
    # ------------------------------------------------------------------
    def _node_active(self, node: NodeId, time: float) -> bool:
        """Whether ``node`` executes the algorithm at ``time`` (crash handling)."""
        fault = self.faults.node_fault(node)
        if fault is None:
            return True
        if fault.fault_type is FaultType.CRASH:
            return time < fault.crash_time
        return False

    def initialize(self) -> None:
        """Seed the event queue with the stuck-at-1 link assertions.

        Must be called exactly once before :meth:`run` (the runner does this).
        """
        if self._initialized:
            return
        self._initialized = True
        for node in sorted(self._byzantine_high_inputs):
            for direction, source in self._byzantine_high_inputs[node]:
                self.queue.schedule(
                    0.0,
                    MessageArrival(
                        source=source,
                        destination=node,
                        direction=direction,
                        from_byzantine_high=True,
                    ),
                )

    def schedule_source_pulses(self, schedule: np.ndarray) -> None:
        """Schedule the layer-0 pulse generation.

        Parameters
        ----------
        schedule:
            Array of shape ``(num_pulses, W)``: entry ``[k, i]`` is the time at
            which source ``(0, i)`` generates its ``k``-th pulse.  Entries of
            faulty sources are ignored (their behaviour is governed by the
            fault model); ``nan`` entries are skipped.
        """
        schedule = np.atleast_2d(np.asarray(schedule, dtype=float))
        if schedule.shape[1] != self.grid.width:
            raise ValueError(
                f"schedule must have {self.grid.width} columns, got shape {schedule.shape}"
            )
        for pulse_index in range(schedule.shape[0]):
            for column in range(self.grid.width):
                source = (0, column)
                if self.faults.is_faulty(source):
                    continue
                time = schedule[pulse_index, column]
                if not math.isfinite(time):
                    continue
                self.queue.schedule(float(time), SourcePulse(node=source, pulse_index=pulse_index))

    def apply_random_initial_states(self, rng: Optional[np.random.Generator] = None) -> None:
        """Put every correct forwarding node into a random internal state.

        Used by the self-stabilization experiments of Section 4.4 ("starting
        with all non-faulty nodes in random initial states").  Each node is
        independently ready or sleeping (with a uniformly random residual sleep
        time), and each of its memory flags is independently set (with a
        uniformly random residual link-timer duration).

        Must be called after :meth:`initialize` and before :meth:`run`.
        """
        generator = rng if rng is not None else self.rng
        if generator is None:
            raise ValueError("a random generator is required for random initial states")
        for node in sorted(self.automata):
            automaton = self.automata[node]
            sleeping = bool(generator.integers(0, 2))
            flags: Dict[Direction, float] = {}
            for direction in INCOMING_DIRECTIONS:
                if bool(generator.integers(0, 2)):
                    expiry = float(generator.uniform(0.0, self.timeouts.t_link_max))
                    flags[direction] = expiry
            if sleeping:
                wake_time = float(generator.uniform(0.0, self.timeouts.t_sleep_max))
                automaton.force_state(NodePhase.SLEEPING, flags=flags, wake_time=wake_time)
                self.queue.schedule(wake_time, WakeUp(node=node))
            else:
                automaton.force_state(NodePhase.READY, flags=flags)
            for direction, expiry in flags.items():
                self.queue.schedule(expiry, FlagExpiry(node=node, direction=direction, expiry=expiry))
        # Nodes whose arbitrary initial flags already satisfy a guard fire as
        # soon as the run starts.
        for node in sorted(self.automata):
            self._attempt_fire(node, 0.0)

    def apply_adversarial_initial_states(self) -> None:
        """Put every correct forwarding node into the adversarial initial state.

        Every node starts ready with *all four* memory flags set (expiring at
        ``T^+_link``): every guard is satisfied at once, so the entire grid
        fires one spurious wave at ``t = 0`` and then sleeps -- the most
        violent coherent "arbitrary state" a transient fault can leave behind.
        Deterministic (no generator draws), so it composes with any seed
        stream.  Must be called after :meth:`initialize` and before
        :meth:`run`.
        """
        expiry = self.timeouts.t_link_max
        for node in sorted(self.automata):
            automaton = self.automata[node]
            flags = {direction: expiry for direction in INCOMING_DIRECTIONS}
            automaton.force_state(NodePhase.READY, flags=flags)
            for direction in INCOMING_DIRECTIONS:
                self.queue.schedule(expiry, FlagExpiry(node=node, direction=direction, expiry=expiry))
        for node in sorted(self.automata):
            self._attempt_fire(node, 0.0)

    # ------------------------------------------------------------------
    # dynamic adversary hooks (repro.adversary)
    # ------------------------------------------------------------------
    def install_adversary(self, actions: Iterable[Tuple[float, object]]) -> None:
        """Schedule a materialized adversary's timed mutations.

        Parameters
        ----------
        actions:
            ``(time, action)`` pairs; each ``action`` implements
            ``apply(network, time)`` (see
            :class:`repro.adversary.runtime.ScheduledAdversary`).  Actions are
            scheduled in iteration order, which breaks same-time ties
            deterministically.
        """
        for time, action in actions:
            index = len(self._adversary_actions)
            self._adversary_actions.append(action)
            self.queue.schedule(float(time), AdversaryAction(index=index))

    def inject_node_fault(self, fault: NodeFault, time: float) -> None:
        """Make a node faulty from ``time`` on (dynamic fault injection).

        The node's automaton (if any) stops executing -- :meth:`_node_active`
        consults the *current* fault model -- and freshly stuck-at-1 outgoing
        links start asserting themselves at ``time``.  Messages the node sent
        before ``time`` are already in flight and still arrive, exactly as in
        hardware.
        """
        node = self.grid.validate_node(fault.node)
        self.faults.add_node_fault(fault)
        self._register_stuck_high_links(node, time)

    def heal_node(self, node: NodeId, time: float) -> None:
        """Return a faulty node to correct behaviour from ``time`` on.

        The transient fault ends: the fault entry (including any crash time)
        is removed, the node's stuck-at-1 output registrations are retracted
        (receivers' already-set flags persist until their own timeouts, as the
        hardware's would), and the node resumes with a clean ready state --
        re-stabilization of the *network* is HEX's job, not the healed
        node's.  Healing a node that was never faulty is a no-op.
        """
        node = self.grid.validate_node(node)
        removed = self.faults.remove_node_fault(node)
        if removed is None:
            return
        self._unregister_stuck_high_links(node)
        if node[0] == 0:
            return
        automaton = self.automata.get(node)
        if automaton is None:
            automaton = HexNodeAutomaton(node=node)
            self.automata[node] = automaton
        else:
            automaton.force_state(NodePhase.READY, flags={})
        # Stuck-at-1 in-links of *other* faulty neighbours resume driving the
        # healed node's flags immediately.  Recompute the registry entry from
        # the live fault model: a statically faulty node had no automaton at
        # construction, so its in-link registrations were never built.
        entries: List[Tuple[Direction, NodeId]] = []
        for direction, source in sorted(
            self.grid.in_neighbors(node).items(), key=lambda item: item[0].value
        ):
            if self.faults.link_behavior((source, node), time=math.inf) is (
                LinkBehavior.CONSTANT_ONE
            ):
                entries.append((direction, source))
        if entries:
            self._byzantine_high_inputs[node] = entries
        else:
            self._byzantine_high_inputs.pop(node, None)
        for direction, _source in entries:
            self._reassert_byzantine_high(node, direction, time)

    def flip_node_behavior(self, node: NodeId, time: float) -> None:
        """Toggle a Byzantine node's per-link constant-0/constant-1 outputs."""
        node = self.grid.validate_node(node)
        fault = self.faults.node_fault(node)
        if fault is None or fault.fault_type is not FaultType.BYZANTINE:
            return
        flipped = {
            destination: (
                LinkBehavior.CONSTANT_ZERO
                if behavior is LinkBehavior.CONSTANT_ONE
                else LinkBehavior.CONSTANT_ONE
            )
            for destination, behavior in fault.link_behaviors.items()
        }
        self._unregister_stuck_high_links(node)
        self.faults.add_node_fault(
            NodeFault(node=node, fault_type=FaultType.BYZANTINE, link_behaviors=flipped)
        )
        self._register_stuck_high_links(node, time)

    def set_link_behavior(self, link: Tuple[NodeId, NodeId], behavior: LinkBehavior, time: float) -> None:
        """Force one directed link to a behaviour (intermittent-link faults)."""
        source, destination = link
        source = self.grid.validate_node(source)
        destination = self.grid.validate_node(destination)
        previous = self.faults.link_behavior((source, destination), time=time)
        self.faults.add_link_fault((source, destination), behavior)
        if behavior is LinkBehavior.CONSTANT_ONE and previous is not LinkBehavior.CONSTANT_ONE:
            self._register_one_stuck_high_link(source, destination, time)
        elif behavior is not LinkBehavior.CONSTANT_ONE and previous is LinkBehavior.CONSTANT_ONE:
            self._unregister_one_stuck_high_link(source, destination)

    def _register_stuck_high_links(self, node: NodeId, time: float) -> None:
        """Register (and assert) every stuck-at-1 outgoing link of ``node``."""
        for destination in sorted(self.grid.out_neighbors(node).values()):
            if self.faults.link_behavior((node, destination), time=math.inf) is (
                LinkBehavior.CONSTANT_ONE
            ):
                self._register_one_stuck_high_link(node, destination, time)

    def _register_one_stuck_high_link(
        self, source: NodeId, destination: NodeId, time: float
    ) -> None:
        if destination[0] == 0 or destination not in self.automata:
            return
        direction = self.grid.direction_between(source, destination)
        entries = self._byzantine_high_inputs.setdefault(destination, [])
        if any(existing_source == source for _d, existing_source in entries):
            return
        entries.append((direction, source))
        entries.sort(key=lambda item: item[0].value)
        self.queue.schedule(
            float(time),
            MessageArrival(
                source=source,
                destination=destination,
                direction=direction,
                from_byzantine_high=True,
            ),
        )

    def _unregister_stuck_high_links(self, node: NodeId) -> None:
        """Retract every stuck-at-1 registration whose source is ``node``."""
        for destination in sorted(self.grid.out_neighbors(node).values()):
            self._unregister_one_stuck_high_link(node, destination)

    def _unregister_one_stuck_high_link(self, source: NodeId, destination: NodeId) -> None:
        entries = self._byzantine_high_inputs.get(destination)
        if not entries:
            return
        remaining = [item for item in entries if item[1] != source]
        if remaining:
            self._byzantine_high_inputs[destination] = remaining
        else:
            self._byzantine_high_inputs.pop(destination, None)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _broadcast(self, source: NodeId, time: float) -> None:
        """Send the trigger message of ``source`` on all its outgoing links."""
        for _direction, destination in sorted(
            self.grid.out_neighbors(source).items(), key=lambda item: item[0].value
        ):
            if destination[0] == 0:
                continue
            if destination not in self.automata:
                continue
            behavior = self.faults.link_behavior((source, destination), time=time)
            if behavior is not LinkBehavior.CORRECT:
                continue
            arrival_time = time + self.delays.sample(source, destination)
            self.queue.schedule(
                arrival_time,
                MessageArrival(
                    source=source,
                    destination=destination,
                    direction=self.grid.direction_between(source, destination),
                ),
            )

    def _attempt_fire(self, node: NodeId, time: float) -> Optional[FiringRecord]:
        """Fire ``node`` if it is ready and a guard is satisfied."""
        automaton = self.automata[node]
        if automaton.phase is not NodePhase.READY or automaton.satisfied_guard() is None:
            return None
        if not self._node_active(node, time):
            return None
        record = automaton.try_fire(time, self._draw_sleep_duration())
        assert record is not None
        if self.observer is not None:
            self.observer.on_firing(node, time)  # type: ignore[attr-defined]
        self.queue.schedule(automaton.wake_time, WakeUp(node=node))
        self._broadcast(node, time)
        return record

    def _reassert_byzantine_high(self, node: NodeId, direction: Direction, time: float) -> None:
        """Re-schedule a stuck-at-1 arrival after its memory flag was cleared."""
        for high_direction, source in self._byzantine_high_inputs.get(node, ()):
            if high_direction is direction:
                self.queue.schedule(
                    time,
                    MessageArrival(
                        source=source,
                        destination=node,
                        direction=direction,
                        from_byzantine_high=True,
                    ),
                )

    def _handle(self, time: float, event: Event) -> None:
        if isinstance(event, SourcePulse):
            # Sources that turned faulty mid-run (dynamic injection / crash)
            # stop generating; statically faulty sources were never scheduled.
            if not self._node_active(event.node, time):
                return
            self.source_firings.append(
                FiringRecord(node=event.node, time=time, guard=None)
            )
            if self.observer is not None:
                self.observer.on_firing(event.node, time)  # type: ignore[attr-defined]
            self._broadcast(event.node, time)
        elif isinstance(event, MessageArrival):
            if event.from_byzantine_high and self.faults.link_behavior(
                (event.source, event.destination), time=time
            ) is not LinkBehavior.CONSTANT_ONE:
                # Stale assertion of a stuck-at-1 link that has since healed.
                return
            node = event.destination
            automaton = self.automata.get(node)
            if automaton is None or not self._node_active(node, time):
                return
            expiry = automaton.receive_trigger(event.direction, time, self._draw_link_timeout())
            if expiry is not None:
                self.queue.schedule(
                    expiry, FlagExpiry(node=node, direction=event.direction, expiry=expiry)
                )
            self._attempt_fire(node, time)
        elif isinstance(event, FlagExpiry):
            automaton = self.automata.get(event.node)
            if automaton is None:
                return
            if automaton.expire_flag(event.direction, event.expiry):
                self._reassert_byzantine_high(event.node, event.direction, time)
        elif isinstance(event, WakeUp):
            automaton = self.automata.get(event.node)
            if automaton is None:
                return
            if automaton.wake_up(time):
                for direction, _source in self._byzantine_high_inputs.get(event.node, ()):
                    self._reassert_byzantine_high(event.node, direction, time)
        elif isinstance(event, AdversaryAction):
            action = self._adversary_actions[event.index]
            action.apply(self, time)  # type: ignore[attr-defined]
            if self.observer is not None:
                self.observer.on_adversary(time, action)  # type: ignore[attr-defined]
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event type {type(event)!r}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf) -> int:
        """Process events in time order up to ``until`` (inclusive).

        Returns
        -------
        int
            The number of events processed by this call.

        Raises
        ------
        RuntimeError
            If the safety cap ``max_events`` is exceeded.
        """
        if not self._initialized:
            self.initialize()
        processed = 0
        while self.queue:
            next_time = self.queue.peek_time()
            assert next_time is not None
            if next_time > until:
                break
            time, event = self.queue.pop()
            if self.observer is not None:
                self.observer.on_event(time, event)  # type: ignore[attr-defined]
            self._handle(time, event)
            processed += 1
            if self.queue.num_processed > self.max_events:
                raise RuntimeError(
                    f"event cap of {self.max_events} exceeded; "
                    "check the fault model / timeout configuration for livelock"
                )
        return processed

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def firing_times(self, node: NodeId) -> List[float]:
        """All firing times of a node (sources and forwarding nodes alike)."""
        node = self.grid.validate_node(node)
        if node[0] == 0:
            return [record.time for record in self.source_firings if record.node == node]
        automaton = self.automata.get(node)
        if automaton is None:
            return []
        return [record.time for record in automaton.firings]

    def all_firings(self) -> List[FiringRecord]:
        """All firing records of the run, sorted by time."""
        records = list(self.source_firings)
        for automaton in self.automata.values():
            records.extend(automaton.firings)
        return sorted(records, key=lambda record: (record.time, record.node))

    def first_firing_matrix(self) -> np.ndarray:
        """Matrix of shape ``(L + 1, W)`` with each node's *first* firing time.

        Nodes that never fired carry ``+inf``; faulty nodes -- and
        structurally absent nodes of a degraded topology -- carry ``nan``.
        Intended for single-pulse runs, where the first firing is the pulse.
        """
        times = np.full(self.grid.shape, math.inf, dtype=float)
        times[~self.grid.presence_mask()] = math.nan
        for layer, column in self.grid.nodes():
            node = (layer, column)
            if self.faults.is_faulty(node):
                times[layer, column] = math.nan
                continue
            firings = self.firing_times(node)
            if firings:
                times[layer, column] = firings[0]
        return times
