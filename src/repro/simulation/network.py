"""A HEX grid of node automata wired through delay channels.

:class:`HexNetwork` owns

* one :class:`~repro.core.algorithm.HexNodeAutomaton` per correct (or
  crash-faulty, pre-crash) forwarding node,
* the :class:`~repro.simulation.engine.EventQueue`,
* the link delay model, the timeout configuration and the fault model,

and implements the event handlers that realise the timed semantics of
Algorithm 1 on the grid:

* ``SourcePulse`` -- a layer-0 clock source fires and broadcasts to its two
  upper neighbours;
* ``MessageArrival`` -- a trigger message is memorized (starting a link timer)
  and the receiving node fires if one of the three guards became satisfied;
* ``FlagExpiry`` -- a memory flag is cleared after ``T_link``;
* ``WakeUp`` -- a sleeping node clears all flags and becomes ready again.

Byzantine stuck-at-1 links are modelled exactly as the hardware behaves: the
receiver's memory flag for such a link is set at simulation start and re-set
immediately whenever it is cleared (by a link timeout or a wake-up).

The network never draws a random number outside the ``rng`` stream handed to it
and never iterates over unordered sets when scheduling, so runs are bit-for-bit
reproducible given (seed, parameters).
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.algorithm import (
    FiringRecord,
    HexNodeAutomaton,
    INCOMING_DIRECTIONS,
    NodePhase,
)
from repro.core.parameters import TimeoutConfig, TimingConfig
from repro.core.topology import Direction, HexGrid, NodeId
from repro.faults.models import FaultModel, FaultType, LinkBehavior
from repro.simulation.engine import EventQueue
from repro.simulation.events import Event, FlagExpiry, MessageArrival, SourcePulse, WakeUp
from repro.simulation.links import DelayModel

__all__ = ["TimerPolicy", "HexNetwork"]


class TimerPolicy(enum.Enum):
    """How concrete timer durations are chosen within their allowed intervals."""

    #: Always use the lower bound (``T^-_link`` / ``T^-_sleep``): an ideal,
    #: drift-free implementation.
    NOMINAL = "nominal"
    #: Draw uniformly from ``[T^-, T^+]``: models the clock drift ``theta``.
    UNIFORM = "uniform"


class HexNetwork:
    """Executable HEX grid for the discrete-event simulator.

    Parameters
    ----------
    grid:
        The HEX grid topology.
    timing:
        Link-delay bounds and drift factor.
    timeouts:
        Algorithm timeouts (``T_link``, ``T_sleep``) and pulse separation.
    delays:
        Link delay model; ``sample`` is called once per message.
    fault_model:
        Faults to inject; ``None`` means fault-free.
    rng:
        Random generator used for timer draws and random initial states.
        Required unless ``timer_policy`` is ``NOMINAL`` and no random initial
        states are requested.
    timer_policy:
        How link/sleep timer durations are drawn.
    max_events:
        Safety cap on processed events (guards against run-away Byzantine
        feedback loops in misconfigured experiments).
    """

    def __init__(
        self,
        grid: HexGrid,
        timing: TimingConfig,
        timeouts: TimeoutConfig,
        delays: DelayModel,
        fault_model: Optional[FaultModel] = None,
        rng: Optional[np.random.Generator] = None,
        timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
        max_events: int = 5_000_000,
    ) -> None:
        if fault_model is not None and fault_model.grid != grid:
            raise ValueError("fault model belongs to a different grid")
        if timer_policy is TimerPolicy.UNIFORM and rng is None:
            raise ValueError("a random generator is required for the UNIFORM timer policy")
        self.grid = grid
        self.timing = timing
        self.timeouts = timeouts
        self.delays = delays
        self.faults = fault_model if fault_model is not None else FaultModel.fault_free(grid)
        self.rng = rng
        self.timer_policy = timer_policy
        self.max_events = max_events

        self.queue: EventQueue[Event] = EventQueue()
        #: Firing records of layer-0 sources (guard is ``None``).
        self.source_firings: List[FiringRecord] = []

        # Automata exist for correct forwarding nodes and for crash-faulty nodes
        # (which behave correctly until their crash time).
        self.automata: Dict[NodeId, HexNodeAutomaton] = {}
        for node in grid.forwarding_nodes():
            fault = self.faults.node_fault(node)
            if fault is None or fault.fault_type is FaultType.CRASH:
                self.automata[node] = HexNodeAutomaton(node=node)

        # Pre-compute, per receiving node, the incoming directions driven by a
        # stuck-at-1 link (Byzantine neighbour or broken wire stuck high).
        self._byzantine_high_inputs: Dict[NodeId, List[Tuple[Direction, NodeId]]] = {}
        for node in self.automata:
            entries: List[Tuple[Direction, NodeId]] = []
            for direction, source in sorted(
                grid.in_neighbors(node).items(), key=lambda item: item[0].value
            ):
                if self.faults.link_behavior((source, node)) is LinkBehavior.CONSTANT_ONE:
                    entries.append((direction, source))
            if entries:
                self._byzantine_high_inputs[node] = entries

        self._initialized = False

    # ------------------------------------------------------------------
    # timer draws
    # ------------------------------------------------------------------
    def _draw_link_timeout(self) -> float:
        if self.timer_policy is TimerPolicy.NOMINAL:
            return self.timeouts.t_link_min
        assert self.rng is not None
        return float(self.rng.uniform(self.timeouts.t_link_min, self.timeouts.t_link_max))

    def _draw_sleep_duration(self) -> float:
        if self.timer_policy is TimerPolicy.NOMINAL:
            return self.timeouts.t_sleep_min
        assert self.rng is not None
        return float(self.rng.uniform(self.timeouts.t_sleep_min, self.timeouts.t_sleep_max))

    # ------------------------------------------------------------------
    # initialisation
    # ------------------------------------------------------------------
    def _node_active(self, node: NodeId, time: float) -> bool:
        """Whether ``node`` executes the algorithm at ``time`` (crash handling)."""
        fault = self.faults.node_fault(node)
        if fault is None:
            return True
        if fault.fault_type is FaultType.CRASH:
            return time < fault.crash_time
        return False

    def initialize(self) -> None:
        """Seed the event queue with the stuck-at-1 link assertions.

        Must be called exactly once before :meth:`run` (the runner does this).
        """
        if self._initialized:
            return
        self._initialized = True
        for node in sorted(self._byzantine_high_inputs):
            for direction, source in self._byzantine_high_inputs[node]:
                self.queue.schedule(
                    0.0,
                    MessageArrival(
                        source=source,
                        destination=node,
                        direction=direction,
                        from_byzantine_high=True,
                    ),
                )

    def schedule_source_pulses(self, schedule: np.ndarray) -> None:
        """Schedule the layer-0 pulse generation.

        Parameters
        ----------
        schedule:
            Array of shape ``(num_pulses, W)``: entry ``[k, i]`` is the time at
            which source ``(0, i)`` generates its ``k``-th pulse.  Entries of
            faulty sources are ignored (their behaviour is governed by the
            fault model); ``nan`` entries are skipped.
        """
        schedule = np.atleast_2d(np.asarray(schedule, dtype=float))
        if schedule.shape[1] != self.grid.width:
            raise ValueError(
                f"schedule must have {self.grid.width} columns, got shape {schedule.shape}"
            )
        for pulse_index in range(schedule.shape[0]):
            for column in range(self.grid.width):
                source = (0, column)
                if self.faults.is_faulty(source):
                    continue
                time = schedule[pulse_index, column]
                if not math.isfinite(time):
                    continue
                self.queue.schedule(float(time), SourcePulse(node=source, pulse_index=pulse_index))

    def apply_random_initial_states(self, rng: Optional[np.random.Generator] = None) -> None:
        """Put every correct forwarding node into a random internal state.

        Used by the self-stabilization experiments of Section 4.4 ("starting
        with all non-faulty nodes in random initial states").  Each node is
        independently ready or sleeping (with a uniformly random residual sleep
        time), and each of its memory flags is independently set (with a
        uniformly random residual link-timer duration).

        Must be called after :meth:`initialize` and before :meth:`run`.
        """
        generator = rng if rng is not None else self.rng
        if generator is None:
            raise ValueError("a random generator is required for random initial states")
        for node in sorted(self.automata):
            automaton = self.automata[node]
            sleeping = bool(generator.integers(0, 2))
            flags: Dict[Direction, float] = {}
            for direction in INCOMING_DIRECTIONS:
                if bool(generator.integers(0, 2)):
                    expiry = float(generator.uniform(0.0, self.timeouts.t_link_max))
                    flags[direction] = expiry
            if sleeping:
                wake_time = float(generator.uniform(0.0, self.timeouts.t_sleep_max))
                automaton.force_state(NodePhase.SLEEPING, flags=flags, wake_time=wake_time)
                self.queue.schedule(wake_time, WakeUp(node=node))
            else:
                automaton.force_state(NodePhase.READY, flags=flags)
            for direction, expiry in flags.items():
                self.queue.schedule(expiry, FlagExpiry(node=node, direction=direction, expiry=expiry))
        # Nodes whose arbitrary initial flags already satisfy a guard fire as
        # soon as the run starts.
        for node in sorted(self.automata):
            self._attempt_fire(node, 0.0)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _broadcast(self, source: NodeId, time: float) -> None:
        """Send the trigger message of ``source`` on all its outgoing links."""
        for direction, destination in sorted(
            self.grid.out_neighbors(source).items(), key=lambda item: item[0].value
        ):
            if destination[0] == 0:
                continue
            if destination not in self.automata:
                continue
            behavior = self.faults.link_behavior((source, destination), time=time)
            if behavior is not LinkBehavior.CORRECT:
                continue
            arrival_time = time + self.delays.sample(source, destination)
            self.queue.schedule(
                arrival_time,
                MessageArrival(
                    source=source,
                    destination=destination,
                    direction=self.grid.direction_between(source, destination),
                ),
            )

    def _attempt_fire(self, node: NodeId, time: float) -> Optional[FiringRecord]:
        """Fire ``node`` if it is ready and a guard is satisfied."""
        automaton = self.automata[node]
        if automaton.phase is not NodePhase.READY or automaton.satisfied_guard() is None:
            return None
        if not self._node_active(node, time):
            return None
        record = automaton.try_fire(time, self._draw_sleep_duration())
        assert record is not None
        self.queue.schedule(automaton.wake_time, WakeUp(node=node))
        self._broadcast(node, time)
        return record

    def _reassert_byzantine_high(self, node: NodeId, direction: Direction, time: float) -> None:
        """Re-schedule a stuck-at-1 arrival after its memory flag was cleared."""
        for high_direction, source in self._byzantine_high_inputs.get(node, ()):
            if high_direction is direction:
                self.queue.schedule(
                    time,
                    MessageArrival(
                        source=source,
                        destination=node,
                        direction=direction,
                        from_byzantine_high=True,
                    ),
                )

    def _handle(self, time: float, event: Event) -> None:
        if isinstance(event, SourcePulse):
            self.source_firings.append(
                FiringRecord(node=event.node, time=time, guard=None)
            )
            self._broadcast(event.node, time)
        elif isinstance(event, MessageArrival):
            node = event.destination
            automaton = self.automata.get(node)
            if automaton is None or not self._node_active(node, time):
                return
            expiry = automaton.receive_trigger(event.direction, time, self._draw_link_timeout())
            if expiry is not None:
                self.queue.schedule(
                    expiry, FlagExpiry(node=node, direction=event.direction, expiry=expiry)
                )
            self._attempt_fire(node, time)
        elif isinstance(event, FlagExpiry):
            automaton = self.automata.get(event.node)
            if automaton is None:
                return
            if automaton.expire_flag(event.direction, event.expiry):
                self._reassert_byzantine_high(event.node, event.direction, time)
        elif isinstance(event, WakeUp):
            automaton = self.automata.get(event.node)
            if automaton is None:
                return
            if automaton.wake_up(time):
                for direction, _source in self._byzantine_high_inputs.get(event.node, ()):
                    self._reassert_byzantine_high(event.node, direction, time)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event type {type(event)!r}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf) -> int:
        """Process events in time order up to ``until`` (inclusive).

        Returns
        -------
        int
            The number of events processed by this call.

        Raises
        ------
        RuntimeError
            If the safety cap ``max_events`` is exceeded.
        """
        if not self._initialized:
            self.initialize()
        processed = 0
        while self.queue:
            next_time = self.queue.peek_time()
            assert next_time is not None
            if next_time > until:
                break
            time, event = self.queue.pop()
            self._handle(time, event)
            processed += 1
            if self.queue.num_processed > self.max_events:
                raise RuntimeError(
                    f"event cap of {self.max_events} exceeded; "
                    "check the fault model / timeout configuration for livelock"
                )
        return processed

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def firing_times(self, node: NodeId) -> List[float]:
        """All firing times of a node (sources and forwarding nodes alike)."""
        node = self.grid.validate_node(node)
        if node[0] == 0:
            return [record.time for record in self.source_firings if record.node == node]
        automaton = self.automata.get(node)
        if automaton is None:
            return []
        return [record.time for record in automaton.firings]

    def all_firings(self) -> List[FiringRecord]:
        """All firing records of the run, sorted by time."""
        records = list(self.source_firings)
        for automaton in self.automata.values():
            records.extend(automaton.firings)
        return sorted(records, key=lambda record: (record.time, record.node))

    def first_firing_matrix(self) -> np.ndarray:
        """Matrix of shape ``(L + 1, W)`` with each node's *first* firing time.

        Nodes that never fired carry ``+inf``; faulty nodes carry ``nan``.
        Intended for single-pulse runs, where the first firing is the pulse.
        """
        times = np.full(self.grid.shape, math.inf, dtype=float)
        for layer, column in self.grid.nodes():
            node = (layer, column)
            if self.faults.is_faulty(node):
                times[layer, column] = math.nan
                continue
            firings = self.firing_times(node)
            if firings:
                times[layer, column] = firings[0]
        return times
