"""Typed events of the HEX discrete-event simulation.

Each event is a small frozen dataclass.  Events never carry behaviour; the
:class:`repro.simulation.network.HexNetwork` dispatches on their type.  All
events are totally ordered by their scheduled time with a monotonically
increasing sequence number as a tie-breaker (assigned by the
:class:`repro.simulation.engine.EventQueue`), which makes simulation runs fully
deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.topology import Direction, NodeId

__all__ = [
    "SourcePulse",
    "MessageArrival",
    "FlagExpiry",
    "WakeUp",
    "Event",
]


@dataclass(frozen=True)
class SourcePulse:
    """A layer-0 clock source generates (broadcasts) its ``pulse_index``-th pulse."""

    node: NodeId
    pulse_index: int


@dataclass(frozen=True)
class MessageArrival:
    """A trigger message arrives at ``destination`` on the link from ``source``.

    ``direction`` is the incoming direction under which the destination files
    the message (redundant with ``source`` but precomputed for speed).
    ``from_byzantine_high`` marks arrivals that model a stuck-at-1 link
    re-asserting itself; the network re-schedules those whenever the
    corresponding memory flag is cleared.
    """

    source: NodeId
    destination: NodeId
    direction: Direction
    from_byzantine_high: bool = False


@dataclass(frozen=True)
class FlagExpiry:
    """The link timer of ``node``'s memory flag for ``direction`` runs out.

    ``expiry`` is the absolute expiry time the flag was armed with; the node
    automaton uses it to discard stale expiry events.
    """

    node: NodeId
    direction: Direction
    expiry: float


@dataclass(frozen=True)
class WakeUp:
    """The sleep timer of ``node`` runs out (Fig. 7a: sleeping -> ready)."""

    node: NodeId


@dataclass(frozen=True)
class AdversaryAction:
    """A scheduled adversary mutation fires (fault injection / heal / ...).

    ``index`` points into the action table installed on the network via
    :meth:`repro.simulation.network.HexNetwork.install_adversary`; keeping the
    event itself index-only preserves the "events are pure data" discipline.
    """

    index: int


Event = Union[SourcePulse, MessageArrival, FlagExpiry, WakeUp, AdversaryAction]
