"""Discrete-event simulation substrate (replaces the paper's ModelSim/VHDL testbed).

* :mod:`repro.simulation.events` -- typed simulation events.
* :mod:`repro.simulation.engine` -- the time-ordered event queue.
* :mod:`repro.simulation.links` -- link delay models (uniform random,
  deterministic, per-link tables).
* :mod:`repro.simulation.network` -- a HEX grid of node automata wired through
  delay channels, with fault injection and arbitrary initial states.
* :mod:`repro.simulation.runner` -- high-level entry points: single-pulse and
  multi-pulse runs, and seeded run sets.
"""

from repro.simulation.engine import EventQueue
from repro.simulation.links import (
    ConstantDelays,
    DelayModel,
    FreshUniformDelays,
    TableDelays,
    UniformRandomDelays,
)
from repro.simulation.network import HexNetwork, TimerPolicy
from repro.simulation.runner import (
    MultiPulseResult,
    SinglePulseResult,
    simulate_multi_pulse,
    simulate_single_pulse,
)

__all__ = [
    "DelayModel",
    "ConstantDelays",
    "TableDelays",
    "UniformRandomDelays",
    "FreshUniformDelays",
    "EventQueue",
    "HexNetwork",
    "TimerPolicy",
    "simulate_single_pulse",
    "simulate_multi_pulse",
    "SinglePulseResult",
    "MultiPulseResult",
]
