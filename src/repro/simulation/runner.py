"""High-level simulation entry points.

Two granularities are provided:

* :func:`simulate_single_pulse` propagates one pulse wave through the grid and
  returns the dense trigger-time matrix.  The default engine is the analytic
  solver of :mod:`repro.core.pulse_solver` (fast, exact under constraints
  (C1)/(C2)); ``engine="des"`` runs the full discrete-event simulation with
  identical per-link delays so the two can be compared.

* :func:`simulate_multi_pulse` runs the discrete-event simulator over a whole
  schedule of layer-0 pulses, optionally from random initial states, and
  returns the raw firing records -- the input of the stabilization analysis
  (Section 4.4).

Both helpers accept either a seed or a ready-made :class:`numpy.random.Generator`
so experiment harnesses can spawn independent child streams per run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.bounds import lemma5_pulse_skew_bound
from repro.core.parameters import TimeoutConfig, TimingConfig, condition2_timeouts
from repro.core.pulse_solver import PulseSolution, solve_single_pulse
from repro.core.topology import HexGrid, NodeId
from repro.faults.models import FaultModel
from repro.simulation.links import DelayModel, UniformRandomDelays, FreshUniformDelays
from repro.simulation.network import HexNetwork, TimerPolicy

__all__ = [
    "SinglePulseResult",
    "MultiPulseResult",
    "simulate_single_pulse",
    "simulate_multi_pulse",
    "default_timeouts",
]


def _make_rng(
    seed: Optional[int], rng: Optional[np.random.Generator]
) -> np.random.Generator:
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def default_timeouts(
    grid: HexGrid,
    timing: TimingConfig,
    num_faults: int = 0,
    layer0_spread: float = 0.0,
    signal_duration: float = 0.0,
) -> TimeoutConfig:
    """Conservative Condition 2 timeouts from the Lemma 5 stable-skew bound.

    This is the "C = 0" parameter choice of the stabilization experiments: the
    stable skew is bounded by Lemma 5 as ``t_max - t_min + epsilon L + f d+``,
    where ``layer0_spread`` plays the role of ``t_max - t_min``.
    """
    stable_skew = lemma5_pulse_skew_bound(
        timing, grid.layers, num_faults, layer0_spread=layer0_spread
    )
    return condition2_timeouts(
        timing,
        stable_skew=stable_skew,
        layers=grid.layers,
        num_faults=num_faults,
        signal_duration=signal_duration,
    )


@dataclass
class SinglePulseResult:
    """Result of a single-pulse simulation run.

    Attributes
    ----------
    grid, timing:
        The topology and delay bounds used.
    trigger_times:
        Shape ``(L + 1, W)``; ``+inf`` for never-fired, ``nan`` for faulty nodes.
    correct_mask:
        ``True`` where the node is correct.
    layer0_times:
        The layer-0 firing times driving the run.
    engine:
        ``"solver"`` or ``"des"``.
    solution:
        The full :class:`~repro.core.pulse_solver.PulseSolution` when the
        analytic engine was used (``None`` for the discrete-event engine).
    fault_model:
        The fault model of the run (``None`` when fault-free).
    """

    grid: HexGrid
    timing: TimingConfig
    trigger_times: np.ndarray
    correct_mask: np.ndarray
    layer0_times: np.ndarray
    engine: str
    solution: Optional[PulseSolution] = None
    fault_model: Optional[FaultModel] = None

    def trigger_time(self, node: NodeId) -> float:
        """Firing time of one node."""
        layer, column = self.grid.validate_node(node)
        return float(self.trigger_times[layer, column])

    def all_correct_triggered(self) -> bool:
        """Whether every correct forwarding node fired."""
        times = self.trigger_times[1:, :]
        mask = self.correct_mask[1:, :]
        return bool(np.all(np.isfinite(times[mask])))


@dataclass
class MultiPulseResult:
    """Result of a multi-pulse discrete-event simulation run.

    Attributes
    ----------
    grid, timing, timeouts:
        Topology, delay bounds and algorithm timeouts used.
    source_schedule:
        Shape ``(num_pulses, W)``: the layer-0 pulse generation times.
    firing_times:
        Mapping node -> sorted list of all its firing times during the run
        (including spurious firings caused by arbitrary initial states).
    fault_model:
        The fault model of the run (``None`` when fault-free).
    """

    grid: HexGrid
    timing: TimingConfig
    timeouts: TimeoutConfig
    source_schedule: np.ndarray
    firing_times: Dict[NodeId, List[float]]
    fault_model: Optional[FaultModel] = None

    @property
    def num_pulses(self) -> int:
        """Number of pulses the layer-0 sources generated."""
        return int(self.source_schedule.shape[0])

    def firings_of(self, node: NodeId) -> List[float]:
        """All firing times of one node (empty for faulty nodes)."""
        return self.firing_times.get(self.grid.validate_node(node), [])

    def total_firings(self) -> int:
        """Total number of firings across all nodes."""
        return sum(len(times) for times in self.firing_times.values())


def simulate_single_pulse(
    grid: HexGrid,
    timing: TimingConfig,
    layer0_times: Sequence[float],
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    fault_model: Optional[FaultModel] = None,
    delays: Optional[DelayModel] = None,
    engine: str = "solver",
    timeouts: Optional[TimeoutConfig] = None,
    timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
) -> SinglePulseResult:
    """Propagate a single pulse wave through the grid.

    Parameters
    ----------
    grid, timing:
        Topology and delay bounds.
    layer0_times:
        Firing times of the ``W`` layer-0 sources (see
        :func:`repro.clocksource.scenarios.scenario_layer0_times`).
    seed, rng:
        Randomness control (per-link delays and, for the DES engine, timer
        draws).  Exactly one of them is typically given; with neither, a fresh
        unseeded generator is used.
    fault_model:
        Faults to inject.
    delays:
        Explicit link delay model; defaults to per-link uniform delays in
        ``[d-, d+]`` drawn from the run's RNG.
    engine:
        ``"solver"`` (analytic, default) or ``"des"`` (discrete-event).
    timeouts:
        Algorithm timeouts for the DES engine; defaults to the conservative
        Condition 2 values from :func:`default_timeouts`.
    timer_policy:
        Timer-draw policy for the DES engine.

    Returns
    -------
    SinglePulseResult
    """
    generator = _make_rng(seed, rng)
    layer0 = np.asarray(layer0_times, dtype=float)
    if layer0.shape != (grid.width,):
        raise ValueError(f"layer0_times must have shape ({grid.width},), got {layer0.shape}")
    if delays is None:
        delays = UniformRandomDelays(timing, generator)

    if engine == "solver":
        solution = solve_single_pulse(grid, layer0, delays, fault_model=fault_model)
        return SinglePulseResult(
            grid=grid,
            timing=timing,
            trigger_times=solution.trigger_times,
            correct_mask=solution.correct_mask,
            layer0_times=solution.layer0_times,
            engine="solver",
            solution=solution,
            fault_model=fault_model,
        )
    if engine == "des":
        if timeouts is None:
            num_faults = fault_model.num_faulty_nodes if fault_model is not None else 0
            spread = float(np.nanmax(layer0) - np.nanmin(layer0)) if layer0.size else 0.0
            timeouts = default_timeouts(grid, timing, num_faults=num_faults, layer0_spread=spread)
        network = HexNetwork(
            grid=grid,
            timing=timing,
            timeouts=timeouts,
            delays=delays,
            fault_model=fault_model,
            rng=generator,
            timer_policy=timer_policy,
        )
        network.initialize()
        network.schedule_source_pulses(layer0[np.newaxis, :])
        # Byzantine stuck-at-1 links re-assert themselves forever, so the run
        # must be bounded; by Lemma 5 every correct node that fires at all does
        # so within (L + f) d+ of the last layer-0 firing.
        num_faults = fault_model.num_faulty_nodes if fault_model is not None else 0
        horizon = (
            float(np.nanmax(layer0))
            + (grid.layers + num_faults + 2) * timing.d_max
            + timeouts.t_sleep_max
        )
        network.run(until=horizon)
        trigger_times = network.first_firing_matrix()
        correct_mask = (
            fault_model.correctness_mask()
            if fault_model is not None
            else np.ones(grid.shape, dtype=bool)
        )
        return SinglePulseResult(
            grid=grid,
            timing=timing,
            trigger_times=trigger_times,
            correct_mask=correct_mask,
            layer0_times=layer0.copy(),
            engine="des",
            solution=None,
            fault_model=fault_model,
        )
    raise ValueError(f"unknown engine {engine!r}; expected 'solver' or 'des'")


def simulate_multi_pulse(
    grid: HexGrid,
    timing: TimingConfig,
    timeouts: TimeoutConfig,
    source_schedule: np.ndarray,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    fault_model: Optional[FaultModel] = None,
    delays: Optional[DelayModel] = None,
    random_initial_states: bool = True,
    timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
    run_slack: float = 0.0,
) -> MultiPulseResult:
    """Run the discrete-event simulator over a schedule of layer-0 pulses.

    Parameters
    ----------
    source_schedule:
        Array of shape ``(num_pulses, W)`` of layer-0 pulse-generation times
        (see :func:`repro.clocksource.generator.generate_pulse_schedule`).
    random_initial_states:
        Start every correct forwarding node in a random internal state
        (Section 4.4's stabilization setting).  With ``False`` all nodes start
        in the clean ready state.
    run_slack:
        Extra simulated time after the last scheduled source pulse (on top of a
        conservative per-layer propagation allowance) before the run stops.
    delays:
        Delay model; defaults to fresh per-message uniform delays in
        ``[d-, d+]``.

    Returns
    -------
    MultiPulseResult
    """
    generator = _make_rng(seed, rng)
    schedule = np.atleast_2d(np.asarray(source_schedule, dtype=float))
    if schedule.shape[1] != grid.width:
        raise ValueError(
            f"source_schedule must have {grid.width} columns, got shape {schedule.shape}"
        )
    if delays is None:
        delays = FreshUniformDelays(timing, generator)

    network = HexNetwork(
        grid=grid,
        timing=timing,
        timeouts=timeouts,
        delays=delays,
        fault_model=fault_model,
        rng=generator,
        timer_policy=timer_policy,
    )
    network.initialize()
    if random_initial_states:
        network.apply_random_initial_states(generator)
    network.schedule_source_pulses(schedule)

    num_faults = fault_model.num_faulty_nodes if fault_model is not None else 0
    horizon = (
        float(np.nanmax(schedule))
        + (grid.layers + num_faults + 2) * timing.d_max
        + timeouts.t_sleep_max
        + run_slack
    )
    network.run(until=horizon)

    firing_times: Dict[NodeId, List[float]] = {}
    for node in grid.nodes():
        if fault_model is not None and fault_model.is_faulty(node):
            continue
        firing_times[node] = network.firing_times(node)

    return MultiPulseResult(
        grid=grid,
        timing=timing,
        timeouts=timeouts,
        source_schedule=schedule,
        firing_times=firing_times,
        fault_model=fault_model,
    )
